//! Precompiled first-visit tables for fleets of ray tours.
//!
//! The exact evaluator in `raysearch-core` rebuilds its piecewise
//! first-visit functions on every `detection_time` query; that is fine
//! for a handful of sup computations but not for hundreds of thousands
//! of Monte-Carlo samples. [`VisitTable`] compiles the same structure
//! once — for each robot and ray, the sorted slope-1 pieces
//! `(lo, hi, c]` such that targets in `(lo, hi]` are first visited at
//! time `c + x` — and answers each query with one binary search.
//!
//! The piece construction is *identical* to the evaluator's (`c` is
//! twice the turning mass before the covering leg), so a table query
//! returns the bit-for-bit same `f64` as
//! [`RayEvaluator::detection_time`](raysearch_core::RayEvaluator::detection_time)
//! composed over the same robots. The degenerate-sampler tests pin this.

use raysearch_core::FirstVisitPiece;
use raysearch_sim::{LogTourItinerary, TourItinerary};

use crate::McError;

/// The compiled first-visit functions of a whole fleet, indexed by
/// `(robot, ray)`.
///
/// # Example
///
/// ```
/// use raysearch_mc::VisitTable;
/// use raysearch_strategies::{CyclicExponential, RayStrategy};
///
/// let fleet = CyclicExponential::optimal(2, 3, 1)?.fleet_tours(100.0)?;
/// let table = VisitTable::from_fleet(&fleet)?;
/// assert_eq!(table.num_robots(), 3);
/// assert_eq!(table.num_rays(), 2);
/// // some robot reaches distance 5 on ray 0 in finite time
/// assert!((0..3).any(|r| table.first_visit(r, 0, 5.0).is_some()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VisitTable {
    m: usize,
    /// `pieces[robot * m + ray]`, each sorted by strictly increasing `lo`.
    pieces: Vec<Vec<FirstVisitPiece>>,
}

impl VisitTable {
    /// Compiles the first-visit functions of every robot in `fleet`.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if the fleet is empty or its
    /// tours disagree on the number of rays.
    pub fn from_fleet(fleet: &[TourItinerary]) -> Result<Self, McError> {
        let Some(first) = fleet.first() else {
            return Err(McError::invalid("fleet must have at least one robot"));
        };
        let m = first.num_rays();
        let mut pieces = Vec::with_capacity(fleet.len() * m);
        for tour in fleet {
            if tour.num_rays() != m {
                return Err(McError::invalid(format!(
                    "tour is for {} rays, fleet started with {m}",
                    tour.num_rays()
                )));
            }
            for ray in 0..m {
                // mirror of the exact evaluator's construction: a new
                // piece opens whenever an excursion on `ray` pushes past
                // the furthest distance visited so far, and its constant
                // is twice the turning mass spent before that leg
                let mut per_ray = Vec::new();
                let mut reach = 0.0f64;
                let mut prefix = 0.0f64;
                for e in tour.excursions() {
                    if e.ray.index() == ray && e.turn > reach {
                        per_ray.push(FirstVisitPiece {
                            lo: reach,
                            hi: e.turn,
                            c: 2.0 * prefix,
                        });
                        reach = e.turn;
                    }
                    prefix += e.turn;
                }
                pieces.push(per_ray);
            }
        }
        Ok(VisitTable { m, pieces })
    }

    /// An empty table over `m` rays, to be filled one robot at a time
    /// with [`VisitTable::push_log_tour`] — the streaming construction
    /// path for large fleets, where materializing every log tour at
    /// once would cost hundreds of megabytes.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if `m = 0`.
    pub fn new(m: usize) -> Result<Self, McError> {
        if m == 0 {
            return Err(McError::invalid("a ray star must have at least one ray"));
        }
        Ok(VisitTable {
            m,
            pieces: Vec::new(),
        })
    }

    /// Appends one robot's first-visit pieces, compiled from a
    /// log-domain tour and truncated at `cap` through the *same*
    /// [`compile_first_visit_pieces`](raysearch_core::compile_first_visit_pieces)
    /// the exact evaluator uses — the shared compilation is what makes
    /// the table's answers bit-for-bit identical to the evaluator's.
    ///
    /// Construction stops at the first piece reaching past `cap`:
    /// queries are only valid for `x ≤ cap`, and every piece that can
    /// answer such a query has `lo < cap`. This is what keeps the
    /// overflowing post-horizon padding tail of a large fleet out of
    /// linear space entirely — answers for `x ≤ cap` are bit-for-bit
    /// identical to a `from_fleet` table of the same (finite) fleet.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if the tour's ray count
    /// disagrees with the table's, `cap` is not positive and finite, or
    /// a first-visit constant within the cap overflows `f64` (a horizon
    /// too deep for the fleet's turning-point growth).
    pub fn push_log_tour(&mut self, tour: &LogTourItinerary, cap: f64) -> Result<(), McError> {
        if tour.num_rays() != self.m {
            return Err(McError::invalid(format!(
                "tour is for {} rays, table expects {}",
                tour.num_rays(),
                self.m
            )));
        }
        let compiled = raysearch_core::compile_first_visit_pieces(tour, cap)
            .map_err(|e| McError::invalid(format!("first-visit compilation: {e}")))?;
        self.pieces.extend(compiled);
        Ok(())
    }

    /// Compiles a whole fleet of log-domain tours (see
    /// [`VisitTable::push_log_tour`] for the `cap` semantics).
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if the fleet is empty, its
    /// tours disagree on the number of rays, or `cap` is invalid.
    pub fn from_log_fleet(fleet: &[LogTourItinerary], cap: f64) -> Result<Self, McError> {
        let Some(first) = fleet.first() else {
            return Err(McError::invalid("fleet must have at least one robot"));
        };
        let mut table = VisitTable::new(first.num_rays())?;
        for tour in fleet {
            table.push_log_tour(tour, cap)?;
        }
        Ok(table)
    }

    /// Materializes a table from a shared
    /// [`CompiledFleet`](raysearch_core::CompiledFleet) artifact.
    ///
    /// The artifact's pieces were produced by the same
    /// [`compile_first_visit_pieces`](raysearch_core::compile_first_visit_pieces)
    /// this table's own builders use, so the resulting table answers
    /// bit-for-bit like one built fresh from the same tours — this is
    /// how Monte-Carlo estimation piggybacks on fleets already compiled
    /// by the exact evaluator or the serving layer.
    pub fn from_compiled(fleet: &raysearch_core::CompiledFleet) -> Self {
        let m = fleet.num_rays();
        let mut pieces = Vec::with_capacity(fleet.num_robots() * m);
        for robot in 0..fleet.num_robots() {
            for ray in 0..m {
                pieces.push(fleet.pieces(robot, ray).collect());
            }
        }
        VisitTable { m, pieces }
    }

    /// Number of robots in the compiled fleet.
    pub fn num_robots(&self) -> usize {
        self.pieces.len() / self.m
    }

    /// Number of rays.
    pub fn num_rays(&self) -> usize {
        self.m
    }

    /// First-visit time of `robot` to a target at distance `x` on `ray`,
    /// or `None` if the robot's plan never reaches it.
    #[inline]
    pub fn first_visit(&self, robot: usize, ray: usize, x: f64) -> Option<f64> {
        let per_ray = &self.pieces[robot * self.m + ray];
        let idx = per_ray.partition_point(|p| p.lo < x);
        if idx == 0 {
            return None;
        }
        let p = &per_ray[idx - 1];
        (x <= p.hi).then_some(p.c + x)
    }

    /// All piece boundaries on `ray` strictly inside `(lo, hi)`, sorted
    /// and deduplicated — the exact adversary's candidate target set,
    /// used by the adversarial-grid replay sampler.
    pub fn boundaries_on_ray(&self, ray: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut bs: Vec<f64> = Vec::new();
        for robot in 0..self.num_robots() {
            for p in &self.pieces[robot * self.m + ray] {
                for b in [p.lo, p.hi] {
                    if b > lo && b < hi {
                        bs.push(b);
                    }
                }
            }
        }
        bs.sort_by(f64::total_cmp);
        bs.dedup();
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_strategies::{CyclicExponential, RayStrategy};

    fn fleet() -> Vec<TourItinerary> {
        CyclicExponential::optimal(3, 4, 1)
            .unwrap()
            .fleet_tours(500.0)
            .unwrap()
    }

    #[test]
    fn matches_the_exact_evaluator_bit_for_bit() {
        use raysearch_core::RayEvaluator;

        let fleet = fleet();
        let table = VisitTable::from_fleet(&fleet).unwrap();
        let evaluator = RayEvaluator::new(3, 1, 1.0, 400.0).unwrap();
        for ray in 0..3 {
            for &x in &[1.0, 1.5, 7.3, 41.0, 333.0] {
                // the (f+1)-st order statistic over the whole fleet,
                // computed from the table exactly as the evaluator does
                let mut times: Vec<f64> = (0..table.num_robots())
                    .filter_map(|r| table.first_visit(r, ray, x))
                    .collect();
                times.sort_by(f64::total_cmp);
                let ours = (times.len() >= 2).then(|| times[1]);
                let truth = evaluator.detection_time(&fleet, ray, x).unwrap();
                assert_eq!(ours, truth, "ray {ray}, x {x}");
            }
        }
    }

    #[test]
    fn unreached_targets_are_none() {
        let table = VisitTable::from_fleet(&fleet()).unwrap();
        for robot in 0..table.num_robots() {
            for ray in 0..table.num_rays() {
                assert_eq!(table.first_visit(robot, ray, 1e12), None);
            }
        }
    }

    #[test]
    fn boundaries_are_sorted_in_range() {
        let table = VisitTable::from_fleet(&fleet()).unwrap();
        let bs = table.boundaries_on_ray(0, 1.0, 400.0);
        assert!(!bs.is_empty());
        assert!(bs.windows(2).all(|w| w[0] < w[1]));
        assert!(bs.iter().all(|&b| b > 1.0 && b < 400.0));
    }

    #[test]
    fn log_fleet_table_answers_bit_for_bit_like_the_linear_one() {
        let strat = CyclicExponential::optimal(3, 4, 1).unwrap();
        let linear = VisitTable::from_fleet(&strat.fleet_tours(500.0).unwrap()).unwrap();
        let log =
            VisitTable::from_log_fleet(&strat.fleet_log_tours(500.0).unwrap(), 125.0).unwrap();
        assert_eq!(log.num_robots(), 4);
        assert_eq!(log.num_rays(), 3);
        for robot in 0..4 {
            for ray in 0..3 {
                for &x in &[1.0, 1.5, 7.3, 41.0, 124.9] {
                    let a = linear.first_visit(robot, ray, x);
                    let b = log.first_visit(robot, ray, x);
                    assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "robot {robot}, ray {ray}, x {x}"
                    );
                }
            }
            for ray in 0..3 {
                assert_eq!(
                    linear.boundaries_on_ray(ray, 1.0, 125.0),
                    log.boundaries_on_ray(ray, 1.0, 125.0)
                );
            }
        }
    }

    #[test]
    fn log_fleet_table_handles_formerly_overflowing_fleets() {
        // k = 149 on the line: the linear fleet does not exist
        let strat = CyclicExponential::optimal(2, 149, 74).unwrap();
        assert!(strat.fleet_tours(4e12).is_err());
        let table =
            VisitTable::from_log_fleet(&strat.fleet_log_tours(4e12).unwrap(), 1e12).unwrap();
        assert_eq!(table.num_robots(), 149);
        // every in-range target is eventually visited by some robot
        for &x in &[1.0, 1e3, 1e9, 1e12] {
            assert!(
                (0..149).any(|r| table.first_visit(r, 0, x).is_some()),
                "x = {x} unreachable"
            );
        }
    }

    #[test]
    fn compiled_artifact_table_is_bit_identical_to_the_streamed_one() {
        use raysearch_core::FleetBuilder;
        use raysearch_sim::RobotId;

        let strat = CyclicExponential::optimal(3, 4, 1).unwrap();
        let streamed =
            VisitTable::from_log_fleet(&strat.fleet_log_tours(500.0).unwrap(), 125.0).unwrap();
        let mut builder = FleetBuilder::new(3, 125.0).unwrap();
        for r in 0..4 {
            builder
                .push_log_tour(&strat.log_tour_prefix(RobotId(r), 125.0).unwrap())
                .unwrap();
        }
        let shared = VisitTable::from_compiled(&builder.finish());
        assert_eq!(shared, streamed, "piece-for-piece identical tables");
    }

    #[test]
    fn streaming_builder_validates() {
        assert!(VisitTable::new(0).is_err());
        let mut table = VisitTable::new(2).unwrap();
        let three_ray = CyclicExponential::optimal(3, 4, 1)
            .unwrap()
            .log_tour(raysearch_sim::RobotId(0), 100.0)
            .unwrap();
        assert!(table.push_log_tour(&three_ray, 100.0).is_err());
        let two_ray = CyclicExponential::optimal(2, 3, 1)
            .unwrap()
            .log_tour(raysearch_sim::RobotId(0), 100.0)
            .unwrap();
        assert!(table.push_log_tour(&two_ray, f64::INFINITY).is_err());
        assert!(table.push_log_tour(&two_ray, 100.0).is_ok());
        assert_eq!(table.num_robots(), 1);
        assert!(VisitTable::from_log_fleet(&[], 10.0).is_err());
    }

    #[test]
    fn rejects_bad_fleets() {
        assert!(VisitTable::from_fleet(&[]).is_err());
        let mut mixed = fleet();
        mixed.push(
            CyclicExponential::optimal(2, 3, 1)
                .unwrap()
                .fleet_tours(100.0)
                .unwrap()
                .remove(0),
        );
        assert!(VisitTable::from_fleet(&mixed).is_err());
    }
}
