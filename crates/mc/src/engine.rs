//! The Monte-Carlo scenario, the batched parallel driver, and the
//! closed-form comparison report.
//!
//! # Determinism contract
//!
//! [`estimate`] is a pure function of `(Scenario, seed, samples, batch,
//! bins)`. The thread count shapes only the schedule:
//!
//! 1. sample `i` draws from its own counter-based generator
//!    [`SplitMix64::keyed`]`(seed, i)` — no shared stream to race on;
//! 2. samples are folded into batches of a fixed size (`cfg.batch`),
//!    whose boundaries depend only on the sample count;
//! 3. batches are evaluated by
//!    [`par_map_threads`] (order-preserving)
//!    and merged in batch order on the calling thread.
//!
//! Every [`McReport`] is therefore bit-identical across `threads ∈ {1,
//! 2, 8, …}`, which is what makes the serving layer's cache sound.

use rand::rngs::SplitMix64;
use raysearch_core::{par_map_threads, CanonF64, CompileCache, FleetBuilder, FleetKey, NoCache};
use raysearch_sim::RobotId;
use raysearch_strategies::CyclicExponential;

use crate::estimator::BatchEstimate;
use crate::sampler::{FaultSampler, TargetSampler};
use crate::visits::VisitTable;
use crate::McError;

/// Largest fleet the engine accepts (fault draws are fixed-width
/// [`SilentMask`](crate::SilentMask) bitsets of this many bits, and the
/// fleet compiles through the log-domain tour pipeline, so turn-point
/// overflow no longer caps `k`).
pub const MAX_FLEET: u32 = 4096;

/// A fully specified average-case experiment: the instance `(m, k, f)`
/// whose *optimal* cyclic exponential fleet is simulated, the evaluation
/// horizon, and the two samplers.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    m: u32,
    k: u32,
    f: u32,
    horizon: f64,
    faults: FaultSampler,
    targets: TargetSampler,
}

impl Scenario {
    /// Validates and builds a scenario over targets in `[1, horizon]`.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if `(m, k, f)` is outside the
    /// searchable regime `f < k < m(f+1)`, `k` exceeds [`MAX_FLEET`],
    /// the horizon is not in `(1, ∞)`, or a sampler rejects the
    /// instance.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_mc::{FaultSampler, Scenario, TargetSampler};
    ///
    /// let s = Scenario::new(
    ///     2,
    ///     3,
    ///     1,
    ///     1e4,
    ///     FaultSampler::UniformSubset { f: 1 },
    ///     TargetSampler::LogUniform { lo: 1.0, hi: 1e4 },
    /// )?;
    /// assert!(s.closed_form() > 1.0); // Λ(q/k), the exact worst case
    /// # Ok::<(), raysearch_mc::McError>(())
    /// ```
    pub fn new(
        m: u32,
        k: u32,
        f: u32,
        horizon: f64,
        faults: FaultSampler,
        targets: TargetSampler,
    ) -> Result<Self, McError> {
        if k > MAX_FLEET {
            return Err(McError::invalid(format!(
                "fleet size k = {k} exceeds the engine ceiling {MAX_FLEET}"
            )));
        }
        if !(horizon.is_finite() && horizon > 1.0) {
            return Err(McError::invalid(format!(
                "horizon must lie in (1, inf), got {horizon}"
            )));
        }
        // demands the searchable regime, like the exact evaluator path
        let _ = CyclicExponential::optimal(m, k, f)?;
        faults.validate(k)?;
        targets.validate(m as usize, 1.0, horizon)?;
        Ok(Scenario {
            m,
            k,
            f,
            horizon,
            faults,
            targets,
        })
    }

    /// Number of rays.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of robots.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Fault budget of the simulated strategy.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// The evaluation horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The fault sampler.
    pub fn faults(&self) -> &FaultSampler {
        &self.faults
    }

    /// The target sampler.
    pub fn targets(&self) -> &TargetSampler {
        &self.targets
    }

    /// The exact worst case `Λ(q/k) = A(m, k, f)` this scenario's
    /// average is compared against.
    pub fn closed_form(&self) -> f64 {
        raysearch_bounds::a_rays(self.m, self.k, self.f)
            .expect("scenario construction admitted only the searchable regime")
    }

    /// Builds the adversarial-grid replay sampler for this scenario: the
    /// exact adversary's candidate targets (every per-robot piece
    /// boundary of the optimal fleet, nudged just past the boundary,
    /// plus the inner edge of every ray).
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if the fleet cannot be
    /// materialized (a regression — construction already validated it).
    pub fn adversarial_grid(&self) -> Result<TargetSampler, McError> {
        let table = self.visit_table()?;
        let mut points = Vec::new();
        for ray in 0..self.m as usize {
            points.push((ray, 1.0));
            for b in table.boundaries_on_ray(ray, 1.0, self.horizon) {
                // the sup is a right-limit at the boundary; replay a
                // point just inside the next piece
                let x = b * (1.0 + 1e-12);
                if x < self.horizon {
                    points.push((ray, x));
                }
            }
        }
        Ok(TargetSampler::GridReplay { points })
    }

    /// Compiles the optimal fleet's first-visit table through the
    /// log-domain tour pipeline — the same pieces
    /// [`evaluate_optimal`](raysearch_core::eval::evaluate_optimal)
    /// compiles, so the two paths agree bit-for-bit, and without ever
    /// materializing a turn point in linear space (which overflowed
    /// from `k ≈ 139`).
    fn visit_table(&self) -> Result<VisitTable, McError> {
        self.visit_table_cached(&NoCache)
    }

    /// [`Scenario::visit_table`] through a shared compile cache. The
    /// artifact key matches
    /// [`evaluate_optimal_cached`](raysearch_core::evaluate_optimal_cached)
    /// at the same horizon, so Monte-Carlo runs reuse fleets the exact
    /// evaluator (or the serving layer) already compiled.
    fn visit_table_cached<C: CompileCache>(&self, cache: &C) -> Result<VisitTable, McError> {
        let strategy = CyclicExponential::optimal(self.m, self.k, self.f)?;
        let key = FleetKey::Cyclic {
            m: self.m,
            k: self.k,
            alpha: CanonF64::new(strategy.alpha())
                .map_err(|e| McError::invalid(format!("first-visit compilation: {e}")))?,
            cap: CanonF64::new(self.horizon)
                .map_err(|e| McError::invalid(format!("first-visit compilation: {e}")))?,
        };
        let fleet = cache
            .get_or_compile(key, &mut || {
                let mut builder = FleetBuilder::new(self.m as usize, self.horizon)?;
                for r in 0..self.k as usize {
                    builder.push_log_tour(&strategy.log_tour_prefix(RobotId(r), self.horizon)?)?;
                }
                Ok(builder.finish())
            })
            .map_err(|e| McError::invalid(format!("first-visit compilation: {e}")))?;
        Ok(VisitTable::from_compiled(&fleet))
    }
}

/// Estimation knobs: the master seed, the sample budget, and the
/// batching/sketch layout (part of the determinism key), plus the
/// thread count (deliberately *not* part of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Master seed; sample `i` draws from `SplitMix64::keyed(seed, i)`.
    pub seed: u64,
    /// Number of Monte-Carlo samples.
    pub samples: u64,
    /// Worker threads (`None` = machine parallelism, `Some(1)` =
    /// sequential). Never changes the result.
    pub threads: Option<usize>,
    /// Samples per batch; batch boundaries are part of the result's
    /// identity (they fix the floating-point merge order).
    pub batch: u64,
    /// Quantile-sketch bins over `[1, Λ(q/k)]`.
    pub bins: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            seed: 1707, // arXiv:1707.05077
            samples: 20_000,
            threads: None,
            batch: 4096,
            bins: 256,
        }
    }
}

impl McConfig {
    /// A config with the given seed and sample budget, defaults
    /// elsewhere.
    pub fn with_seed(seed: u64, samples: u64) -> Self {
        McConfig {
            seed,
            samples,
            ..McConfig::default()
        }
    }
}

/// The finished estimate: distribution statistics of the detection
/// ratio plus the closed-form worst case for contrast.
///
/// Statistics (`mean` … `max`) are over *detected* samples; samples
/// whose target was never confirmed by enough robots are counted in
/// `undetected` (possible only when a sampler may exceed the strategy's
/// fault budget, e.g. [`FaultSampler::IidCrash`]). [`estimate`] always
/// delivers `detected ≥ 1` (an all-undetected run is an error), so
/// `mean`/`min`/`max` and the quantiles are always finite; `variance`,
/// `std_error` and the confidence interval are `NaN` when `detected <
/// 2` (serialized as JSON `null`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct McReport {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Fault budget of the simulated optimal strategy.
    pub f: u32,
    /// The evaluation horizon.
    pub horizon: f64,
    /// Canonical fault-sampler name (`"worst"`, `"uniform"`, `"iid"`,
    /// `"byzantine"`).
    pub fault_model: String,
    /// Canonical target-sampler name (`"fixed"`, `"loguniform"`,
    /// `"grid"`).
    pub target_model: String,
    /// The master seed.
    pub seed: u64,
    /// Total samples drawn.
    pub samples: u64,
    /// Samples whose target was detected.
    pub detected: u64,
    /// Samples whose target was never confirmed.
    pub undetected: u64,
    /// Mean detection ratio over detected samples.
    pub mean: f64,
    /// Unbiased sample variance of the ratio.
    pub variance: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Lower edge of the 95% normal-approximation confidence interval.
    pub ci95_lo: f64,
    /// Upper edge of the 95% normal-approximation confidence interval.
    pub ci95_hi: f64,
    /// Median detection ratio (conservative sketch estimate).
    pub p50: f64,
    /// 90th-percentile ratio (conservative sketch estimate).
    pub p90: f64,
    /// 95th-percentile ratio (conservative sketch estimate).
    pub p95: f64,
    /// Smallest detected ratio (exact).
    pub min: f64,
    /// Largest detected ratio (exact).
    pub max: f64,
    /// The exact worst case `Λ(q/k)` of Theorems 1/6.
    pub closed_form: f64,
}

impl McReport {
    /// The average-vs-worst-case contrast.
    pub fn comparison(&self) -> ClosedFormComparison {
        ClosedFormComparison {
            closed_form: self.closed_form,
            mean: self.mean,
            p95: self.p95,
            max: self.max,
            mean_slack: self.closed_form - self.mean,
            within_worst_case: self.undetected == 0
                && self.max <= self.closed_form * (1.0 + 1e-9) + 1e-9,
        }
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "(m={}, k={}, f={}) {}x{}: mean {:.4} / p95 {:.4} / max {:.4} vs Λ = {:.4} ({} of {} undetected)",
            self.m,
            self.k,
            self.f,
            self.fault_model,
            self.target_model,
            self.mean,
            self.p95,
            self.max,
            self.closed_form,
            self.undetected,
            self.samples
        )
    }
}

/// The `compare_to_closed_form` report: empirical mean/p95/max against
/// the exact worst case.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClosedFormComparison {
    /// The exact worst case `Λ(q/k)`.
    pub closed_form: f64,
    /// Empirical mean ratio.
    pub mean: f64,
    /// Empirical 95th percentile.
    pub p95: f64,
    /// Empirical maximum.
    pub max: f64,
    /// `closed_form − mean`: what the average case gains over the
    /// adversary.
    pub mean_slack: f64,
    /// Whether every sample stayed within the budgeted worst case
    /// (always true for budget-respecting samplers; may be false for
    /// i.i.d. faults that exceed the budget).
    pub within_worst_case: bool,
}

/// Runs the Monte-Carlo estimation.
///
/// See the [module docs](self) for the determinism contract.
///
/// # Errors
///
/// Returns [`McError::InvalidInput`] on a zero sample budget, a zero
/// batch size, fewer than two sketch bins, a fleet that fails to
/// materialize, or a run in which *every* sample was undetected (no
/// statistics exist then; deterministic per `(seed, samples)`).
///
/// # Example
///
/// ```
/// use raysearch_mc::{estimate, FaultSampler, McConfig, Scenario, TargetSampler};
///
/// let scenario = Scenario::new(
///     2,
///     3,
///     1,
///     1e3,
///     FaultSampler::UniformSubset { f: 1 },
///     TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
/// )?;
/// let report = estimate(&scenario, &McConfig::with_seed(7, 2_000))?;
/// assert_eq!(report.detected, 2_000);
/// // the average case is strictly better than the adversary
/// assert!(report.mean < report.closed_form);
/// # Ok::<(), raysearch_mc::McError>(())
/// ```
pub fn estimate(scenario: &Scenario, cfg: &McConfig) -> Result<McReport, McError> {
    estimate_cached(scenario, cfg, &NoCache)
}

/// [`estimate`] with a shared compile cache for the fleet's first-visit
/// table.
///
/// The report is bit-identical to [`estimate`]'s — the cached artifact
/// holds the same pieces a fresh compilation produces — so the serving
/// layer can route Monte-Carlo requests through its compile memo
/// without perturbing cached payloads.
///
/// # Errors
///
/// As [`estimate`].
pub fn estimate_cached<C: CompileCache>(
    scenario: &Scenario,
    cfg: &McConfig,
    cache: &C,
) -> Result<McReport, McError> {
    if cfg.samples == 0 {
        return Err(McError::invalid("sample budget must be at least 1"));
    }
    if cfg.batch == 0 {
        return Err(McError::invalid("batch size must be at least 1"));
    }
    if cfg.bins < 2 {
        return Err(McError::invalid("quantile sketch needs at least 2 bins"));
    }
    let table = scenario.visit_table_cached(cache)?;
    let closed_form = scenario.closed_form();
    let m = scenario.m as usize;
    let k = scenario.k as usize;

    let num_batches = cfg.samples.div_ceil(cfg.batch);
    let batches: Vec<u64> = (0..num_batches).collect();
    let partials = par_map_threads(&batches, cfg.threads, |&b| {
        let mut acc = BatchEstimate::new(1.0, closed_form, cfg.bins);
        let mut times: Vec<f64> = Vec::with_capacity(k);
        let lo = b * cfg.batch;
        let hi = (lo + cfg.batch).min(cfg.samples);
        for i in lo..hi {
            let mut rng = SplitMix64::keyed(cfg.seed, i);
            let (ray, x) = scenario.targets.draw(m, &mut rng);
            let draw = scenario.faults.draw(k, &mut rng);
            times.clear();
            for robot in 0..k {
                if !draw.silent.is_silent(robot) {
                    if let Some(t) = table.first_visit(robot, ray, x) {
                        times.push(t);
                    }
                }
            }
            if times.len() < draw.needed {
                acc.push_undetected();
            } else {
                times.sort_by(f64::total_cmp);
                acc.push_ratio(times[draw.needed - 1] / x);
            }
        }
        acc
    });

    // fixed-order fold: batch 0, 1, 2, … regardless of which thread
    // computed what
    let mut total = BatchEstimate::new(1.0, closed_form, cfg.bins);
    for partial in &partials {
        total.merge(partial);
    }

    let detected = total.welford.count();
    if detected == 0 {
        // with no detected sample every statistic is undefined (the
        // NaN/±∞ placeholders would serialize as JSON nulls and get
        // cached); refuse instead — the outcome is still deterministic
        // per (seed, samples), so callers see a stable error
        return Err(McError::invalid(format!(
            "all {} samples were undetected under the {:?} fault model — \
             no ratio statistics exist; raise the sample budget or lower \
             the fault probability",
            cfg.samples,
            scenario.faults.name()
        )));
    }
    let mean = total.welford.mean();
    let std_error = total.welford.std_error();
    let quantile = |q: f64| total.sketch.quantile(q).unwrap_or(total.max);
    Ok(McReport {
        m: scenario.m,
        k: scenario.k,
        f: scenario.f,
        horizon: scenario.horizon,
        fault_model: scenario.faults.name().to_owned(),
        target_model: scenario.targets.name().to_owned(),
        seed: cfg.seed,
        samples: cfg.samples,
        detected,
        undetected: total.undetected,
        mean,
        variance: total.welford.variance(),
        std_error,
        ci95_lo: mean - 1.96 * std_error,
        ci95_hi: mean + 1.96 * std_error,
        p50: quantile(0.5),
        p90: quantile(0.9),
        p95: quantile(0.95),
        min: total.min,
        max: total.max,
        closed_form,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(faults: FaultSampler, targets: TargetSampler) -> Scenario {
        Scenario::new(2, 3, 1, 1e3, faults, targets).unwrap()
    }

    #[test]
    fn scenario_validation() {
        let ft = FaultSampler::WorstCaseSubset { f: 1 };
        let tg = TargetSampler::LogUniform { lo: 1.0, hi: 1e3 };
        // non-searchable regimes are rejected
        assert!(Scenario::new(2, 1, 1, 1e3, ft.clone(), tg.clone()).is_err());
        // trivial regime (k = q) too
        assert!(Scenario::new(2, 4, 1, 1e3, ft.clone(), tg.clone()).is_err());
        // bad horizon
        assert!(Scenario::new(2, 3, 1, 1.0, ft.clone(), tg.clone()).is_err());
        assert!(Scenario::new(2, 3, 1, f64::INFINITY, ft.clone(), tg.clone()).is_err());
        // sampler/instance mismatch
        assert!(Scenario::new(
            2,
            3,
            1,
            1e3,
            FaultSampler::UniformSubset { f: 3 },
            tg.clone()
        )
        .is_err());
        assert!(Scenario::new(2, 3, 1, 1e3, ft, TargetSampler::Fixed { ray: 5, x: 2.0 }).is_err());
    }

    #[test]
    fn estimate_validates_the_config() {
        let s = scenario(
            FaultSampler::WorstCaseSubset { f: 1 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        let mut cfg = McConfig::with_seed(1, 0);
        assert!(estimate(&s, &cfg).is_err());
        cfg.samples = 10;
        cfg.batch = 0;
        assert!(estimate(&s, &cfg).is_err());
        cfg.batch = 4;
        cfg.bins = 1;
        assert!(estimate(&s, &cfg).is_err());
    }

    #[test]
    fn worst_case_sampler_stays_at_or_below_the_closed_form() {
        let s = scenario(
            FaultSampler::WorstCaseSubset { f: 1 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        let r = estimate(&s, &McConfig::with_seed(42, 5_000)).unwrap();
        assert_eq!(r.detected + r.undetected, 5_000);
        assert_eq!(r.undetected, 0);
        assert!(r.min >= 1.0);
        assert!(r.max <= r.closed_form + 1e-9, "{} > Λ", r.max);
        assert!(r.mean < r.closed_form);
        assert!(r.comparison().within_worst_case);
        assert!(r.ci95_lo <= r.mean && r.mean <= r.ci95_hi);
        assert!(r.p50 <= r.p90 && r.p90 <= r.p95);
    }

    #[test]
    fn adversarial_grid_attains_nearly_the_sup() {
        let s = scenario(
            FaultSampler::WorstCaseSubset { f: 1 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        let grid = s.adversarial_grid().unwrap();
        let s2 = Scenario::new(2, 3, 1, 1e3, FaultSampler::WorstCaseSubset { f: 1 }, grid).unwrap();
        let r = estimate(&s2, &McConfig::with_seed(7, 20_000)).unwrap();
        assert!(r.max <= r.closed_form + 1e-9);
        assert!(
            r.max > 0.95 * r.closed_form,
            "grid replay max {} far from Λ {}",
            r.max,
            r.closed_form
        );
    }

    #[test]
    fn all_undetected_is_a_stable_error_not_a_nan_report() {
        let s = scenario(
            FaultSampler::IidCrash { p: 0.999_999 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        // at p ≈ 1 every robot is silent in every sample (verified for
        // this pinned seed; the outcome is deterministic thereafter)
        let err = estimate(&s, &McConfig::with_seed(0, 3)).unwrap_err();
        assert!(err.to_string().contains("undetected"), "{err}");
        // and the identical call errs identically
        let again = estimate(&s, &McConfig::with_seed(0, 3)).unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    fn iid_p_one_is_valid_and_errs_all_undetected_for_any_seed() {
        // p = 1 (every robot silent, deterministically) is a legitimate
        // distribution: the scenario validates, and every run surfaces
        // the stable all-undetected error regardless of seed
        let s = scenario(
            FaultSampler::IidCrash { p: 1.0 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        for seed in [0u64, 1, 42, u64::MAX] {
            let err = estimate(&s, &McConfig::with_seed(seed, 50)).unwrap_err();
            assert!(err.to_string().contains("undetected"), "seed {seed}: {err}");
        }
    }

    #[test]
    fn large_fleets_estimate_beyond_the_old_128_ceiling() {
        // k = 256 > the retired u128-mask ceiling; q = k + 2
        let s = Scenario::new(
            2,
            256,
            128,
            1e6,
            FaultSampler::WorstCaseSubset { f: 128 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e6 },
        )
        .unwrap();
        let base = estimate(&s, &McConfig::with_seed(9, 600)).unwrap();
        assert_eq!(base.detected, 600);
        assert!(base.max <= base.closed_form + 1e-9);
        assert!(base.mean >= 1.0 && base.mean < base.closed_form);
        // thread-count bit-identity holds at the new fleet sizes
        for threads in [2usize, 8] {
            let cfg = McConfig {
                threads: Some(threads),
                ..McConfig::with_seed(9, 600)
            };
            assert_eq!(estimate(&s, &cfg).unwrap(), base, "threads = {threads}");
        }
        // the ceiling itself is enforced at the new value
        assert!(Scenario::new(
            2,
            MAX_FLEET + 1,
            2049,
            1e6,
            FaultSampler::WorstCaseSubset { f: 2049 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e6 },
        )
        .is_err());
    }

    #[test]
    fn cached_estimate_is_bit_identical_and_shares_the_evaluator_artifact() {
        use raysearch_core::{evaluate_optimal_cached, CompileMemo};

        let s = scenario(
            FaultSampler::WorstCaseSubset { f: 1 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        let memo = CompileMemo::new();
        // the exact evaluator compiles (2, 3, α, 1e3) first...
        evaluate_optimal_cached(&memo, 2, 3, 1, 1e3).unwrap();
        let fresh = estimate(&s, &McConfig::with_seed(11, 2_000)).unwrap();
        // ...and the Monte-Carlo run is a pure cache hit on it
        let cached = estimate_cached(&s, &McConfig::with_seed(11, 2_000), &memo).unwrap();
        assert_eq!(fresh, cached, "cache must not move a single bit");
        let stats = memo.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn iid_faults_can_exceed_the_budgeted_worst_case() {
        let s = scenario(
            FaultSampler::IidCrash { p: 0.6 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        let r = estimate(&s, &McConfig::with_seed(3, 4_000)).unwrap();
        // with p = 0.6 and k = 3, all three robots crash ~21.6% of the
        // time: undetected samples must appear
        assert!(r.undetected > 0);
        assert_eq!(r.detected + r.undetected, 4_000);
        assert!(!r.comparison().within_worst_case);
    }

    #[test]
    fn summary_mentions_the_models() {
        let s = scenario(
            FaultSampler::UniformSubset { f: 1 },
            TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
        );
        let r = estimate(&s, &McConfig::with_seed(1, 500)).unwrap();
        let line = r.summary();
        assert!(line.contains("uniform") && line.contains("loguniform"));
    }
}
