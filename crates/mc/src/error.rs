//! Error type of the Monte-Carlo engine.

use std::fmt;

/// Failure modes of scenario construction and estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// A parameter is outside the domain the engine supports.
    InvalidInput(String),
}

impl McError {
    /// Convenience constructor for [`McError::InvalidInput`].
    pub fn invalid(message: impl Into<String>) -> Self {
        McError::InvalidInput(message.into())
    }
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::InvalidInput(message) => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for McError {}

impl From<raysearch_strategies::StrategyError> for McError {
    fn from(e: raysearch_strategies::StrategyError) -> Self {
        McError::invalid(format!("strategy: {e}"))
    }
}

impl From<raysearch_bounds::BoundsError> for McError {
    fn from(e: raysearch_bounds::BoundsError) -> Self {
        McError::invalid(format!("bounds: {e}"))
    }
}

impl From<raysearch_sim::SimError> for McError {
    fn from(e: raysearch_sim::SimError) -> Self {
        McError::invalid(format!("sim: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e = McError::invalid("bad p");
        assert!(e.to_string().contains("bad p"));
        // an out-of-regime instance surfaces as a strategy-tagged error
        let err = raysearch_strategies::CyclicExponential::optimal(2, 1, 5).unwrap_err();
        let s: McError = err.into();
        assert!(s.to_string().contains("strategy"));
    }
}
