//! `raysearch-mc` — a deterministic Monte-Carlo estimation engine for
//! random faults, random targets, and average-case competitive ratios.
//!
//! Everything else in the workspace is worst-case: exact adversaries,
//! closed forms `Λ(q/k)`, covering falsifications. This crate opens the
//! *stochastic* scenario family studied by the surrounding literature
//! (i.i.d. crash probabilities after Bonato et al. 2020, randomized
//! Byzantine placement after Czyzowicz et al.): it simulates the optimal
//! cyclic exponential fleet against *sampled* fault sets and *sampled*
//! targets, and contrasts the resulting detection-ratio distribution
//! with the exact worst case.
//!
//! # Architecture
//!
//! * [`VisitTable`] — the fleet's first-visit functions, compiled once
//!   (bit-compatible with the exact evaluator's piece construction);
//! * [`FaultSampler`] / [`TargetSampler`] — pluggable distributions
//!   over fault sets and target positions (see the taxonomy in
//!   [`sampler`]);
//! * [`Welford`] / [`QuantileSketch`] / [`BatchEstimate`] — streaming
//!   estimators whose merges are deterministic by construction;
//! * [`Scenario`] + [`estimate`] — the batched parallel driver and its
//!   [`McReport`], including the
//!   [`compare_to_closed_form`](McReport::comparison) contrast.
//!
//! # Determinism
//!
//! Results are **bit-identical for a fixed `(scenario, seed, samples,
//! batch, bins)` no matter the thread count**: sample `i` draws from its
//! own counter-based `SplitMix64::keyed(seed, i)` generator, batches
//! are fixed-size ranges of sample indices, and batch partials merge in
//! batch order. The serving layer relies on this to cache responses.
//!
//! # Example
//!
//! ```
//! use raysearch_mc::{estimate, FaultSampler, McConfig, Scenario, TargetSampler};
//!
//! // 3 robots on the line, one crashes uniformly at random; where does
//! // the *average* target land relative to the adversarial bound?
//! let scenario = Scenario::new(
//!     2,
//!     3,
//!     1,
//!     1e3,
//!     FaultSampler::UniformSubset { f: 1 },
//!     TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
//! )?;
//! let report = estimate(&scenario, &McConfig::with_seed(2018, 5_000))?;
//! let cmp = report.comparison();
//! assert!(cmp.within_worst_case);
//! assert!(cmp.mean_slack > 0.0); // strictly better than Λ(q/k) on average
//! # Ok::<(), raysearch_mc::McError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod engine;
pub mod estimator;
pub mod sampler;
pub mod visits;

pub use engine::{
    estimate, estimate_cached, ClosedFormComparison, McConfig, McReport, Scenario, MAX_FLEET,
};
pub use error::McError;
pub use estimator::{BatchEstimate, QuantileSketch, Welford};
pub use sampler::{FaultDraw, FaultSampler, SilentMask, TargetSampler};
pub use visits::VisitTable;
