//! Pluggable fault and target samplers.
//!
//! A Monte-Carlo sample is a pair of draws — *where the target hides*
//! and *which robots misbehave* — made from a counter-based
//! [`SplitMix64`] stream so that sample `i` of seed `s` is the same
//! bits no matter how samples are sharded across threads.
//!
//! ## Fault taxonomy
//!
//! | sampler | distribution | detection rule |
//! |---|---|---|
//! | [`FaultSampler::WorstCaseSubset`] | adversarial (no randomness) | `(f+1)`-st distinct visit (the crash adversary) |
//! | [`FaultSampler::UniformSubset`] | uniform random `f`-subset crashes | first visit by a healthy robot |
//! | [`FaultSampler::IidCrash`] | each robot crashes i.i.d. w.p. `p ∈ [0, 1]` (Bonato et al. 2020) | first visit by a healthy robot |
//! | [`FaultSampler::ByzantineMix`] | each robot Byzantine i.i.d. w.p. `p ∈ [0, 1]` | `(budget+1)`-corroboration (conservative verifier; Byzantine robots stay silent, their worst sound behaviour) |
//!
//! Every sampler reduces to one uniform rule: given the set of *silent*
//! robots and a count of *needed* confirmations, the detection time of a
//! target is the `needed`-th smallest first-visit time among non-silent
//! robots (infinite if fewer ever arrive). [`FaultSampler::WorstCaseSubset`]
//! silences nobody and demands `f+1` confirmations — exactly the order
//! statistic of the exact evaluator, which is what makes the
//! degenerate-sampler equality tests possible.

use rand::rngs::SplitMix64;
use rand::Rng;
use raysearch_faults::FaultKind;

use crate::McError;

/// A fixed-width bitset over the robots of one fleet, bit `r` set ⇔
/// robot `r` is silenced for the sample.
///
/// Sized for [`MAX_FLEET`](crate::MAX_FLEET) = 4096 robots (the old
/// `u128` representation capped the engine at `k ≤ 128`). A mask is a
/// plain `Copy` value, so per-sample draws stay allocation-free.
///
/// # Example
///
/// ```
/// use raysearch_mc::SilentMask;
///
/// let mut mask = SilentMask::EMPTY;
/// mask.set(3);
/// mask.set(1000); // far beyond the old 128-robot ceiling
/// assert!(mask.is_silent(1000) && !mask.is_silent(999));
/// assert_eq!(mask.count_ones(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SilentMask {
    words: [u64; SilentMask::WORDS],
}

impl SilentMask {
    /// Backing words: `64 × 64 = 4096` bits, one per possible robot.
    const WORDS: usize = 64;

    /// The mask with no robot silenced.
    pub const EMPTY: SilentMask = SilentMask {
        words: [0u64; SilentMask::WORDS],
    };

    /// Silences robot `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r ≥ 4096` (beyond [`MAX_FLEET`](crate::MAX_FLEET)).
    #[inline]
    pub fn set(&mut self, r: usize) {
        self.words[r / 64] |= 1u64 << (r % 64);
    }

    /// Whether robot `r` is silenced.
    ///
    /// # Panics
    ///
    /// Panics if `r ≥ 4096` (beyond [`MAX_FLEET`](crate::MAX_FLEET)).
    #[inline]
    pub fn is_silent(&self, r: usize) -> bool {
        self.words[r / 64] & (1u64 << (r % 64)) != 0
    }

    /// Number of silenced robots.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

impl std::fmt::Debug for SilentMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let silenced: Vec<usize> = (0..SilentMask::WORDS * 64)
            .filter(|&r| self.is_silent(r))
            .collect();
        write!(f, "SilentMask{silenced:?}")
    }
}

/// The per-sample outcome of a fault draw, reduced to the uniform
/// detection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDraw {
    /// Bit `r` set ⇔ robot `r` never reports (crashed or Byzantine-silent).
    pub silent: SilentMask,
    /// Confirmations required before the target counts as detected.
    pub needed: usize,
}

impl FaultDraw {
    /// Number of silenced robots.
    pub fn num_silent(&self) -> u32 {
        self.silent.count_ones()
    }
}

/// A distribution over fault outcomes for a fleet of `k` robots.
///
/// See the [module docs](self) for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSampler {
    /// The exact crash adversary: detection is the `(f+1)`-st distinct
    /// visit, the worst case over all `f`-subsets.
    WorstCaseSubset {
        /// Fault budget `f`.
        f: u32,
    },
    /// A uniform random `f`-subset of the robots crashes.
    UniformSubset {
        /// Number of crashed robots per sample.
        f: u32,
    },
    /// Every robot crashes independently with probability `p`, after
    /// "Probabilistically Faulty Searching on a Half-Line" (Bonato
    /// et al. 2020). More than `f` robots may crash, so ratios above the
    /// budgeted worst case — and undetected targets — are possible. At
    /// the `p = 1` extreme every robot is silent in every sample, and
    /// [`estimate`](crate::estimate) reports its stable, deterministic
    /// all-undetected error.
    IidCrash {
        /// Per-robot crash probability, in `[0, 1]`.
        p: f64,
    },
    /// Every robot turns Byzantine independently with probability `p`;
    /// a sound verifier with fault budget `budget` waits for
    /// `budget + 1` corroborating visits, and Byzantine robots stay
    /// silent (their worst behaviour against that rule).
    ByzantineMix {
        /// Per-robot Byzantine probability, in `[0, 1]`.
        p: f64,
        /// The verifier's fault budget.
        budget: u32,
    },
}

impl FaultSampler {
    /// The canonical model names, in taxonomy order — the domain of
    /// [`FaultSampler::from_name`] and the range of
    /// [`FaultSampler::name`].
    pub const NAMES: &'static [&'static str] = &["worst", "uniform", "iid", "byzantine"];

    /// The sampler's canonical name (used in reports and cache keys).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSampler::WorstCaseSubset { .. } => "worst",
            FaultSampler::UniformSubset { .. } => "uniform",
            FaultSampler::IidCrash { .. } => "iid",
            FaultSampler::ByzantineMix { .. } => "byzantine",
        }
    }

    /// The inverse of [`FaultSampler::name`]: builds the sampler
    /// registered under `name` for fault budget `f`, with per-robot
    /// probability `p` for the i.i.d. models (`worst`/`uniform` ignore
    /// it; `byzantine` uses `f` as its verifier budget). Returns `None`
    /// for an unknown name. This is the single mapping the `tablegen`
    /// E11 experiment and the `/montecarlo` endpoint both dispatch on.
    pub fn from_name(name: &str, f: u32, p: f64) -> Option<FaultSampler> {
        match name {
            "worst" => Some(FaultSampler::WorstCaseSubset { f }),
            "uniform" => Some(FaultSampler::UniformSubset { f }),
            "iid" => Some(FaultSampler::IidCrash { p }),
            "byzantine" => Some(FaultSampler::ByzantineMix { p, budget: f }),
            _ => None,
        }
    }

    /// The per-robot fault probability, for the models that have one.
    pub fn probability(&self) -> Option<f64> {
        match *self {
            FaultSampler::IidCrash { p } | FaultSampler::ByzantineMix { p, .. } => Some(p),
            _ => None,
        }
    }

    /// The fault model the sampled robots exhibit.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultSampler::ByzantineMix { .. } => FaultKind::Byzantine,
            _ => FaultKind::Crash,
        }
    }

    /// Checks the sampler against a fleet of `k` robots.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] if a subset size is not below
    /// `k`, a probability is outside `[0, 1]`, or a Byzantine budget is
    /// not below `k`.
    pub fn validate(&self, k: u32) -> Result<(), McError> {
        match *self {
            FaultSampler::WorstCaseSubset { f } | FaultSampler::UniformSubset { f } => {
                if f >= k {
                    return Err(McError::invalid(format!(
                        "fault subset size f = {f} must be below k = {k}"
                    )));
                }
            }
            FaultSampler::IidCrash { p } => check_probability(p)?,
            FaultSampler::ByzantineMix { p, budget } => {
                check_probability(p)?;
                if budget >= k {
                    return Err(McError::invalid(format!(
                        "byzantine budget {budget} must be below k = {k}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Draws one fault outcome for a fleet of `k` robots
    /// (`k ≤ `[`MAX_FLEET`](crate::MAX_FLEET)).
    ///
    /// The RNG consumption per draw is identical to the historical
    /// `u128`-mask implementation (one uniform per robot for the
    /// i.i.d. models, rejection sampling for the subset model), so
    /// reports for fleets within the old `k ≤ 128` ceiling are
    /// bit-for-bit unchanged.
    pub fn draw(&self, k: usize, rng: &mut SplitMix64) -> FaultDraw {
        debug_assert!(
            (1..=crate::MAX_FLEET as usize).contains(&k),
            "fleet size {k} out of mask range"
        );
        match *self {
            FaultSampler::WorstCaseSubset { f } => FaultDraw {
                silent: SilentMask::EMPTY,
                needed: f as usize + 1,
            },
            FaultSampler::UniformSubset { f } => {
                // rejection-sample f distinct robots; no allocation, and
                // the draw count depends only on the rng stream
                let mut silent = SilentMask::EMPTY;
                let mut chosen = 0u32;
                while chosen < f {
                    let r = rng.gen_range(0..k);
                    if !silent.is_silent(r) {
                        silent.set(r);
                        chosen += 1;
                    }
                }
                FaultDraw { silent, needed: 1 }
            }
            FaultSampler::IidCrash { p } => FaultDraw {
                silent: bernoulli_mask(k, p, rng),
                needed: 1,
            },
            FaultSampler::ByzantineMix { p, budget } => FaultDraw {
                silent: bernoulli_mask(k, p, rng),
                needed: budget as usize + 1,
            },
        }
    }
}

fn check_probability(p: f64) -> Result<(), McError> {
    if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
        return Err(McError::invalid(format!(
            "fault probability must lie in [0, 1], got {p}"
        )));
    }
    Ok(())
}

/// One Bernoulli(`p`) draw per robot, packed into a mask.
fn bernoulli_mask(k: usize, p: f64, rng: &mut SplitMix64) -> SilentMask {
    let mut mask = SilentMask::EMPTY;
    for r in 0..k {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        if u < p {
            mask.set(r);
        }
    }
    mask
}

/// A distribution over target positions on `m` rays.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetSampler {
    /// A point mass: every sample hides the target at the same spot.
    Fixed {
        /// Ray index (`0 ≤ ray < m`).
        ray: usize,
        /// Distance from the origin (`x ≥ 1`).
        x: f64,
    },
    /// Uniform ray choice crossed with a log-uniform distance in
    /// `[lo, hi]` — the scale-free prior matching the multiplicative
    /// structure of competitive ratios.
    LogUniform {
        /// Smallest distance (`≥ 1`).
        lo: f64,
        /// Largest distance (`> lo`, finite).
        hi: f64,
    },
    /// Replay of an explicit candidate list, sampled uniformly — used
    /// with the exact adversary's piece-boundary grid to stress the
    /// worst-case neighbourhoods.
    GridReplay {
        /// The `(ray, x)` candidates.
        points: Vec<(usize, f64)>,
    },
}

impl TargetSampler {
    /// The sampler's canonical name (used in reports and cache keys).
    pub fn name(&self) -> &'static str {
        match self {
            TargetSampler::Fixed { .. } => "fixed",
            TargetSampler::LogUniform { .. } => "loguniform",
            TargetSampler::GridReplay { .. } => "grid",
        }
    }

    /// Checks the sampler against `m` rays and the evaluation range
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidInput`] on an out-of-range ray, a
    /// distance outside `[lo, hi]`, an inverted interval, or an empty
    /// replay list.
    pub fn validate(&self, m: usize, range_lo: f64, range_hi: f64) -> Result<(), McError> {
        let check_point = |ray: usize, x: f64| -> Result<(), McError> {
            if ray >= m {
                return Err(McError::invalid(format!(
                    "target ray {ray} out of range for m = {m}"
                )));
            }
            if !(x.is_finite() && x >= range_lo && x <= range_hi) {
                return Err(McError::invalid(format!(
                    "target distance {x} outside [{range_lo}, {range_hi}]"
                )));
            }
            Ok(())
        };
        match self {
            TargetSampler::Fixed { ray, x } => check_point(*ray, *x),
            TargetSampler::LogUniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && *lo >= range_lo && *lo < *hi) {
                    return Err(McError::invalid(format!(
                        "log-uniform range must satisfy {range_lo} <= lo < hi, got [{lo}, {hi}]"
                    )));
                }
                if *hi > range_hi {
                    return Err(McError::invalid(format!(
                        "log-uniform hi {hi} exceeds the evaluation horizon {range_hi}"
                    )));
                }
                Ok(())
            }
            TargetSampler::GridReplay { points } => {
                if points.is_empty() {
                    return Err(McError::invalid("grid replay needs at least one point"));
                }
                points.iter().try_for_each(|&(ray, x)| check_point(ray, x))
            }
        }
    }

    /// Draws one target `(ray, x)` on `m` rays.
    pub fn draw(&self, m: usize, rng: &mut SplitMix64) -> (usize, f64) {
        match self {
            TargetSampler::Fixed { ray, x } => (*ray, *x),
            TargetSampler::LogUniform { lo, hi } => {
                let ray = rng.gen_range(0..m);
                let u: f64 = rng.gen_range(lo.ln()..=hi.ln());
                (ray, u.exp())
            }
            TargetSampler::GridReplay { points } => points[rng.gen_range(0..points.len())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_is_the_order_statistic_rule() {
        let mut rng = SplitMix64::keyed(1, 0);
        let d = FaultSampler::WorstCaseSubset { f: 2 }.draw(5, &mut rng);
        assert_eq!(d.silent, SilentMask::EMPTY);
        assert_eq!(d.needed, 3);
    }

    #[test]
    fn uniform_subset_silences_exactly_f() {
        let s = FaultSampler::UniformSubset { f: 3 };
        for i in 0..200 {
            let mut rng = SplitMix64::keyed(9, i);
            let d = s.draw(8, &mut rng);
            assert_eq!(d.num_silent(), 3, "sample {i}");
            assert_eq!(d.needed, 1);
            assert!((8..4096).all(|r| !d.silent.is_silent(r)));
        }
    }

    #[test]
    fn iid_crash_matches_probability_roughly() {
        let s = FaultSampler::IidCrash { p: 0.25 };
        let mut total = 0u32;
        for i in 0..2000 {
            let mut rng = SplitMix64::keyed(11, i);
            total += s.draw(4, &mut rng).num_silent();
        }
        let rate = f64::from(total) / (2000.0 * 4.0);
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        // p = 0 silences nobody, p = 1 silences everybody
        let mut rng = SplitMix64::keyed(11, 0);
        assert_eq!(
            FaultSampler::IidCrash { p: 0.0 }.draw(4, &mut rng).silent,
            SilentMask::EMPTY
        );
        let mut rng = SplitMix64::keyed(11, 0);
        assert_eq!(
            FaultSampler::IidCrash { p: 1.0 }
                .draw(200, &mut rng)
                .num_silent(),
            200
        );
    }

    #[test]
    fn byzantine_mix_raises_the_confirmation_bar() {
        let mut rng = SplitMix64::keyed(3, 7);
        let d = FaultSampler::ByzantineMix { p: 0.5, budget: 2 }.draw(6, &mut rng);
        assert_eq!(d.needed, 3);
        assert_eq!(
            FaultSampler::ByzantineMix { p: 0.5, budget: 2 }.kind(),
            FaultKind::Byzantine
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultSampler::UniformSubset { f: 4 }.validate(4).is_err());
        assert!(FaultSampler::WorstCaseSubset { f: 1 }.validate(4).is_ok());
        // the closed interval [0, 1] is the valid probability domain:
        // p = 1 (every robot silent) is a legitimate distribution whose
        // all-undetected outcome surfaces as estimate()'s stable error
        assert!(FaultSampler::IidCrash { p: 1.0 }.validate(4).is_ok());
        assert!(FaultSampler::IidCrash { p: 1.1 }.validate(4).is_err());
        assert!(FaultSampler::IidCrash { p: -0.1 }.validate(4).is_err());
        assert!(FaultSampler::IidCrash { p: f64::NAN }.validate(4).is_err());
        assert!(FaultSampler::ByzantineMix { p: 0.2, budget: 4 }
            .validate(4)
            .is_err());

        assert!(TargetSampler::Fixed { ray: 2, x: 5.0 }
            .validate(2, 1.0, 100.0)
            .is_err());
        assert!(TargetSampler::Fixed { ray: 1, x: 0.5 }
            .validate(2, 1.0, 100.0)
            .is_err());
        assert!(TargetSampler::LogUniform { lo: 10.0, hi: 2.0 }
            .validate(2, 1.0, 100.0)
            .is_err());
        assert!(TargetSampler::LogUniform { lo: 1.0, hi: 1e9 }
            .validate(2, 1.0, 100.0)
            .is_err());
        assert!(TargetSampler::GridReplay { points: vec![] }
            .validate(2, 1.0, 100.0)
            .is_err());
    }

    #[test]
    fn log_uniform_targets_stay_in_range() {
        let s = TargetSampler::LogUniform { lo: 1.0, hi: 1e4 };
        for i in 0..500 {
            let mut rng = SplitMix64::keyed(21, i);
            let (ray, x) = s.draw(3, &mut rng);
            assert!(ray < 3);
            assert!((1.0..=1e4).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn from_name_round_trips_every_model() {
        for &name in FaultSampler::NAMES {
            let sampler = FaultSampler::from_name(name, 2, 0.3).expect(name);
            assert_eq!(sampler.name(), name);
        }
        assert_eq!(FaultSampler::from_name("bogus", 1, 0.1), None);
        // probability is surfaced only by the iid models
        assert_eq!(
            FaultSampler::from_name("iid", 1, 0.3)
                .unwrap()
                .probability(),
            Some(0.3)
        );
        assert_eq!(
            FaultSampler::from_name("worst", 1, 0.3)
                .unwrap()
                .probability(),
            None
        );
    }

    #[test]
    fn draws_are_a_pure_function_of_the_key() {
        let s = FaultSampler::UniformSubset { f: 2 };
        let t = TargetSampler::LogUniform { lo: 1.0, hi: 100.0 };
        for i in [0u64, 17, 123_456] {
            let mut a = SplitMix64::keyed(5, i);
            let mut b = SplitMix64::keyed(5, i);
            assert_eq!(t.draw(4, &mut a), t.draw(4, &mut b));
            assert_eq!(s.draw(6, &mut a), s.draw(6, &mut b));
        }
    }
}
