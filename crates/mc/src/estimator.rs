//! Streaming estimators with deterministic parallel merges.
//!
//! The engine shards samples into fixed batches; each batch folds its
//! ratios into one [`BatchEstimate`] and the driver merges batch
//! estimates in batch order. Because the batch boundaries depend only on
//! the sample count (never on the thread count) and every merge is a
//! fixed-order fold, the final estimate is bit-identical across thread
//! counts.
//!
//! * [`Welford`] — numerically stable mean/variance (Welford's online
//!   update, Chan's pairwise merge);
//! * [`QuantileSketch`] — a fixed-bin histogram over `[lo, hi]` with an
//!   overflow bin; merges are exact integer adds, quantile reads are
//!   conservative (upper bin edge);
//! * [`BatchEstimate`] — the per-batch roll-up: Welford + sketch +
//!   exact min/max + the undetected counter.

/// Welford's online mean/variance accumulator.
///
/// # Example
///
/// ```
/// use raysearch_mc::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator in (Chan et al.'s pairwise update).
    /// Merge order matters for the low-order bits, so callers must merge
    /// in a deterministic order.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * (other.n as f64 / n as f64);
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64 / n as f64);
        *self = Welford { n, mean, m2 };
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// The unbiased sample variance (`NaN` below two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// The standard error of the mean, `sqrt(variance / n)`.
    pub fn std_error(&self) -> f64 {
        (self.variance() / self.n as f64).sqrt()
    }
}

/// A fixed-bin histogram over `[lo, hi]` answering conservative quantile
/// queries.
///
/// Observations above `hi` land in a dedicated overflow bin (below `lo`
/// they clamp into the first bin); merging two sketches with the same
/// layout is an exact element-wise add, so parallel accumulation cannot
/// perturb the result.
///
/// # Example
///
/// ```
/// use raysearch_mc::QuantileSketch;
///
/// let mut q = QuantileSketch::new(1.0, 11.0, 100);
/// for i in 0..1000 {
///     q.push(1.0 + 10.0 * f64::from(i) / 1000.0);
/// }
/// let median = q.quantile(0.5).unwrap();
/// assert!((median - 6.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
}

impl QuantileSketch {
    /// A sketch with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` (finite) and `bins ≥ 1` — sketch layout
    /// is engine configuration, not data.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi && bins >= 1,
            "sketch needs finite lo < hi and >= 1 bin"
        );
        QuantileSketch {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
        }
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Merges a sketch with the identical layout.
    ///
    /// # Panics
    ///
    /// Panics on a layout mismatch (an engine bug, not a data error).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge sketches with different layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
    }

    /// Total observations folded in.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// A conservative estimate of the `q`-quantile (`0 < q ≤ 1`): the
    /// upper edge of the bin where the cumulative count crosses
    /// `ceil(q · n)`, or `None` when the sketch is empty or the crossing
    /// lands in the overflow bin (then the true quantile exceeds `hi`
    /// and the caller should fall back to the tracked maximum).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        let bins = self.counts.len();
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let width = (self.hi - self.lo) / bins as f64;
                return Some(self.lo + width * (i + 1) as f64);
            }
        }
        None // crossing lies in the overflow bin
    }

    /// Observations that exceeded `hi`.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }
}

/// The per-batch accumulator the parallel driver folds.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEstimate {
    /// Mean/variance accumulator over detected samples.
    pub welford: Welford,
    /// Quantile sketch over detected samples.
    pub sketch: QuantileSketch,
    /// Exact smallest detected ratio (`+∞` when none).
    pub min: f64,
    /// Exact largest detected ratio (`-∞` when none).
    pub max: f64,
    /// Samples whose target was never confirmed by enough robots.
    pub undetected: u64,
}

impl BatchEstimate {
    /// An empty accumulator with the given sketch layout.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        BatchEstimate {
            welford: Welford::new(),
            sketch: QuantileSketch::new(lo, hi, bins),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            undetected: 0,
        }
    }

    /// Folds one detected ratio in.
    #[inline]
    pub fn push_ratio(&mut self, ratio: f64) {
        self.welford.push(ratio);
        self.sketch.push(ratio);
        self.min = self.min.min(ratio);
        self.max = self.max.max(ratio);
    }

    /// Records one undetected sample.
    #[inline]
    pub fn push_undetected(&mut self) {
        self.undetected += 1;
    }

    /// Merges a later batch in (call in batch order).
    pub fn merge(&mut self, other: &BatchEstimate) {
        self.welford.merge(&other.welford);
        self.sketch.merge(&other.sketch);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.undetected += other.undetected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_merge_equals_single_stream() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (f64::from(i) * 0.37).sin() * 5.0 + 10.0)
            .collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut merged = Welford::new();
        for chunk in xs.chunks(64) {
            let mut part = Welford::new();
            for &x in chunk {
                part.push(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        // merging in a fixed order is reproducible to the bit
        let mut again = Welford::new();
        for chunk in xs.chunks(64) {
            let mut part = Welford::new();
            for &x in chunk {
                part.push(x);
            }
            again.merge(&part);
        }
        assert_eq!(merged, again);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let mut one = Welford::new();
        one.push(3.5);
        assert_eq!(one.mean(), 3.5);
        assert!(one.variance().is_nan());
        let mut merged = Welford::new();
        merged.merge(&one);
        assert_eq!(merged, one);
    }

    #[test]
    fn sketch_quantiles_bracket_the_truth() {
        let mut q = QuantileSketch::new(0.0, 1.0, 200);
        let n = 10_000;
        for i in 0..n {
            q.push(f64::from(i) / f64::from(n));
        }
        for (p, truth) in [(0.5, 0.5), (0.9, 0.9), (0.95, 0.95)] {
            let est = q.quantile(p).unwrap();
            assert!(est >= truth - 1e-9, "p={p}: {est} < {truth}");
            assert!(est <= truth + 0.01, "p={p}: {est} too far above {truth}");
        }
    }

    #[test]
    fn sketch_overflow_and_clamp() {
        let mut q = QuantileSketch::new(1.0, 2.0, 4);
        q.push(0.5); // clamps into the first bin
        q.push(1.5);
        q.push(99.0); // overflow
        assert_eq!(q.count(), 3);
        assert_eq!(q.overflow_count(), 1);
        // the 1.0-quantile crossing lies in the overflow bin
        assert_eq!(q.quantile(1.0), None);
        assert!(q.quantile(0.5).is_some());
        assert_eq!(q.quantile(1.5), None);
    }

    #[test]
    fn sketch_merge_is_exact() {
        let mut a = QuantileSketch::new(0.0, 10.0, 10);
        let mut b = QuantileSketch::new(0.0, 10.0, 10);
        for i in 0..50 {
            a.push(f64::from(i % 10));
            b.push(f64::from(i % 7) + 3.5);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn sketch_merge_layout_mismatch_panics() {
        let mut a = QuantileSketch::new(0.0, 10.0, 10);
        let b = QuantileSketch::new(0.0, 10.0, 20);
        a.merge(&b);
    }

    #[test]
    fn batch_estimate_tracks_extremes_and_undetected() {
        let mut e = BatchEstimate::new(1.0, 10.0, 16);
        e.push_ratio(3.0);
        e.push_ratio(7.0);
        e.push_undetected();
        let mut f = BatchEstimate::new(1.0, 10.0, 16);
        f.push_ratio(2.0);
        e.merge(&f);
        assert_eq!(e.min, 2.0);
        assert_eq!(e.max, 7.0);
        assert_eq!(e.undetected, 1);
        assert_eq!(e.welford.count(), 3);
    }
}
