//! The determinism and exactness contract of the Monte-Carlo engine:
//!
//! * estimates are **bit-identical across thread counts** (property
//!   test over seeds and budgets);
//! * the degenerate scenario — point-mass target, worst-case-subset
//!   faults — reproduces the exact `RayEvaluator` answer **exactly**;
//! * the reference instances satisfy the acceptance bounds: empirical
//!   mean strictly below `Λ(q/k)`, empirical max within tolerance.

use proptest::prelude::*;
use raysearch_core::RayEvaluator;
use raysearch_mc::{estimate, FaultSampler, McConfig, McReport, Scenario, TargetSampler};
use raysearch_strategies::{CyclicExponential, RayStrategy};

fn line_scenario(k: u32, f: u32, horizon: f64) -> Scenario {
    Scenario::new(
        2,
        k,
        f,
        horizon,
        FaultSampler::UniformSubset { f },
        TargetSampler::LogUniform {
            lo: 1.0,
            hi: horizon,
        },
    )
    .unwrap()
}

fn run_with_threads(scenario: &Scenario, seed: u64, samples: u64, threads: usize) -> McReport {
    let cfg = McConfig {
        threads: Some(threads),
        ..McConfig::with_seed(seed, samples)
    };
    estimate(scenario, &cfg).unwrap()
}

#[test]
fn reports_are_bit_identical_across_thread_counts() {
    let scenario = line_scenario(3, 1, 1e4);
    let sequential = run_with_threads(&scenario, 99, 30_000, 1);
    for threads in [2, 8] {
        let parallel = run_with_threads(&scenario, 99, 30_000, threads);
        // PartialEq on the report compares every f64 exactly ...
        assert_eq!(parallel, sequential, "threads = {threads}");
        // ... and the serialized bytes agree too (what the cache stores)
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serde_json::to_string(&sequential).unwrap(),
            "serialized divergence at threads = {threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn thread_invariance_holds_for_any_seed_and_budget(
        seed in 0u64..1_000_000,
        samples in 1u64..3_000,
        threads in 2usize..9,
    ) {
        let scenario = line_scenario(3, 1, 500.0);
        let a = run_with_threads(&scenario, seed, samples, 1);
        let b = run_with_threads(&scenario, seed, samples, threads);
        // compare the serialized bytes (what the service caches): at
        // samples = 1 the variance fields are NaN, where derived
        // PartialEq would report a spurious mismatch (NaN != NaN)
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

#[test]
fn degenerate_point_mass_equals_the_exact_evaluator() {
    // point-mass target + worst-case-subset faults: every sample is the
    // same deterministic number, and it must be the exact adversarial
    // detection ratio the evaluator computes — bit for bit
    let (m, k, f) = (3u32, 4u32, 1u32);
    let horizon = 1e3;
    let fleet = CyclicExponential::optimal(m, k, f)
        .unwrap()
        .fleet_tours(horizon * 4.0)
        .unwrap();
    let evaluator = RayEvaluator::new(m as usize, f, 1.0, horizon).unwrap();
    for (ray, x) in [(0usize, 1.0f64), (1, 2.5), (2, 77.0), (0, 999.0)] {
        let scenario = Scenario::new(
            m,
            k,
            f,
            horizon,
            FaultSampler::WorstCaseSubset { f },
            TargetSampler::Fixed { ray, x },
        )
        .unwrap();
        let report = estimate(&scenario, &McConfig::with_seed(123, 2_000)).unwrap();
        let exact_time = evaluator
            .detection_time(&fleet, ray, x)
            .unwrap()
            .expect("target within covered range");
        let exact_ratio = exact_time / x;
        assert_eq!(report.mean, exact_ratio, "mean at ({ray}, {x})");
        assert_eq!(report.min, exact_ratio, "min at ({ray}, {x})");
        assert_eq!(report.max, exact_ratio, "max at ({ray}, {x})");
        assert_eq!(report.variance, 0.0, "variance at ({ray}, {x})");
        assert_eq!(report.undetected, 0);
    }
}

#[test]
fn reference_instances_meet_the_acceptance_bounds() {
    // the ISSUE's nominal reference (m=2, k=4, f=1) has k = m(f+1): the
    // *trivial* regime, where the optimal answer is a zone partition
    // with ratio 1 and the cyclic substrate (rightly) refuses; the
    // nearest searchable instances stand in
    for (m, k, f) in [(2u32, 3u32, 1u32), (3, 4, 1)] {
        let horizon = 1e4;
        let scenario = Scenario::new(
            m,
            k,
            f,
            horizon,
            FaultSampler::UniformSubset { f },
            TargetSampler::LogUniform {
                lo: 1.0,
                hi: horizon,
            },
        )
        .unwrap();
        let report = estimate(&scenario, &McConfig::with_seed(1707, 100_000)).unwrap();
        let lambda = scenario.closed_form();
        assert_eq!(report.detected, 100_000, "({m},{k},{f}) all detected");
        assert!(
            report.mean < lambda,
            "({m},{k},{f}) mean {} not strictly below Λ {lambda}",
            report.mean
        );
        assert!(
            report.max <= lambda + 1e-9,
            "({m},{k},{f}) max {} above Λ {lambda}",
            report.max
        );
        assert!(report.comparison().within_worst_case);
        // thread invariance on the full reference budget
        let octa = run_with_threads(&scenario, 1707, 100_000, 8);
        assert_eq!(octa, report);
    }
}

#[test]
fn distinct_seeds_disagree_but_converge() {
    let scenario = line_scenario(3, 1, 1e3);
    let a = estimate(&scenario, &McConfig::with_seed(1, 50_000)).unwrap();
    let b = estimate(&scenario, &McConfig::with_seed(2, 50_000)).unwrap();
    assert_ne!(a.mean, b.mean, "different seeds must explore differently");
    // both estimate the same underlying expectation: CIs overlap
    assert!(a.ci95_lo < b.ci95_hi && b.ci95_lo < a.ci95_hi);
}
