//! The compilation layer: fleet geometry compiled once, evaluated many
//! times.
//!
//! Every consumer of a fleet — the exact evaluator, the tightness
//! verdict, the Monte-Carlo `VisitTable`, every campaign grid cell —
//! needs the same derived structure: the per-`(robot, ray)` first-visit
//! pieces of [`compile_first_visit_pieces`]. That structure depends
//! only on the fleet's *geometry* (which strategy, how many rays and
//! robots, the geometric base, the compilation cap), not on the fault
//! budget `f` being evaluated against it; an η-sweep over `f` at fixed
//! geometry recompiles nothing.
//!
//! This module makes the compiled geometry a first-class artifact:
//!
//! * [`CompiledFleet`] — the arena-backed artifact: one contiguous
//!   structure-of-arrays piece store (`starts`/`ends`/`constants` plus
//!   `ray`/`robot` tags) with `(robot, ray)` span indices, instead of
//!   `k·m` little `Vec<FirstVisitPiece>`s;
//! * [`FleetBuilder`] — streaming construction, one tour at a time,
//!   through the *same* single-pass compilation the evaluator always
//!   used (bit-for-bit identical pieces);
//! * [`FleetKey`] — the memoization key `(strategy, m, k, α-or-η,
//!   cap)`, deliberately `f`-free;
//! * [`CompileCache`] / [`NoCache`] / [`CompileMemo`] — the cache
//!   seam: callers thread any cache through
//!   [`evaluate_optimal_cached`](crate::eval::evaluate_optimal_cached)
//!   and friends; [`CompileMemo`] is the sharded in-process memo the
//!   campaign runner and serving layer use, with hit/miss/timing
//!   counters ([`CompileStats`]).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use raysearch_sim::{LogTourItinerary, TourItinerary};

use crate::canon::CanonF64;
use crate::eval::{compile_first_visit_pieces, FirstVisitPiece};
use crate::CoreError;

/// The memoization key of a compiled fleet: everything the piece arenas
/// depend on, and nothing they don't.
///
/// The key is deliberately **`f`-free**: the cyclic exponential fleet's
/// excursions are a function of `(m, k, α, cap)` — the fault budget
/// enters only through the evaluator's order statistic (and through
/// `α`, when the caller derives `α` from `f`); the zone-partition fleet
/// is a function of `(m, k, cap)` alone, so trivial-regime cells with
/// different `f` share one artifact outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetKey {
    /// A [`CyclicExponential`](raysearch_strategies::CyclicExponential)
    /// fleet compiled with the given piece cap.
    Cyclic {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// The geometric base `α`.
        alpha: CanonF64,
        /// The compilation cap (the evaluation range's upper end).
        cap: CanonF64,
    },
    /// A [`ZonePartition`](raysearch_strategies::ZonePartition) fleet
    /// whose tours walk out to `cap`.
    Zone {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// The tour horizon the zone walkers were generated at.
        cap: CanonF64,
    },
}

/// A compiled fleet: every robot's first-visit pieces on every ray, in
/// one arena.
///
/// Storage is a structure of arrays — contiguous `starts`, `ends`,
/// `constants`, `ray`, `robot` vectors — with the pieces of `(robot,
/// ray)` occupying the contiguous index range `spans[robot·m + ray]`,
/// sorted by strictly increasing `lo` within each span. Piece *values*
/// are bit-for-bit the ones [`compile_first_visit_pieces`] produces, so
/// every consumer (exact sup, verdict, Monte-Carlo table) answers
/// identically whether it compiled fresh or pulled the artifact from a
/// cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFleet {
    m: usize,
    cap: f64,
    starts: Vec<f64>,
    ends: Vec<f64>,
    constants: Vec<f64>,
    ray: Vec<u32>,
    robot: Vec<u32>,
    /// `spans[robot * m + ray] = (first, last+1)` into the arenas.
    spans: Vec<(u32, u32)>,
}

impl CompiledFleet {
    /// Number of rays.
    #[inline]
    pub fn num_rays(&self) -> usize {
        self.m
    }

    /// Number of compiled robots.
    #[inline]
    pub fn num_robots(&self) -> usize {
        self.spans.len() / self.m
    }

    /// The compilation cap: queries are valid for targets `x ≤ cap`.
    #[inline]
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Total pieces across all robots and rays.
    #[inline]
    pub fn num_pieces(&self) -> usize {
        self.starts.len()
    }

    /// The pieces of one `(robot, ray)` pair, sorted by strictly
    /// increasing `lo`, materialized from the arena.
    ///
    /// # Panics
    ///
    /// Panics if `robot` or `ray` is out of range.
    pub fn pieces(&self, robot: usize, ray: usize) -> impl Iterator<Item = FirstVisitPiece> + '_ {
        assert!(ray < self.m, "ray {ray} out of range for m = {}", self.m);
        let (a, b) = self.spans[robot * self.m + ray];
        (a as usize..b as usize).map(|i| FirstVisitPiece {
            lo: self.starts[i],
            hi: self.ends[i],
            c: self.constants[i],
        })
    }

    /// The arena index range of one `(robot, ray)` pair.
    #[inline]
    fn span(&self, robot: usize, ray: usize) -> (usize, usize) {
        let (a, b) = self.spans[robot * self.m + ray];
        (a as usize, b as usize)
    }

    /// First-visit time of `robot` to a target at distance `x` on
    /// `ray`, or `None` if the robot's compiled plan never reaches it —
    /// one binary search on the `(robot, ray)` span, bit-identical to
    /// the evaluator's piece lookup.
    ///
    /// # Panics
    ///
    /// Panics if `robot` or `ray` is out of range.
    #[inline]
    pub fn first_visit(&self, robot: usize, ray: usize, x: f64) -> Option<f64> {
        let (a, b) = self.span(robot, ray);
        let starts = &self.starts[a..b];
        let idx = starts.partition_point(|&lo| lo < x);
        if idx == 0 {
            return None;
        }
        let i = a + idx - 1;
        (x <= self.ends[i]).then(|| self.constants[i] + x)
    }

    /// Folds every piece of one ray (across all robots, robot-major
    /// order) into `visit` as `(lo, hi, c)` — the flat iteration the
    /// event-sweep sup and boundary enumerations are built on.
    pub(crate) fn for_each_piece_on_ray(&self, ray: usize, mut visit: impl FnMut(f64, f64, f64)) {
        for robot in 0..self.num_robots() {
            let (a, b) = self.span(robot, ray);
            for i in a..b {
                visit(self.starts[i], self.ends[i], self.constants[i]);
            }
        }
    }

    /// The per-piece ray tags (parallel to the arenas).
    #[inline]
    pub fn ray_tags(&self) -> &[u32] {
        &self.ray
    }

    /// The per-piece robot tags (parallel to the arenas).
    #[inline]
    pub fn robot_tags(&self) -> &[u32] {
        &self.robot
    }
}

/// Streaming builder for a [`CompiledFleet`]: fix the geometry's ray
/// count and cap, push one tour per robot, then [`finish`].
///
/// [`finish`]: FleetBuilder::finish
///
/// # Example
///
/// ```
/// use raysearch_core::compiled::FleetBuilder;
/// use raysearch_sim::RobotId;
/// use raysearch_strategies::CyclicExponential;
///
/// let s = CyclicExponential::optimal(2, 3, 1)?;
/// let mut b = FleetBuilder::new(2, 100.0)?;
/// for r in 0..3 {
///     b.push_log_tour(&s.log_tour_prefix(RobotId(r), 100.0)?)?;
/// }
/// let fleet = b.finish();
/// assert_eq!(fleet.num_robots(), 3);
/// assert!(fleet.first_visit(0, 0, 5.0).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FleetBuilder {
    fleet: CompiledFleet,
}

impl FleetBuilder {
    /// A builder for an `m`-ray fleet whose pieces are valid for
    /// queries up to `cap`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `m = 0` or `cap` is not
    /// positive and finite.
    pub fn new(m: usize, cap: f64) -> Result<Self, CoreError> {
        if m == 0 {
            return Err(CoreError::invalid("need at least one ray"));
        }
        if !(cap.is_finite() && cap > 0.0) {
            return Err(CoreError::invalid(format!(
                "piece cap must be positive and finite, got {cap}"
            )));
        }
        Ok(FleetBuilder {
            fleet: CompiledFleet {
                m,
                cap,
                starts: Vec::new(),
                ends: Vec::new(),
                constants: Vec::new(),
                ray: Vec::new(),
                robot: Vec::new(),
                spans: Vec::new(),
            },
        })
    }

    /// Appends the per-ray piece vectors of one robot to the arenas.
    fn push_compiled(&mut self, per_ray: Vec<Vec<FirstVisitPiece>>) {
        let robot = self.fleet.num_robots() as u32;
        for (ray, pieces) in per_ray.into_iter().enumerate() {
            let start = self.fleet.starts.len() as u32;
            for p in pieces {
                self.fleet.starts.push(p.lo);
                self.fleet.ends.push(p.hi);
                self.fleet.constants.push(p.c);
                self.fleet.ray.push(ray as u32);
                self.fleet.robot.push(robot);
            }
            self.fleet
                .spans
                .push((start, self.fleet.starts.len() as u32));
        }
    }

    /// Compiles one robot's log-domain tour (truncated at the builder's
    /// cap) through [`compile_first_visit_pieces`] and appends it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the tour's ray count
    /// disagrees with the builder's, or a first-visit constant within
    /// the cap overflows `f64`.
    pub fn push_log_tour(&mut self, tour: &LogTourItinerary) -> Result<(), CoreError> {
        if tour.num_rays() != self.fleet.m {
            return Err(CoreError::invalid(format!(
                "tour is for {} rays, builder expects {}",
                tour.num_rays(),
                self.fleet.m
            )));
        }
        let per_ray = compile_first_visit_pieces(tour, self.fleet.cap)?;
        self.push_compiled(per_ray);
        Ok(())
    }

    /// Compiles one robot's linear tour and appends it — the exact
    /// mirror of the evaluator's historical per-ray construction (no
    /// cap truncation, so a finite tour compiles in full), in one pass
    /// over the excursions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the tour's ray count
    /// disagrees with the builder's.
    pub fn push_tour(&mut self, tour: &TourItinerary) -> Result<(), CoreError> {
        if tour.num_rays() != self.fleet.m {
            return Err(CoreError::invalid(format!(
                "tour is for {} rays, builder expects {}",
                tour.num_rays(),
                self.fleet.m
            )));
        }
        let m = self.fleet.m;
        let mut per_ray: Vec<Vec<FirstVisitPiece>> = vec![Vec::new(); m];
        let mut reach = vec![0.0f64; m];
        let mut prefix = 0.0f64;
        for e in tour.excursions() {
            let ray = e.ray.index();
            if e.turn > reach[ray] {
                per_ray[ray].push(FirstVisitPiece {
                    lo: reach[ray],
                    hi: e.turn,
                    c: 2.0 * prefix,
                });
                reach[ray] = e.turn;
            }
            prefix += e.turn;
        }
        self.push_compiled(per_ray);
        Ok(())
    }

    /// Finalizes the artifact.
    pub fn finish(self) -> CompiledFleet {
        self.fleet
    }
}

/// The cache seam of the compilation layer: anything that can answer
/// "give me the artifact for this key, compiling at most once on a
/// miss".
///
/// Implementations must return the `build` result unmodified on a miss
/// and must not cache errors.
pub trait CompileCache {
    /// Returns the artifact for `key`, invoking `build` only on a miss.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error (which is then *not* cached).
    fn get_or_compile(
        &self,
        key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError>;
}

/// The trivial cache: always compiles. Threading [`NoCache`] through a
/// `_cached` entry point reproduces the uncached behavior exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl CompileCache for NoCache {
    fn get_or_compile(
        &self,
        _key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError> {
        Ok(Arc::new(build()?))
    }
}

/// A snapshot of a [`CompileMemo`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CompileStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Artifacts currently held.
    pub entries: u64,
    /// Total wall-clock microseconds spent compiling on misses.
    pub compile_micros: u64,
}

impl CompileStats {
    /// The counter deltas `self − earlier` (entries stay absolute: they
    /// are a level, not a flow).
    pub fn since(&self, earlier: &CompileStats) -> CompileStats {
        CompileStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
            compile_micros: self.compile_micros.saturating_sub(earlier.compile_micros),
        }
    }
}

/// A sharded, unbounded in-process compile memo: the [`CompileCache`]
/// the campaign runner threads through its worker pool so grid cells
/// with shared geometry compile once, and the second memo tier the
/// serving layer keeps beside its result LRU.
///
/// Compilation happens under the shard lock, so concurrent requests for
/// the same key compile exactly once and everyone else blocks briefly
/// and shares the artifact. Errors are never cached. The memo is
/// unbounded — artifacts are a few hundred kilobytes at the largest
/// fleet sizes, and a campaign's key set is finite; a serving layer
/// that needs eviction wraps its own bounded store instead.
///
/// # Example
///
/// ```
/// use raysearch_core::compiled::CompileMemo;
/// use raysearch_core::eval::evaluate_optimal_cached;
///
/// let memo = CompileMemo::new();
/// let a = evaluate_optimal_cached(&memo, 2, 3, 1, 1e4)?;
/// let b = evaluate_optimal_cached(&memo, 2, 3, 1, 1e4)?;
/// assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
/// let stats = memo.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// # Ok::<(), raysearch_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct CompileMemo {
    shards: Vec<Mutex<HashMap<FleetKey, Arc<CompiledFleet>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compile_micros: AtomicU64,
}

impl Default for CompileMemo {
    fn default() -> Self {
        CompileMemo::new()
    }
}

impl CompileMemo {
    /// Default shard count: enough to keep an 8-thread campaign off a
    /// single lock without bloating the empty memo.
    const DEFAULT_SHARDS: usize = 16;

    /// A memo with the default shard count.
    pub fn new() -> Self {
        CompileMemo::with_shards(Self::DEFAULT_SHARDS)
    }

    /// A memo with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards = 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "compile memo needs at least one shard");
        CompileMemo {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compile_micros: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &FleetKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> CompileStats {
        CompileStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len() as u64).sum(),
            compile_micros: self.compile_micros.load(Ordering::Relaxed),
        }
    }

    /// Drops every held artifact (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

impl CompileCache for CompileMemo {
    fn get_or_compile(
        &self,
        key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError> {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        if let Some(found) = shard.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        // compile under the shard lock: same-key racers block and share
        // the one artifact instead of compiling redundantly
        let started = Instant::now();
        let built = build()?;
        self.compile_micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let arc = Arc::new(built);
        shard.insert(key, Arc::clone(&arc));
        Ok(arc)
    }
}

// `&C` caches transparently delegate, so call sites can thread either
// an owned cache or a shared reference without ceremony.
impl<C: CompileCache + ?Sized> CompileCache for &C {
    fn get_or_compile(
        &self,
        key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError> {
        (**self).get_or_compile(key, build)
    }
}

impl<C: CompileCache + ?Sized> CompileCache for Arc<C> {
    fn get_or_compile(
        &self,
        key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError> {
        (**self).get_or_compile(key, build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_sim::RobotId;
    use raysearch_strategies::{CyclicExponential, RayStrategy, ZonePartition};

    fn cyclic_fleet(cap: f64) -> CompiledFleet {
        let s = CyclicExponential::optimal(3, 4, 1).unwrap();
        let mut b = FleetBuilder::new(3, cap).unwrap();
        for r in 0..4 {
            b.push_log_tour(&s.log_tour_prefix(RobotId(r), cap).unwrap())
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn builder_validates() {
        assert!(FleetBuilder::new(0, 10.0).is_err());
        assert!(FleetBuilder::new(2, 0.0).is_err());
        assert!(FleetBuilder::new(2, f64::INFINITY).is_err());
        let mut b = FleetBuilder::new(2, 10.0).unwrap();
        let three_ray = CyclicExponential::optimal(3, 4, 1)
            .unwrap()
            .log_tour(RobotId(0), 10.0)
            .unwrap();
        assert!(b.push_log_tour(&three_ray).is_err());
        let three_ray_linear = CyclicExponential::optimal(3, 4, 1)
            .unwrap()
            .fleet_tours(10.0)
            .unwrap()
            .remove(0);
        assert!(b.push_tour(&three_ray_linear).is_err());
    }

    #[test]
    fn arena_pieces_match_fresh_compilation_bit_for_bit() {
        let s = CyclicExponential::optimal(3, 4, 1).unwrap();
        let cap = 500.0;
        let fleet = cyclic_fleet(cap);
        assert_eq!(fleet.num_rays(), 3);
        assert_eq!(fleet.num_robots(), 4);
        assert_eq!(fleet.cap(), cap);
        for r in 0..4usize {
            // the reference path: the full padded tour, compiled fresh
            let tour = s.log_tour(RobotId(r), cap * 4.0).unwrap();
            let fresh = compile_first_visit_pieces(&tour, cap).unwrap();
            for (ray, fresh_ray) in fresh.iter().enumerate() {
                let arena: Vec<FirstVisitPiece> = fleet.pieces(r, ray).collect();
                assert_eq!(arena.len(), fresh_ray.len(), "robot {r}, ray {ray}");
                for (a, b) in arena.iter().zip(fresh_ray) {
                    assert_eq!(a.lo.to_bits(), b.lo.to_bits());
                    assert_eq!(a.hi.to_bits(), b.hi.to_bits());
                    assert_eq!(a.c.to_bits(), b.c.to_bits());
                }
            }
        }
    }

    #[test]
    fn tags_are_parallel_to_the_arenas() {
        let fleet = cyclic_fleet(200.0);
        assert_eq!(fleet.ray_tags().len(), fleet.num_pieces());
        assert_eq!(fleet.robot_tags().len(), fleet.num_pieces());
        let mut seen = 0usize;
        for robot in 0..fleet.num_robots() {
            for ray in 0..fleet.num_rays() {
                for _ in fleet.pieces(robot, ray) {
                    assert_eq!(fleet.ray_tags()[seen] as usize, ray);
                    assert_eq!(fleet.robot_tags()[seen] as usize, robot);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, fleet.num_pieces());
    }

    #[test]
    fn first_visit_answers_like_the_piece_lookup() {
        let fleet = cyclic_fleet(500.0);
        for robot in 0..4usize {
            for ray in 0..3usize {
                for &x in &[0.5, 1.0, 7.3, 41.0, 499.0] {
                    let by_scan = fleet
                        .pieces(robot, ray)
                        .find(|p| p.lo < x && x <= p.hi)
                        .map(|p| p.c + x);
                    assert_eq!(
                        fleet.first_visit(robot, ray, x),
                        by_scan,
                        "robot {robot}, ray {ray}, x {x}"
                    );
                }
                // past the cap: the compiled plan's straddling piece
                // still answers (hi may exceed cap) or yields None
                assert_eq!(fleet.first_visit(robot, ray, 0.0), None);
            }
        }
    }

    #[test]
    fn linear_push_matches_zone_partition_tours() {
        let tours = ZonePartition::new(2, 4, 1)
            .unwrap()
            .fleet_tours(100.0)
            .unwrap();
        let mut b = FleetBuilder::new(2, 100.0).unwrap();
        for t in &tours {
            b.push_tour(t).unwrap();
        }
        let fleet = b.finish();
        assert_eq!(fleet.num_robots(), 4);
        // zone walkers go straight out: one piece on their own ray
        for (robot, tour) in tours.iter().enumerate() {
            let own_ray = tour.excursions()[0].ray.index();
            for ray in 0..2usize {
                let n = fleet.pieces(robot, ray).count();
                assert_eq!(n, usize::from(ray == own_ray), "robot {robot}, ray {ray}");
            }
        }
    }

    #[test]
    fn memo_hits_share_one_artifact_and_count() {
        let memo = CompileMemo::new();
        let key = FleetKey::Cyclic {
            m: 3,
            k: 4,
            alpha: CanonF64::new(1.5).unwrap(),
            cap: CanonF64::new(200.0).unwrap(),
        };
        let a = memo
            .get_or_compile(key, &mut || Ok(cyclic_fleet(200.0)))
            .unwrap();
        let b = memo
            .get_or_compile(key, &mut || panic!("hit must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        memo.clear();
        assert_eq!(memo.stats().entries, 0);
        // counters survive the clear
        assert_eq!(memo.stats().misses, 1);
    }

    #[test]
    fn memo_does_not_cache_errors() {
        let memo = CompileMemo::new();
        let key = FleetKey::Zone {
            m: 2,
            k: 4,
            cap: CanonF64::new(100.0).unwrap(),
        };
        let err = memo.get_or_compile(key, &mut || Err(CoreError::invalid("transient failure")));
        assert!(err.is_err());
        assert_eq!(memo.stats().entries, 0);
        // the next lookup compiles successfully
        let ok = memo.get_or_compile(key, &mut || Ok(cyclic_fleet(100.0)));
        assert!(ok.is_ok());
        assert_eq!(memo.stats().entries, 1);
    }

    #[test]
    fn stats_deltas() {
        let a = CompileStats {
            hits: 10,
            misses: 4,
            entries: 4,
            compile_micros: 900,
        };
        let b = CompileStats {
            hits: 25,
            misses: 6,
            entries: 6,
            compile_micros: 1500,
        };
        let d = b.since(&a);
        assert_eq!(
            (d.hits, d.misses, d.entries, d.compile_micros),
            (15, 2, 6, 600)
        );
    }

    #[test]
    fn keys_distinguish_geometry_not_faults() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FleetKey::Cyclic {
            m: 2,
            k: 8,
            alpha: CanonF64::new(1.25).unwrap(),
            cap: CanonF64::new(1e4).unwrap(),
        });
        // same geometry again: no new entry
        assert!(!set.insert(FleetKey::Cyclic {
            m: 2,
            k: 8,
            alpha: CanonF64::new(1.25).unwrap(),
            cap: CanonF64::new(1e4).unwrap(),
        }));
        // a different cap is a different artifact
        assert!(set.insert(FleetKey::Cyclic {
            m: 2,
            k: 8,
            alpha: CanonF64::new(1.25).unwrap(),
            cap: CanonF64::new(2e4).unwrap(),
        }));
        // zone keys never collide with cyclic keys
        assert!(set.insert(FleetKey::Zone {
            m: 2,
            k: 8,
            cap: CanonF64::new(1e4).unwrap(),
        }));
    }
}
