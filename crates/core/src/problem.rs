//! Problem specifications: instance parameters plus an evaluation horizon.

use raysearch_bounds::{LineInstance, RayInstance, Regime};

use crate::CoreError;

fn check_horizon(horizon: f64) -> Result<(), CoreError> {
    if horizon.is_finite() && horizon > 1.0 {
        Ok(())
    } else {
        Err(CoreError::invalid(format!(
            "horizon must be finite and > 1, got {horizon}"
        )))
    }
}

/// A line-search problem: `k` robots, `f` crash-faulty, targets in
/// `1 ≤ |x| ≤ horizon`.
///
/// # Example
///
/// ```
/// use raysearch_core::LineProblem;
/// let p = LineProblem::new(3, 1, 1e4)?;
/// assert_eq!(p.instance().k(), 3);
/// assert!(p.optimal_ratio().is_some());
/// # Ok::<(), raysearch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineProblem {
    instance: LineInstance,
    horizon: f64,
}

impl LineProblem {
    /// Creates a line problem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on invalid `(k, f)` or horizon.
    pub fn new(k: u32, f: u32, horizon: f64) -> Result<Self, CoreError> {
        check_horizon(horizon)?;
        Ok(LineProblem {
            instance: LineInstance::new(k, f)?,
            horizon,
        })
    }

    /// The instance parameters.
    #[inline]
    pub fn instance(&self) -> LineInstance {
        self.instance
    }

    /// The evaluation horizon.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The optimal competitive ratio per Theorem 1, if search is possible
    /// (`Some(1.0)` in the trivial regime, `None` if `k = f`).
    pub fn optimal_ratio(&self) -> Option<f64> {
        self.instance.regime().ratio()
    }

    /// The regime classification.
    pub fn regime(&self) -> Regime {
        self.instance.regime()
    }

    /// The optimal strategy for this problem (the PODC'16 construction),
    /// in its line view.
    ///
    /// # Errors
    ///
    /// Returns an error outside the searchable regime (in the trivial
    /// regime use
    /// [`TwoWaySaturation`](raysearch_strategies::baselines::TwoWaySaturation)).
    pub fn optimal_strategy(
        &self,
    ) -> Result<raysearch_strategies::CyclicExponentialLine, CoreError> {
        Ok(raysearch_strategies::CyclicExponential::optimal(
            2,
            self.instance.k(),
            self.instance.f(),
        )?
        .to_line()?)
    }

    /// Runs the full tightness verdict for this problem (see
    /// [`verify_tightness`](crate::verdict::verify_tightness)).
    ///
    /// # Errors
    ///
    /// Propagates verdict errors (out-of-regime instances, bad `eps`).
    pub fn verify(&self, eps: f64) -> Result<crate::TightnessReport, CoreError> {
        crate::verdict::verify_tightness(2, self.instance.k(), self.instance.f(), self.horizon, eps)
    }
}

impl std::fmt::Display for LineProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on [1, {}]", self.instance, self.horizon)
    }
}

/// An `m`-ray search problem: `k` robots, `f` crash-faulty, targets at
/// distance `1 ≤ x ≤ horizon` on any ray.
///
/// # Example
///
/// ```
/// use raysearch_core::RayProblem;
/// let p = RayProblem::new(3, 2, 0, 1e4)?;
/// assert_eq!(p.instance().q(), 3);
/// # Ok::<(), raysearch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RayProblem {
    instance: RayInstance,
    horizon: f64,
}

impl RayProblem {
    /// Creates an `m`-ray problem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on invalid `(m, k, f)` or
    /// horizon.
    pub fn new(m: u32, k: u32, f: u32, horizon: f64) -> Result<Self, CoreError> {
        check_horizon(horizon)?;
        Ok(RayProblem {
            instance: RayInstance::new(m, k, f)?,
            horizon,
        })
    }

    /// The instance parameters.
    #[inline]
    pub fn instance(&self) -> RayInstance {
        self.instance
    }

    /// The evaluation horizon.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The optimal competitive ratio per Theorem 6, if search is possible.
    pub fn optimal_ratio(&self) -> Option<f64> {
        self.instance.regime().ratio()
    }

    /// The regime classification.
    pub fn regime(&self) -> Regime {
        self.instance.regime()
    }

    /// The optimal strategy for this problem (the appendix construction).
    ///
    /// # Errors
    ///
    /// Returns an error outside the searchable regime (in the trivial
    /// regime use [`ZonePartition`](raysearch_strategies::ZonePartition)).
    pub fn optimal_strategy(&self) -> Result<raysearch_strategies::CyclicExponential, CoreError> {
        Ok(raysearch_strategies::CyclicExponential::optimal(
            self.instance.m(),
            self.instance.k(),
            self.instance.f(),
        )?)
    }

    /// Runs the full tightness verdict for this problem (see
    /// [`verify_tightness`](crate::verdict::verify_tightness)).
    ///
    /// # Errors
    ///
    /// Propagates verdict errors (out-of-regime instances, bad `eps`).
    pub fn verify(&self, eps: f64) -> Result<crate::TightnessReport, CoreError> {
        crate::verdict::verify_tightness(
            self.instance.m(),
            self.instance.k(),
            self.instance.f(),
            self.horizon,
            eps,
        )
    }
}

impl std::fmt::Display for RayProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on [1, {}]", self.instance, self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(LineProblem::new(3, 1, 1.0).is_err());
        assert!(LineProblem::new(3, 1, f64::NAN).is_err());
        assert!(LineProblem::new(0, 0, 10.0).is_err());
        assert!(RayProblem::new(0, 1, 0, 10.0).is_err());
        assert!(RayProblem::new(3, 1, 0, 10.0).is_ok());
    }

    #[test]
    fn ratios_match_bounds_crate() {
        let p = LineProblem::new(3, 1, 100.0).unwrap();
        let direct = raysearch_bounds::a_line(3, 1).unwrap();
        assert!((p.optimal_ratio().unwrap() - direct).abs() < 1e-12);
        let p = RayProblem::new(3, 2, 0, 100.0).unwrap();
        let direct = raysearch_bounds::a_rays(3, 2, 0).unwrap();
        assert!((p.optimal_ratio().unwrap() - direct).abs() < 1e-12);
    }

    #[test]
    fn trivial_and_impossible_regimes() {
        assert_eq!(
            LineProblem::new(4, 1, 10.0).unwrap().optimal_ratio(),
            Some(1.0)
        );
        assert_eq!(LineProblem::new(2, 2, 10.0).unwrap().optimal_ratio(), None);
    }

    #[test]
    fn display() {
        let p = LineProblem::new(3, 1, 100.0).unwrap();
        assert!(p.to_string().contains("line(k=3, f=1)"));
    }

    #[test]
    fn optimal_strategy_helpers() {
        use raysearch_strategies::{LineStrategy, RayStrategy};
        let p = LineProblem::new(3, 1, 100.0).unwrap();
        let s = p.optimal_strategy().unwrap();
        assert_eq!(s.num_robots(), 3);
        // trivial regime: no cyclic strategy
        assert!(LineProblem::new(4, 1, 100.0)
            .unwrap()
            .optimal_strategy()
            .is_err());

        let p = RayProblem::new(3, 2, 0, 100.0).unwrap();
        let s = p.optimal_strategy().unwrap();
        assert_eq!(s.num_rays(), 3);
    }

    #[test]
    fn problem_level_verify() {
        let p = LineProblem::new(1, 0, 2e3).unwrap();
        let report = p.verify(0.02).unwrap();
        assert!((report.theory - 9.0).abs() < 1e-12);
        assert!(report.falsified_below);

        let p = RayProblem::new(3, 2, 0, 2e3).unwrap();
        let report = p.verify(0.02).unwrap();
        assert!(report.falsified_below);
        assert!((report.measured_upper - report.theory).abs() < 1e-2 * report.theory);
    }
}
