//! Exact competitive-ratio evaluation against the crash adversary.
//!
//! For a fleet given by turning-point plans, each robot's first-visit time
//! to a target at distance `x` on a fixed side/ray is piecewise of the form
//! `c + x`: between two consecutive "new territory" turning points the
//! covering leg is fixed and `c` is twice the total turning mass before
//! that leg. The adversarial detection time is the `(f+1)`-st order
//! statistic of the robots' first-visit times, and since every piece has
//! slope 1, the ratio `τ(x)/x = (c+x)/x` is *decreasing* on every piece —
//! so the supremum over targets is approached in the right-limit at piece
//! boundaries. The evaluator therefore computes the exact supremum by
//! enumerating boundaries; nothing is sampled.
//!
//! This is the measurement side of the paper: running it on the
//! [`CyclicExponential`] strategy
//! reproduces `Λ(q/k)` to floating-point accuracy (experiments E1/E4/E5).

use raysearch_bounds::{RayInstance, Regime};
use raysearch_sim::{Direction, LineItinerary, LogTourItinerary, RobotId, TourItinerary};
use raysearch_strategies::{CyclicExponential, RayStrategy, ZonePartition};

use crate::canon::CanonF64;
use crate::compiled::{CompileCache, CompiledFleet, FleetBuilder, FleetKey, NoCache};
use crate::CoreError;

/// One slope-1 piece of a first-visit function: targets in `(lo, hi]`
/// are first visited at time `c + x`.
///
/// `hi = ∞` marks a *straddling* piece compiled from a log-domain tour
/// whose true right end lies beyond linear `f64`; its `c` is still
/// exact, and `hi` only ever participates in `x ≤ hi` comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstVisitPiece {
    /// Left end of the covered interval (exclusive).
    pub lo: f64,
    /// Right end of the covered interval (inclusive).
    pub hi: f64,
    /// The first-visit constant: twice the turning mass spent before
    /// the covering leg.
    pub c: f64,
}

/// Compiles the per-ray first-visit pieces of one log-domain tour in a
/// single pass, each ray truncated at `cap`: element `r` of the result
/// is ray `r`'s pieces, sorted by strictly increasing `lo`.
///
/// This is the *one* compilation shared by the exact evaluator and
/// `raysearch-mc`'s `VisitTable` (their documented bit-for-bit
/// agreement rests on it). Pieces are extracted to linear `f64` one
/// excursion at a time, so the construction is bit-identical to a
/// linear-tour compilation for every piece whose `lo` is below `cap` —
/// and those are the only pieces a query in `(0, cap]` can consult
/// (both boundary enumeration and constant lookups need `lo < x`). The
/// overflowing post-horizon padding tail of a large fleet is never
/// materialized: iteration ends once every ray has its straddling
/// piece. The single pass matters: a per-ray scan would walk the
/// `O(m·f)`-excursion tour `m` times, turning many-ray instances
/// quadratic in `m`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] if `cap` is not positive and
/// finite, or if a piece *constant* inside the cap overflows `f64` —
/// at caps within a factor `α^(k·m)` of `f64::MAX`, the turning mass
/// ahead of a straddling leg can exceed linear range, and answering
/// with a saturated `∞` would be the silent wrong answer this pipeline
/// exists to eliminate.
pub fn compile_first_visit_pieces(
    tour: &LogTourItinerary,
    cap: f64,
) -> Result<Vec<Vec<FirstVisitPiece>>, CoreError> {
    if !(cap.is_finite() && cap > 0.0) {
        return Err(CoreError::invalid(format!(
            "piece cap must be positive and finite, got {cap}"
        )));
    }
    let m = tour.num_rays();
    let mut pieces: Vec<Vec<FirstVisitPiece>> = vec![Vec::new(); m];
    let mut reach = vec![0.0f64; m];
    let mut open = m;
    let mut prefix = 0.0f64;
    for e in tour.excursions() {
        if open == 0 {
            break;
        }
        let turn = e.turn.to_f64();
        let ray = e.ray.index();
        if reach[ray] < cap && turn > reach[ray] {
            let c = 2.0 * prefix;
            if !c.is_finite() {
                return Err(CoreError::invalid(format!(
                    "first-visit constant on ray {ray} overflows f64 within the \
                     evaluation cap {cap:e}: the horizon is too deep for this \
                     fleet's turning-point growth"
                )));
            }
            pieces[ray].push(FirstVisitPiece {
                lo: reach[ray],
                hi: turn,
                c,
            });
            reach[ray] = turn;
            if reach[ray] >= cap {
                open -= 1;
            }
        }
        prefix += turn;
    }
    Ok(pieces)
}

/// The first-visit function of one robot on one side/ray.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Pieces {
    /// Sorted by `lo`; `lo` values strictly increase and intervals are
    /// disjoint by construction.
    pieces: Vec<FirstVisitPiece>,
}

impl Pieces {
    /// Builds the pieces for a line itinerary on the given side.
    fn from_line(itinerary: &LineItinerary, side: Direction) -> Pieces {
        let mut pieces = Vec::new();
        let mut reach = 0.0f64; // furthest distance visited on `side`
        let mut prefix = 0.0f64; // sum of turn magnitudes before current leg
        for (i, signed) in itinerary.signed_turns().enumerate() {
            let magnitude = signed.abs();
            let on_side = (signed > 0.0) == (side == Direction::Positive);
            if on_side && magnitude > reach {
                pieces.push(FirstVisitPiece {
                    lo: reach,
                    hi: magnitude,
                    c: 2.0 * prefix,
                });
                reach = magnitude;
            }
            let _ = i;
            prefix += magnitude;
        }
        Pieces { pieces }
    }

    /// Builds the pieces for a tour on the given ray.
    fn from_tour(tour: &TourItinerary, ray: usize) -> Pieces {
        let mut pieces = Vec::new();
        let mut reach = 0.0f64;
        let mut prefix = 0.0f64;
        for e in tour.excursions() {
            if e.ray.index() == ray && e.turn > reach {
                pieces.push(FirstVisitPiece {
                    lo: reach,
                    hi: e.turn,
                    c: 2.0 * prefix,
                });
                reach = e.turn;
            }
            prefix += e.turn;
        }
        Pieces { pieces }
    }

    /// Builds the pieces of *every* ray for a log-domain tour in one
    /// pass via [`compile_first_visit_pieces`] (see there for the
    /// truncation and bit-compatibility guarantees).
    fn per_ray_from_log_tour(tour: &LogTourItinerary, cap: f64) -> Result<Vec<Pieces>, CoreError> {
        Ok(compile_first_visit_pieces(tour, cap)?
            .into_iter()
            .map(|pieces| Pieces { pieces })
            .collect())
    }

    /// The first-visit constant for a target at `x` (`lo < x ≤ hi`), or
    /// `None` if the plan never reaches `x`.
    fn constant_at(&self, x: f64) -> Option<f64> {
        // binary search on lo
        let idx = self.pieces.partition_point(|p| p.lo < x);
        if idx == 0 {
            return None;
        }
        let p = &self.pieces[idx - 1];
        (x <= p.hi).then_some(p.c)
    }
}

/// The target realizing (in the limit) the worst-case ratio.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorstTarget {
    /// Ray index; for the line, `0` is the positive and `1` the negative
    /// side.
    pub ray: usize,
    /// The boundary whose right-neighbourhood attains the supremum:
    /// the adversary hides the target just past this distance.
    pub x: f64,
    /// The limiting detection time `c + x` for targets approaching `x`
    /// from above.
    pub detection_limit: f64,
}

/// The outcome of an exact evaluation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalReport {
    /// The exact supremum of `τ(x)/x` over the evaluation range — the
    /// fleet's competitive ratio against the crash adversary. Infinite if
    /// some target is never confirmed.
    pub ratio: f64,
    /// The target (limit) achieving the supremum, when finite.
    pub worst: Option<WorstTarget>,
    /// A witness target confirmed by fewer than `f+1` robots, if any
    /// (then `ratio` is infinite).
    pub uncovered: Option<WorstTarget>,
    /// Number of boundary candidates examined.
    pub num_breakpoints: usize,
}

impl EvalReport {
    /// Whether every target in range is confirmed in finite time.
    pub fn is_covered(&self) -> bool {
        self.uncovered.is_none()
    }
}

/// Evaluates the *optimal* strategy for the instance `(m, k, f)` exactly
/// over targets in `[1, horizon]`: builds the fleet that attains
/// `A(m, k, f)` and measures its worst-case ratio against the crash
/// adversary.
///
/// In the searchable regime `f < k < m(f+1)` the fleet is the cyclic
/// exponential strategy, generated and evaluated through the log-domain
/// pipeline — turn points are never materialized in linear space, so
/// fleets of thousands of robots at deep horizons evaluate to finite
/// ratios (the linear pipeline overflowed to an error from `k ≈ 139`).
/// In the trivial regime `k ≥ m(f+1)` the fleet is the saturating
/// [`ZonePartition`] (ratio exactly 1, matching
/// [`Regime::Trivial`](raysearch_bounds::Regime)).
///
/// This is the public one-shot entry point the serving layer memoizes:
/// the whole computation is a pure function of `(m, k, f, horizon)`, so
/// repeated calls are bit-identical and safe to cache.
///
/// # Example
///
/// ```
/// use raysearch_core::eval::evaluate_optimal;
///
/// let report = evaluate_optimal(2, 1, 0, 1e4)?; // the classic cow path
/// assert!((report.ratio - 9.0).abs() < 1e-3);
///
/// // a formerly-overflowing large fleet: finite, at the closed form
/// let large = evaluate_optimal(2, 139, 69, 1e6)?;
/// let theory = raysearch_bounds::a_rays(2, 139, 69)?;
/// assert!((large.ratio - theory).abs() / theory < 1e-6);
///
/// // the trivial regime evaluates to ratio 1 instead of erroring
/// assert!((evaluate_optimal(2, 4, 1, 1e3)?.ratio - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`CoreError::HorizonOverflow`] for a horizon that is not
/// finite or exceeds `f64::MAX / 8` (fleets are padded to four times
/// the horizon and the trivial-regime baseline walks out to twice the
/// pad, so larger values would silently become `inf` before any range
/// check), and [`CoreError::InvalidInput`]-style errors for impossible
/// `(m, k, f)`, a horizon outside `(1, ∞)`, or a horizon so deep that
/// a first-visit constant within range overflows `f64` (possible only
/// within a factor `α^(k·m)` of `f64::MAX`).
pub fn evaluate_optimal(m: u32, k: u32, f: u32, horizon: f64) -> Result<EvalReport, CoreError> {
    evaluate_optimal_cached(&NoCache, m, k, f, horizon)
}

/// [`evaluate_optimal`] with an explicit compile cache: the fleet's
/// compiled artifact is fetched through `cache` (keyed by its `f`-free
/// [`FleetKey`]), so repeated evaluations over shared geometry — an
/// η-sweep at fixed `k`, a service answering many `f`s, a verdict
/// following an evaluation — compile once.
///
/// The report is bit-identical to [`evaluate_optimal`]'s for every
/// `(m, k, f, horizon)` regardless of the cache's hit pattern: the
/// artifact holds exactly the pieces a fresh compilation produces.
///
/// # Errors
///
/// As [`evaluate_optimal`]; build errors propagate uncached.
pub fn evaluate_optimal_cached<C: CompileCache>(
    cache: &C,
    m: u32,
    k: u32,
    f: u32,
    horizon: f64,
) -> Result<EvalReport, CoreError> {
    // the fleet prefix must extend past the horizon so every target in
    // range lies strictly inside covered territory; validate *before*
    // the padding multiplications can turn a finite horizon into inf
    // (4x for the fleet, a further 2x inside the zone-partition tours)
    if !(horizon.is_finite() && horizon <= f64::MAX / 8.0) {
        return Err(CoreError::HorizonOverflow { horizon });
    }
    let padded = horizon * 4.0;
    let instance = RayInstance::new(m, k, f)?;
    if instance.regime() == Regime::Trivial {
        // the zone-partition tours depend only on (m, k, cap): every
        // trivial-regime f shares one artifact
        let key = FleetKey::Zone {
            m,
            k,
            cap: CanonF64::new(padded)?,
        };
        let fleet = cache.get_or_compile(key, &mut || {
            let tours = ZonePartition::new(m, k, f)?.fleet_tours(padded)?;
            let mut builder = FleetBuilder::new(m as usize, padded)?;
            for tour in &tours {
                builder.push_tour(tour)?;
            }
            Ok(builder.finish())
        })?;
        return RayEvaluator::new(m as usize, f, 1.0, horizon)?.evaluate_compiled(&fleet);
    }
    // searchable — or impossible, which the strategy constructor rejects
    let strategy = CyclicExponential::optimal(m, k, f)?;
    let evaluator = RayEvaluator::new(m as usize, f, 1.0, horizon)?;
    let key = FleetKey::Cyclic {
        m,
        k,
        alpha: CanonF64::new(strategy.alpha())?,
        cap: CanonF64::new(horizon)?,
    };
    let fleet = cache.get_or_compile(key, &mut || {
        // one bounded tour prefix at a time: peak memory stays
        // independent of the post-horizon padding tail
        let mut builder = FleetBuilder::new(m as usize, horizon)?;
        for r in 0..k as usize {
            builder.push_log_tour(&strategy.log_tour_prefix(RobotId(r), horizon)?)?;
        }
        Ok(builder.finish())
    })?;
    evaluator.evaluate_compiled(&fleet)
}

fn check_range(lo: f64, hi: f64) -> Result<(), CoreError> {
    if !(lo.is_finite() && hi.is_finite() && 1.0 <= lo && lo < hi) {
        return Err(CoreError::invalid(format!(
            "evaluation range must satisfy 1 <= lo < hi, got [{lo}, {hi}]"
        )));
    }
    Ok(())
}

/// Mutable state threaded through the per-domain sup computations: the
/// running worst target, the first uncovered witness, and the breakpoint
/// count.
#[derive(Debug, Default)]
struct SupAccum {
    best: Option<WorstTarget>,
    uncovered: Option<WorstTarget>,
    examined: usize,
}

impl SupAccum {
    /// Finalizes the accumulated state into an [`EvalReport`].
    fn into_report(self) -> EvalReport {
        EvalReport {
            ratio: match (&self.uncovered, &self.best) {
                (Some(_), _) => f64::INFINITY,
                (None, Some(w)) => w.detection_limit / w.x,
                (None, None) => f64::INFINITY,
            },
            worst: self.best,
            uncovered: self.uncovered,
            num_breakpoints: self.examined,
        }
    }
}

/// Core sup computation over one domain (side or ray) given per-robot
/// piece functions: flattens the lists and delegates to the event-sweep
/// engine (robot identity is irrelevant to the order statistic, so the
/// sweep never needs to know which piece came from whom).
fn sup_over_domain(per_robot: &[Pieces], f: u32, lo: f64, hi: f64, ray: usize, acc: &mut SupAccum) {
    let mut flat: Vec<FirstVisitPiece> = Vec::new();
    for p in per_robot {
        flat.extend_from_slice(&p.pieces);
    }
    sup_over_flat_pieces(&flat, f, lo, hi, ray, acc);
}

/// A Fenwick (binary indexed) tree of counts over compressed constant
/// indices, supporting point updates and order-statistic selection.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` to index `i` (0-based).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// The smallest 0-based index whose prefix count reaches `k`
    /// (1-based rank). Precondition: the total count is at least `k`.
    fn select(&self, mut k: i64) -> usize {
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] < k {
                k -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        pos
    }
}

/// The event-sweep sup engine over one ray's flattened piece multiset.
///
/// Semantically identical to probing every boundary's right-limit with
/// a per-robot lookup and selecting the `(f+1)`-st smallest active
/// constant — the historical `O(B·k·log P)` inner loop — but organized
/// as one left-to-right sweep: pieces activate (`lo`) and deactivate
/// (`hi`) as interval events, a Fenwick tree over the
/// coordinate-compressed constants maintains the active multiset, and
/// each boundary costs one `O(log U)` order-statistic selection. Since
/// a robot's pieces on a ray tile `(0, reach]` disjointly, the active
/// piece count at a probe equals the number of robots whose plan covers
/// the probe, so coverage and selection agree exactly — every reported
/// value is bit-for-bit the one the per-robot scan produced
/// (comparisons are `total_cmp` throughout, and constants are
/// deduplicated by bit pattern).
fn sup_over_flat_pieces(
    pieces: &[FirstVisitPiece],
    f: u32,
    lo: f64,
    hi: f64,
    ray: usize,
    acc: &mut SupAccum,
) {
    let needed = f as usize + 1;
    // candidate left-ends: lo plus all piece boundaries in (lo, hi)
    let mut bs: Vec<f64> = vec![lo];
    // activation/deactivation events; a piece is active at probe `x`
    // iff `p.lo < x && x <= p.hi`, so `lo` enters and `hi` leaves as
    // soon as the probe passes them (straddling `hi = ∞` never leaves)
    let mut events: Vec<(f64, f64, i64)> = Vec::with_capacity(2 * pieces.len());
    let mut constants: Vec<f64> = Vec::with_capacity(pieces.len());
    for p in pieces {
        if p.lo > lo && p.lo < hi {
            bs.push(p.lo);
        }
        if p.hi > lo && p.hi < hi {
            bs.push(p.hi);
        }
        events.push((p.lo, p.c, 1));
        if p.hi.is_finite() {
            events.push((p.hi, p.c, -1));
        }
        constants.push(p.c);
    }
    bs.sort_by(f64::total_cmp);
    bs.dedup();
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    // compress the constant values; dedup by bit pattern so selection
    // returns exactly the value the uncompressed order statistic would
    constants.sort_by(f64::total_cmp);
    constants.dedup_by(|a, b| a.to_bits() == b.to_bits());

    let mut counts = Fenwick::new(constants.len());
    let mut active = 0i64;
    let mut next_event = 0usize;
    for (i, &b) in bs.iter().enumerate() {
        acc.examined += 1;
        let next = bs.get(i + 1).copied().unwrap_or(hi);
        // an interior probe point of (b, next): no boundary lies inside,
        // so every robot's constant is uniform on the whole open segment
        let probe = 0.5 * (b + next);
        // probes strictly increase, so the event pointer only advances
        while next_event < events.len() && events[next_event].0 < probe {
            let (_, c, delta) = events[next_event];
            let idx = constants.partition_point(|x| x.total_cmp(&c).is_lt());
            counts.add(idx, delta);
            active += delta;
            next_event += 1;
        }
        if (active as usize) < needed {
            if acc.uncovered.is_none() {
                acc.uncovered = Some(WorstTarget {
                    ray,
                    x: probe,
                    detection_limit: f64::INFINITY,
                });
            }
            continue;
        }
        // the (f+1)-st smallest active constant, straight off the tree
        let c = constants[counts.select(needed as i64)];
        let candidate = WorstTarget {
            ray,
            x: b,
            detection_limit: c + b,
        };
        let ratio = candidate.detection_limit / candidate.x;
        let better = match &acc.best {
            Some(w) => ratio > w.detection_limit / w.x,
            None => true,
        };
        if better {
            acc.best = Some(candidate);
        }
    }
}

/// Exact evaluator for line fleets.
///
/// # Example
///
/// ```
/// use raysearch_core::LineEvaluator;
/// use raysearch_strategies::{DoublingCowPath, LineStrategy};
///
/// let cow = DoublingCowPath::classic();
/// let fleet = cow.fleet_itineraries(1e5)?;
/// let report = LineEvaluator::new(0, 1.0, 1e4)?.evaluate(&fleet)?;
/// assert!((report.ratio - 9.0).abs() < 1e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineEvaluator {
    f: u32,
    lo: f64,
    hi: f64,
}

impl LineEvaluator {
    /// Creates an evaluator for `f` crash faults over targets
    /// `lo ≤ |x| ≤ hi`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] unless `1 ≤ lo < hi`, both
    /// finite.
    pub fn new(f: u32, lo: f64, hi: f64) -> Result<Self, CoreError> {
        check_range(lo, hi)?;
        Ok(LineEvaluator { f, lo, hi })
    }

    /// Evaluates the exact worst-case ratio of a fleet.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the fleet has fewer than
    /// `f+1` robots.
    pub fn evaluate(&self, fleet: &[LineItinerary]) -> Result<EvalReport, CoreError> {
        if fleet.len() <= self.f as usize {
            return Err(CoreError::invalid(format!(
                "need more than f = {} robots, got {}",
                self.f,
                fleet.len()
            )));
        }
        let mut acc = SupAccum::default();
        for (ray, side) in [(0, Direction::Positive), (1, Direction::Negative)] {
            let pieces: Vec<Pieces> = fleet.iter().map(|it| Pieces::from_line(it, side)).collect();
            sup_over_domain(&pieces, self.f, self.lo, self.hi, ray, &mut acc);
        }
        Ok(acc.into_report())
    }

    /// Exact adversarial detection time of a single signed target: the
    /// `(f+1)`-st smallest first-visit time over the fleet.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on a non-finite or sub-unit
    /// `|x|`.
    pub fn detection_time(
        &self,
        fleet: &[LineItinerary],
        x: f64,
    ) -> Result<Option<f64>, CoreError> {
        if !(x.is_finite() && x.abs() >= 1.0) {
            return Err(CoreError::invalid(format!(
                "target must satisfy |x| >= 1, got {x}"
            )));
        }
        let side = if x > 0.0 {
            Direction::Positive
        } else {
            Direction::Negative
        };
        let mut times: Vec<f64> = fleet
            .iter()
            .filter_map(|it| {
                Pieces::from_line(it, side)
                    .constant_at(x.abs())
                    .map(|c| c + x.abs())
            })
            .collect();
        let needed = self.f as usize + 1;
        if times.len() < needed {
            return Ok(None);
        }
        times.sort_by(f64::total_cmp);
        Ok(Some(times[needed - 1]))
    }
}

/// Exact evaluator for `m`-ray fleets.
///
/// # Example
///
/// ```
/// use raysearch_core::RayEvaluator;
/// use raysearch_strategies::{CyclicExponential, RayStrategy};
///
/// let strat = CyclicExponential::optimal(3, 1, 0)?;
/// let fleet = strat.fleet_tours(1e5)?;
/// let report = RayEvaluator::new(3, 0, 1.0, 1e4)?.evaluate(&fleet)?;
/// // single robot on 3 rays: the classic 14.5
/// assert!((report.ratio - 14.5).abs() < 1e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayEvaluator {
    m: usize,
    f: u32,
    lo: f64,
    hi: f64,
}

impl RayEvaluator {
    /// Creates an evaluator for `m` rays and `f` crash faults over targets
    /// at distance `lo ≤ x ≤ hi`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] unless `m ≥ 1` and
    /// `1 ≤ lo < hi`.
    pub fn new(m: usize, f: u32, lo: f64, hi: f64) -> Result<Self, CoreError> {
        if m == 0 {
            return Err(CoreError::invalid("need at least one ray"));
        }
        check_range(lo, hi)?;
        Ok(RayEvaluator { m, f, lo, hi })
    }

    /// Evaluates the exact worst-case ratio of a fleet of tours.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the fleet has fewer than
    /// `f+1` robots or a tour is for the wrong number of rays.
    pub fn evaluate(&self, fleet: &[TourItinerary]) -> Result<EvalReport, CoreError> {
        if fleet.len() <= self.f as usize {
            return Err(CoreError::invalid(format!(
                "need more than f = {} robots, got {}",
                self.f,
                fleet.len()
            )));
        }
        for t in fleet {
            if t.num_rays() != self.m {
                return Err(CoreError::invalid(format!(
                    "tour is for {} rays, evaluator expects {}",
                    t.num_rays(),
                    self.m
                )));
            }
        }
        let mut acc = SupAccum::default();
        for ray in 0..self.m {
            let pieces: Vec<Pieces> = fleet.iter().map(|t| Pieces::from_tour(t, ray)).collect();
            sup_over_domain(&pieces, self.f, self.lo, self.hi, ray, &mut acc);
        }
        Ok(acc.into_report())
    }

    /// Evaluates the exact worst-case ratio of a fleet of *log-domain*
    /// tours — the overflow-proof twin of [`RayEvaluator::evaluate`].
    ///
    /// Wherever the corresponding linear fleet exists (no turn point
    /// overflows `f64`), the report is bit-identical to evaluating it:
    /// in-range pieces are extracted to the same linear values in the
    /// same order, and pieces past the evaluation range — the only ones
    /// a log tour may carry that a linear tour cannot — never influence
    /// the supremum.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the fleet has fewer than
    /// `f+1` robots, a tour is for the wrong number of rays, or a
    /// first-visit constant within range overflows `f64` (see
    /// [`compile_first_visit_pieces`]).
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_core::RayEvaluator;
    /// use raysearch_strategies::CyclicExponential;
    ///
    /// // k = 199 on the line: the linear fleet overflows, the log fleet
    /// // evaluates to the closed form
    /// let strat = CyclicExponential::optimal(2, 199, 99)?;
    /// let fleet = strat.fleet_log_tours(4e5)?;
    /// let report = RayEvaluator::new(2, 99, 1.0, 1e5)?.evaluate_log(&fleet)?;
    /// let theory = raysearch_bounds::a_rays(2, 199, 99)?;
    /// assert!((report.ratio - theory).abs() / theory < 1e-6);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn evaluate_log(&self, fleet: &[LogTourItinerary]) -> Result<EvalReport, CoreError> {
        if fleet.len() <= self.f as usize {
            return Err(CoreError::invalid(format!(
                "need more than f = {} robots, got {}",
                self.f,
                fleet.len()
            )));
        }
        let mut per_ray: Vec<Vec<Pieces>> = (0..self.m).map(|_| Vec::new()).collect();
        for tour in fleet {
            self.push_log_pieces(&mut per_ray, tour)?;
        }
        Ok(self.sup_of_compiled(&per_ray))
    }

    /// Compiles one robot's log tour (truncated at this evaluator's
    /// range) and appends its pieces to each ray's bucket — the shared
    /// streaming step of [`RayEvaluator::evaluate_log`],
    /// [`evaluate_optimal`] and the verdict pipeline.
    pub(crate) fn push_log_pieces(
        &self,
        per_ray: &mut [Vec<Pieces>],
        tour: &LogTourItinerary,
    ) -> Result<(), CoreError> {
        if tour.num_rays() != self.m {
            return Err(CoreError::invalid(format!(
                "tour is for {} rays, evaluator expects {}",
                tour.num_rays(),
                self.m
            )));
        }
        for (robots, compiled) in per_ray
            .iter_mut()
            .zip(Pieces::per_ray_from_log_tour(tour, self.hi)?)
        {
            robots.push(compiled);
        }
        Ok(())
    }

    /// Runs the per-ray sup over compiled piece tables.
    pub(crate) fn sup_of_compiled(&self, per_ray: &[Vec<Pieces>]) -> EvalReport {
        let mut acc = SupAccum::default();
        for (ray, robots) in per_ray.iter().enumerate() {
            sup_over_domain(robots, self.f, self.lo, self.hi, ray, &mut acc);
        }
        acc.into_report()
    }

    /// Evaluates the exact worst-case ratio of a [`CompiledFleet`]
    /// artifact — the compile-once/evaluate-many twin of
    /// [`RayEvaluator::evaluate_log`], and bit-identical to it for a
    /// fleet compiled from the same tours at a cap covering this
    /// evaluator's range.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if the fleet has fewer than
    /// `f+1` robots, is compiled for the wrong number of rays, or its
    /// compilation cap falls short of the evaluation range (its pieces
    /// could silently miss coverage past the cap).
    pub fn evaluate_compiled(&self, fleet: &CompiledFleet) -> Result<EvalReport, CoreError> {
        if fleet.num_robots() <= self.f as usize {
            return Err(CoreError::invalid(format!(
                "need more than f = {} robots, got {}",
                self.f,
                fleet.num_robots()
            )));
        }
        if fleet.num_rays() != self.m {
            return Err(CoreError::invalid(format!(
                "fleet is compiled for {} rays, evaluator expects {}",
                fleet.num_rays(),
                self.m
            )));
        }
        if fleet.cap() < self.hi {
            return Err(CoreError::invalid(format!(
                "fleet is compiled for targets up to {:e}, evaluator range ends at {:e}",
                fleet.cap(),
                self.hi
            )));
        }
        let mut acc = SupAccum::default();
        let mut flat: Vec<FirstVisitPiece> = Vec::new();
        for ray in 0..self.m {
            flat.clear();
            fleet.for_each_piece_on_ray(ray, |lo, hi, c| {
                flat.push(FirstVisitPiece { lo, hi, c });
            });
            sup_over_flat_pieces(&flat, self.f, self.lo, self.hi, ray, &mut acc);
        }
        Ok(acc.into_report())
    }

    /// Exact adversarial detection time of a target on a given ray.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on an out-of-range ray or
    /// `x < 1`.
    pub fn detection_time(
        &self,
        fleet: &[TourItinerary],
        ray: usize,
        x: f64,
    ) -> Result<Option<f64>, CoreError> {
        if ray >= self.m {
            return Err(CoreError::invalid(format!(
                "ray {ray} out of range for m = {}",
                self.m
            )));
        }
        if !(x.is_finite() && x >= 1.0) {
            return Err(CoreError::invalid(format!(
                "target must satisfy x >= 1, got {x}"
            )));
        }
        let mut times: Vec<f64> = fleet
            .iter()
            .filter_map(|t| Pieces::from_tour(t, ray).constant_at(x).map(|c| c + x))
            .collect();
        let needed = self.f as usize + 1;
        if times.len() < needed {
            return Ok(None);
        }
        times.sort_by(f64::total_cmp);
        Ok(Some(times[needed - 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_strategies::{
        CyclicExponential, DoublingCowPath, LineStrategy, RayStrategy, ReplicatedDoubling,
        ZonePartition,
    };

    #[test]
    fn cow_path_evaluates_to_nine() {
        let fleet = DoublingCowPath::classic().fleet_itineraries(1e6).unwrap();
        let r = LineEvaluator::new(0, 1.0, 1e5)
            .unwrap()
            .evaluate(&fleet)
            .unwrap();
        assert!(r.is_covered());
        // the finite-horizon sup is 9 - 2/b at the largest breakpoint b;
        // it approaches 9 from below as the horizon grows
        assert!(r.ratio <= 9.0 + 1e-12);
        assert!((r.ratio - 9.0).abs() < 1e-4, "ratio {} != 9", r.ratio);
    }

    #[test]
    fn cow_path_other_bases_are_worse() {
        for base in [1.5, 3.0] {
            let cow = DoublingCowPath::new(base).unwrap();
            let fleet = cow.fleet_itineraries(1e6).unwrap();
            let r = LineEvaluator::new(0, 1.0, 1e5)
                .unwrap()
                .evaluate(&fleet)
                .unwrap();
            assert!(
                (r.ratio - cow.theoretical_ratio()).abs() < 1e-3,
                "base {base}: measured {} vs theory {}",
                r.ratio,
                cow.theoretical_ratio()
            );
        }
    }

    #[test]
    fn optimal_line_strategy_matches_theorem1() {
        for (k, f) in [(1u32, 0u32), (3, 1), (5, 2), (5, 3), (7, 3)] {
            let strat = CyclicExponential::optimal(2, k, f)
                .unwrap()
                .to_line()
                .unwrap();
            let fleet = strat.fleet_itineraries(1e6).unwrap();
            let r = LineEvaluator::new(f, 1.0, 1e4)
                .unwrap()
                .evaluate(&fleet)
                .unwrap();
            let theory = raysearch_bounds::a_line(k, f).unwrap();
            assert!(
                r.is_covered(),
                "(k={k}, f={f}) uncovered: {:?}",
                r.uncovered
            );
            assert!(r.ratio <= theory + 1e-9, "(k={k}, f={f}) exceeds theory");
            assert!(
                (r.ratio - theory).abs() < 1e-3,
                "(k={k}, f={f}): measured {} vs theory {theory}",
                r.ratio
            );
        }
    }

    #[test]
    fn optimal_ray_strategy_matches_theorem6() {
        for (m, k, f) in [
            (3u32, 1u32, 0u32),
            (3, 2, 0),
            (4, 3, 0),
            (3, 5, 1),
            (5, 4, 0),
        ] {
            let strat = CyclicExponential::optimal(m, k, f).unwrap();
            let fleet = strat.fleet_tours(1e6).unwrap();
            let r = RayEvaluator::new(m as usize, f, 1.0, 1e4)
                .unwrap()
                .evaluate(&fleet)
                .unwrap();
            let theory = raysearch_bounds::a_rays(m, k, f).unwrap();
            assert!(r.is_covered(), "(m={m},k={k},f={f}) uncovered");
            assert!(
                r.ratio <= theory + 1e-9,
                "(m={m},k={k},f={f}) exceeds theory"
            );
            assert!(
                (r.ratio - theory).abs() < 1e-3,
                "(m={m},k={k},f={f}): measured {} vs theory {theory}",
                r.ratio
            );
        }
    }

    #[test]
    fn replicated_doubling_is_nine_for_any_f() {
        let s = ReplicatedDoubling::new(4).unwrap();
        let fleet = s.fleet_itineraries(1e6).unwrap();
        for f in 0..4u32 {
            let r = LineEvaluator::new(f, 1.0, 1e4)
                .unwrap()
                .evaluate(&fleet)
                .unwrap();
            if f < 4 {
                assert!((r.ratio - 9.0).abs() < 1e-3, "f={f}: {}", r.ratio);
            }
        }
    }

    #[test]
    fn zone_partition_saturated_is_ratio_one() {
        let z = ZonePartition::new(2, 4, 1).unwrap();
        let fleet = z.fleet_tours(1e4).unwrap();
        let r = RayEvaluator::new(2, 1, 1.0, 1e3)
            .unwrap()
            .evaluate(&fleet)
            .unwrap();
        assert!(r.is_covered());
        assert!((r.ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zone_partition_undersized_is_uncovered() {
        let z = ZonePartition::new(3, 4, 1).unwrap();
        let fleet = z.fleet_tours(1e4).unwrap();
        let r = RayEvaluator::new(3, 1, 1.0, 1e3)
            .unwrap()
            .evaluate(&fleet)
            .unwrap();
        assert!(!r.is_covered());
        assert!(r.ratio.is_infinite());
        // rays 1 and 2 each have a single robot; the first
        // undercovered ray found is ray 1
        assert_ne!(r.uncovered.unwrap().ray, 0);
    }

    #[test]
    fn detection_time_matches_visit_engine_ground_truth() {
        use raysearch_faults::CrashAdversary;
        use raysearch_sim::{LinePoint, LineTrajectory, VisitEngine};

        let strat = CyclicExponential::optimal(2, 3, 1)
            .unwrap()
            .to_line()
            .unwrap();
        let fleet = strat.fleet_itineraries(1e4).unwrap();
        let evaluator = LineEvaluator::new(1, 1.0, 1e3).unwrap();
        let engine = VisitEngine::new(
            fleet
                .iter()
                .map(LineTrajectory::compile)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let adv = CrashAdversary::new(1);
        for &x in &[1.0, -2.5, 7.3, -41.0, 333.0] {
            let fast = evaluator.detection_time(&fleet, x).unwrap();
            let truth = adv
                .detection_time(&engine.schedule(LinePoint::new(x).unwrap()))
                .map(|t| t.as_f64());
            match (fast, truth) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "x={x}: {a} vs {b}");
                }
                (a, b) => panic!("x={x}: symbolic {a:?} vs engine {b:?}"),
            }
        }
    }

    #[test]
    fn evaluator_validation() {
        assert!(LineEvaluator::new(0, 0.5, 10.0).is_err());
        assert!(LineEvaluator::new(0, 10.0, 10.0).is_err());
        assert!(RayEvaluator::new(0, 0, 1.0, 10.0).is_err());
        let e = LineEvaluator::new(2, 1.0, 10.0).unwrap();
        // fleet smaller than f+1
        let fleet = DoublingCowPath::classic().fleet_itineraries(100.0).unwrap();
        assert!(e.evaluate(&fleet).is_err());
        assert!(e.detection_time(&fleet, 0.5).is_err());
    }

    #[test]
    fn ray_evaluator_rejects_mismatched_tours() {
        let strat = CyclicExponential::optimal(3, 2, 0).unwrap();
        let fleet = strat.fleet_tours(100.0).unwrap();
        let e = RayEvaluator::new(4, 0, 1.0, 10.0).unwrap();
        assert!(e.evaluate(&fleet).is_err());
    }

    #[test]
    fn evaluate_log_is_bit_identical_to_evaluate() {
        for (m, k, f) in [(2u32, 5u32, 2u32), (3, 5, 1), (5, 4, 0)] {
            let strat = CyclicExponential::optimal(m, k, f).unwrap();
            let linear = strat.fleet_tours(4e4).unwrap();
            let log = strat.fleet_log_tours(4e4).unwrap();
            let e = RayEvaluator::new(m as usize, f, 1.0, 1e4).unwrap();
            let a = e.evaluate(&linear).unwrap();
            let b = e.evaluate_log(&log).unwrap();
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "({m},{k},{f})");
            assert_eq!(a.num_breakpoints, b.num_breakpoints);
            assert_eq!(a.worst, b.worst);
            assert_eq!(a.uncovered, b.uncovered);
        }
    }

    #[test]
    fn evaluate_log_validates_like_evaluate() {
        let strat = CyclicExponential::optimal(3, 2, 0).unwrap();
        let fleet = strat.fleet_log_tours(100.0).unwrap();
        // wrong ray count
        assert!(RayEvaluator::new(4, 0, 1.0, 10.0)
            .unwrap()
            .evaluate_log(&fleet)
            .is_err());
        // fleet smaller than f+1
        assert!(RayEvaluator::new(3, 2, 1.0, 10.0)
            .unwrap()
            .evaluate_log(&fleet)
            .is_err());
    }

    #[test]
    fn evaluate_compiled_is_bit_identical_to_evaluate_log() {
        use crate::compiled::FleetBuilder;

        for (m, k, f) in [(2u32, 5u32, 2u32), (3, 5, 1), (2, 149, 74)] {
            let strat = CyclicExponential::optimal(m, k, f).unwrap();
            let e = RayEvaluator::new(m as usize, f, 1.0, 1e4).unwrap();
            let log = strat.fleet_log_tours(4e4).unwrap();
            let a = e.evaluate_log(&log).unwrap();
            // the artifact path: bounded tour prefixes, arena storage
            let mut builder = FleetBuilder::new(m as usize, 1e4).unwrap();
            for r in 0..k as usize {
                builder
                    .push_log_tour(&strat.log_tour_prefix(RobotId(r), 1e4).unwrap())
                    .unwrap();
            }
            let b = e.evaluate_compiled(&builder.finish()).unwrap();
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits(), "({m},{k},{f})");
            assert_eq!(a.num_breakpoints, b.num_breakpoints);
            assert_eq!(a.worst, b.worst);
            assert_eq!(a.uncovered, b.uncovered);
        }
    }

    #[test]
    fn evaluate_compiled_validates() {
        use crate::compiled::FleetBuilder;

        let strat = CyclicExponential::optimal(3, 2, 0).unwrap();
        let mut builder = FleetBuilder::new(3, 100.0).unwrap();
        for r in 0..2usize {
            builder
                .push_log_tour(&strat.log_tour_prefix(RobotId(r), 100.0).unwrap())
                .unwrap();
        }
        let fleet = builder.finish();
        // wrong ray count
        assert!(RayEvaluator::new(4, 0, 1.0, 10.0)
            .unwrap()
            .evaluate_compiled(&fleet)
            .is_err());
        // fleet smaller than f+1
        assert!(RayEvaluator::new(3, 2, 1.0, 10.0)
            .unwrap()
            .evaluate_compiled(&fleet)
            .is_err());
        // cap short of the evaluation range
        assert!(RayEvaluator::new(3, 0, 1.0, 200.0)
            .unwrap()
            .evaluate_compiled(&fleet)
            .is_err());
        // in range: fine
        assert!(RayEvaluator::new(3, 0, 1.0, 100.0)
            .unwrap()
            .evaluate_compiled(&fleet)
            .is_ok());
    }

    #[test]
    fn evaluate_optimal_cached_is_bit_identical_across_hits_and_regimes() {
        use crate::compiled::CompileMemo;

        let memo = CompileMemo::new();
        // searchable and trivial instances, each evaluated twice: the
        // second pass is all cache hits and must not move a single bit
        for (m, k, f) in [(2u32, 5u32, 2u32), (3, 5, 1), (2, 4, 1), (2, 512, 1)] {
            let fresh = evaluate_optimal(m, k, f, 1e4).unwrap();
            let cold = evaluate_optimal_cached(&memo, m, k, f, 1e4).unwrap();
            let warm = evaluate_optimal_cached(&memo, m, k, f, 1e4).unwrap();
            for r in [&cold, &warm] {
                assert_eq!(fresh.ratio.to_bits(), r.ratio.to_bits(), "({m},{k},{f})");
                assert_eq!(fresh.num_breakpoints, r.num_breakpoints);
                assert_eq!(fresh.worst, r.worst);
                assert_eq!(fresh.uncovered, r.uncovered);
            }
        }
        let stats = memo.stats();
        assert_eq!(stats.misses, 4, "one compile per distinct geometry");
        assert_eq!(stats.hits, 4, "one hit per repeated evaluation");
    }

    #[test]
    fn trivial_regime_cells_share_one_zone_artifact_across_f() {
        use crate::compiled::CompileMemo;

        let memo = CompileMemo::new();
        // (2, 512, f) is trivial for every f ≥ 1 shown here, and the
        // zone fleet is f-free: one compile serves all three
        for f in [1u32, 3, 7] {
            let r = evaluate_optimal_cached(&memo, 2, 512, f, 1e4).unwrap();
            assert!((r.ratio - 1.0).abs() < 1e-12, "f={f}: ratio {}", r.ratio);
        }
        let stats = memo.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn evaluate_optimal_covers_the_formerly_overflowing_range() {
        // q = k + 1 fleets past the old k ≈ 139 linear-overflow wall
        for (k, f) in [(139u32, 69u32), (199, 99)] {
            let r = evaluate_optimal(2, k, f, 1e8).unwrap();
            let theory = raysearch_bounds::a_rays(2, k, f).unwrap();
            assert!(r.is_covered(), "(2,{k},{f}) uncovered");
            assert!(r.ratio.is_finite(), "(2,{k},{f}) ratio not finite");
            assert!(
                (r.ratio - theory).abs() / theory < 1e-6,
                "(2,{k},{f}): measured {} vs theory {theory}",
                r.ratio
            );
        }
    }

    #[test]
    fn evaluate_optimal_trivial_regime_is_ratio_one() {
        for (m, k, f) in [(2u32, 4u32, 1u32), (2, 512, 1), (3, 7, 1)] {
            let r = evaluate_optimal(m, k, f, 1e4).unwrap();
            assert!(r.is_covered(), "({m},{k},{f}) uncovered");
            assert!(
                (r.ratio - 1.0).abs() < 1e-12,
                "({m},{k},{f}): ratio {} != 1",
                r.ratio
            );
        }
        // impossible stays an error
        assert!(evaluate_optimal(2, 3, 3, 1e4).is_err());
    }

    #[test]
    fn evaluate_optimal_rejects_unpaddable_horizons() {
        for h in [f64::MAX / 2.0, f64::INFINITY, f64::NAN] {
            match evaluate_optimal(2, 3, 1, h) {
                Err(CoreError::HorizonOverflow { horizon }) => {
                    assert_eq!(horizon.to_bits(), h.to_bits())
                }
                other => panic!("horizon {h}: expected HorizonOverflow, got {other:?}"),
            }
        }
        // the largest paddable horizon passes the overflow gate (and
        // fails later only on evaluator-range grounds, if at all)
        assert!(!matches!(
            evaluate_optimal(2, 1, 0, 1e4),
            Err(CoreError::HorizonOverflow { .. })
        ));
    }

    #[test]
    fn worst_target_is_just_past_a_turning_point() {
        let fleet = DoublingCowPath::classic().fleet_itineraries(1e6).unwrap();
        let r = LineEvaluator::new(0, 1.0, 1e5)
            .unwrap()
            .evaluate(&fleet)
            .unwrap();
        let w = r.worst.unwrap();
        // the worst target hides just past a power of two
        let log = w.x.log2();
        assert!(
            (log - log.round()).abs() < 1e-9,
            "worst x = {} not a power of 2",
            w.x
        );
    }
}
