//! Campaign engine: declarative parameter grids, a sharded runner, and
//! renderable reports.
//!
//! The paper's results are tables over `(k, f, m, α, λ)` grids; every
//! experiment of the benchmark suite is "enumerate a grid, evaluate one
//! closure per cell, render the rows". This module owns that shape once:
//!
//! * [`ParamGrid`] — a builder for cartesian products of named axes
//!   (integers, floats, strings, or zipped tuples like `(m, k, f)`
//!   instance lists) with arbitrary cell filters such as `f < k`;
//! * [`Campaign`] — binds a grid to a per-cell closure producing one
//!   typed, serializable row, and runs all cells sharded across threads
//!   via [`par_map_threads`] in
//!   deterministic grid order, with per-cell wall-clock timing;
//! * [`Report`] — the type-erased result: renders the same rows as an
//!   aligned text table ([`Report::render_text`]) or as machine-readable
//!   JSON ([`Report::to_value`]), with column order following the row
//!   struct's field order.
//!
//! # Example
//!
//! ```
//! use raysearch_core::campaign::{Campaign, ParamGrid};
//!
//! #[derive(serde::Serialize)]
//! struct Row {
//!     k: u32,
//!     f: u32,
//!     spare: u32,
//! }
//!
//! // All (k, f) pairs with f < k — the filter prunes the product.
//! let grid = ParamGrid::new()
//!     .axis_u32("k", 1..=3)
//!     .axis_u32("f", 0..3)
//!     .filter(|cell| cell.get_u32("f") < cell.get_u32("k"));
//! let campaign = Campaign::new("demo", "spare robots per fleet", grid, |cell| {
//!     let (k, f) = (cell.get_u32("k"), cell.get_u32("f"));
//!     Row { k, f, spare: k - f }
//! });
//!
//! let run = campaign.run();
//! assert_eq!(run.results.len(), 6); // 3×3 product minus the f ≥ k cells
//! let report = run.report();
//! assert_eq!(report.rows().len(), 6);
//! assert!(report.render_text().contains("spare"));
//! # assert!(report.to_value().get("rows").is_some());
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use serde_json::Value;

use crate::compiled::{CompileMemo, CompileStats};
use crate::sweep::{default_parallelism, par_map_threads};
use crate::telemetry::HistogramSnapshot;

/// One coordinate value of a grid cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An integer coordinate (robot counts, fault budgets, step indices).
    Int(i64),
    /// A floating-point coordinate (bases, fractions, horizons).
    Float(f64),
    /// A symbolic coordinate (e.g. an application name).
    Str(String),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Int(i64::from(v))
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}

/// One cell of a [`ParamGrid`]: named coordinates in axis order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cell {
    entries: Vec<(String, ParamValue)>,
}

impl Cell {
    /// Returns the coordinate named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Returns the integer coordinate `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is absent or not an integer — a campaign spec
    /// bug, not a data error.
    pub fn get_i64(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(ParamValue::Int(i)) => *i,
            other => panic!("cell has no integer coordinate {name:?} (found {other:?})"),
        }
    }

    /// Returns the integer coordinate `name` as a `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is absent, not an integer, or out of `u32` range.
    pub fn get_u32(&self, name: &str) -> u32 {
        u32::try_from(self.get_i64(name))
            .unwrap_or_else(|_| panic!("coordinate {name:?} out of u32 range"))
    }

    /// Returns the coordinate `name` as an `f64` (integers convert).
    ///
    /// # Panics
    ///
    /// Panics if `name` is absent or is a string coordinate.
    pub fn get_f64(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(ParamValue::Float(x)) => *x,
            Some(ParamValue::Int(i)) => *i as f64,
            other => panic!("cell has no numeric coordinate {name:?} (found {other:?})"),
        }
    }

    /// Returns the string coordinate `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is absent or not a string.
    pub fn get_str(&self, name: &str) -> &str {
        match self.get(name) {
            Some(ParamValue::Str(s)) => s,
            other => panic!("cell has no string coordinate {name:?} (found {other:?})"),
        }
    }

    /// Coordinate names in axis order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }
}

/// One axis of the product: one or more coordinate names and the rows of
/// values they take (a plain axis has one name and one value per row; a
/// zipped axis advances several names in lockstep).
#[derive(Debug, Clone)]
struct Axis {
    names: Vec<String>,
    rows: Vec<Vec<ParamValue>>,
}

/// A cell predicate used to prune grid cells.
type CellFilter = Box<dyn Fn(&Cell) -> bool + Send + Sync>;

/// A builder for cartesian products of named parameter axes, with
/// filters.
///
/// Axes are enumerated row-major: the first axis added varies slowest,
/// the last varies fastest — matching the nested-loop order the
/// experiments historically used, so refactoring onto a grid preserves
/// row order exactly. An axis with no values yields an empty grid (no
/// cells), not an error.
#[derive(Default)]
pub struct ParamGrid {
    axes: Vec<Axis>,
    filters: Vec<CellFilter>,
}

impl fmt::Debug for ParamGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParamGrid")
            .field("axes", &self.axes)
            .field("filters", &self.filters.len())
            .finish()
    }
}

impl ParamGrid {
    /// Creates an empty grid (a single empty cell until axes are added —
    /// in practice always extended with at least one axis).
    pub fn new() -> Self {
        ParamGrid::default()
    }

    fn push_axis(mut self, names: Vec<String>, rows: Vec<Vec<ParamValue>>) -> Self {
        for name in &names {
            assert!(
                !self.axes.iter().any(|a| a.names.iter().any(|n| n == name)),
                "duplicate axis name {name:?}"
            );
        }
        for row in &rows {
            assert_eq!(
                row.len(),
                names.len(),
                "zipped axis row arity does not match its names"
            );
        }
        self.axes.push(Axis { names, rows });
        self
    }

    /// Adds an integer axis.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken by another axis.
    pub fn axis_i64(self, name: &str, values: impl IntoIterator<Item = i64>) -> Self {
        let rows = values.into_iter().map(|v| vec![v.into()]).collect();
        self.push_axis(vec![name.to_owned()], rows)
    }

    /// Adds a `u32` axis (stored as integers).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken by another axis.
    pub fn axis_u32(self, name: &str, values: impl IntoIterator<Item = u32>) -> Self {
        let rows = values.into_iter().map(|v| vec![v.into()]).collect();
        self.push_axis(vec![name.to_owned()], rows)
    }

    /// Adds a floating-point axis.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken by another axis.
    pub fn axis_f64(self, name: &str, values: impl IntoIterator<Item = f64>) -> Self {
        let rows = values.into_iter().map(|v| vec![v.into()]).collect();
        self.push_axis(vec![name.to_owned()], rows)
    }

    /// Adds a string axis.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken by another axis.
    pub fn axis_str<S: Into<String>>(
        self,
        name: &str,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        let rows = values
            .into_iter()
            .map(|v| vec![ParamValue::Str(v.into())])
            .collect();
        self.push_axis(vec![name.to_owned()], rows)
    }

    /// Adds a zipped axis: several coordinates advancing in lockstep.
    ///
    /// This is how non-rectangular instance lists enter a grid — e.g.
    /// `(m, k, f) ∈ {(2,1,0), (2,3,1), (3,4,1)}` as *one* axis that still
    /// crosses with every other axis.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from `names.len()`, or any name
    /// is already taken.
    pub fn axis_zip(self, names: &[&str], rows: impl IntoIterator<Item = Vec<ParamValue>>) -> Self {
        self.push_axis(
            names.iter().map(|n| (*n).to_owned()).collect(),
            rows.into_iter().collect(),
        )
    }

    /// Adds a cell filter; cells failing any filter are skipped.
    pub fn filter(mut self, f: impl Fn(&Cell) -> bool + Send + Sync + 'static) -> Self {
        self.filters.push(Box::new(f));
        self
    }

    /// Number of cells before filtering (the raw product size).
    pub fn product_len(&self) -> usize {
        self.axes.iter().map(|a| a.rows.len()).product()
    }

    /// Enumerates the surviving cells in deterministic row-major order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        let total = self.product_len();
        'cells: for mut index in 0..total {
            let mut picks = vec![0usize; self.axes.len()];
            for (a, axis) in self.axes.iter().enumerate().rev() {
                picks[a] = index % axis.rows.len();
                index /= axis.rows.len();
            }
            let mut cell = Cell::default();
            for (axis, &pick) in self.axes.iter().zip(&picks) {
                for (name, value) in axis.names.iter().zip(&axis.rows[pick]) {
                    cell.entries.push((name.clone(), value.clone()));
                }
            }
            for f in &self.filters {
                if !f(&cell) {
                    continue 'cells;
                }
            }
            out.push(cell);
        }
        out
    }
}

/// A runnable experiment: a [`ParamGrid`] plus a per-cell closure
/// producing one serializable row, with an id/title for reporting.
pub struct Campaign<R> {
    id: String,
    title: String,
    grid: ParamGrid,
    threads: Option<usize>,
    memo: Option<Arc<CompileMemo>>,
    cell_fn: Box<dyn Fn(&Cell) -> R + Send + Sync>,
}

impl<R> fmt::Debug for Campaign<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("grid", &self.grid)
            .field("threads", &self.threads)
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

impl<R: Send> Campaign<R> {
    /// Binds `grid` to `cell_fn` under the given report id and title.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        grid: ParamGrid,
        cell_fn: impl Fn(&Cell) -> R + Send + Sync + 'static,
    ) -> Self {
        Campaign {
            id: id.into(),
            title: title.into(),
            grid,
            threads: None,
            memo: None,
            cell_fn: Box::new(cell_fn),
        }
    }

    /// Sets the worker-thread count (`None` = machine parallelism,
    /// `Some(1)` = sequential). Rows come back in grid order either way.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches the compile memo the cell closure routes through, so the
    /// run can report the compile/evaluate time split and hit counters.
    ///
    /// The campaign never compiles anything itself: the closure decides
    /// what to cache (typically by calling
    /// [`evaluate_optimal_cached`](crate::evaluate_optimal_cached) with a
    /// clone of the same `Arc`). Attaching the memo here only makes the
    /// run snapshot its [`CompileStats`] before and after, attributing
    /// the delta to this run.
    pub fn with_compile_memo(mut self, memo: Arc<CompileMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The report id (e.g. `"e1"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The underlying grid.
    pub fn grid(&self) -> &ParamGrid {
        &self.grid
    }

    /// Enumerates the grid and evaluates every cell, sharded across
    /// threads, timing each cell. Output order is grid order regardless
    /// of the thread count.
    ///
    /// # Panics
    ///
    /// A panic inside the cell closure is re-raised with its original
    /// payload (see
    /// [`par_map_threads`]).
    pub fn run(&self) -> CampaignRun<R> {
        let cells = self.grid.cells();
        let threads = self
            .threads
            .unwrap_or_else(default_parallelism)
            .clamp(1, cells.len().max(1));
        let before = self.memo.as_ref().map(|m| m.stats());
        let started = Instant::now();
        let results = par_map_threads(&cells, Some(threads), |cell| {
            let cell_started = Instant::now();
            let row = (self.cell_fn)(cell);
            CellResult {
                cell: cell.clone(),
                micros: cell_started.elapsed().as_micros() as u64,
                row,
            }
        });
        let micros = started.elapsed().as_micros() as u64;
        let compile = before
            .as_ref()
            .zip(self.memo.as_ref())
            .map(|(before, memo)| memo.stats().since(before));
        CampaignRun {
            id: self.id.clone(),
            title: self.title.clone(),
            threads,
            micros,
            compile,
            results,
        }
    }
}

/// One evaluated cell: its coordinates, wall-clock cost, and row.
#[derive(Debug, Clone)]
pub struct CellResult<R> {
    /// The grid coordinates this row was computed at.
    pub cell: Cell,
    /// Wall-clock microseconds spent in the cell closure.
    pub micros: u64,
    /// The row the closure produced.
    pub row: R,
}

/// The outcome of [`Campaign::run`]: typed rows in grid order plus
/// timing metadata.
#[derive(Debug, Clone)]
pub struct CampaignRun<R> {
    /// The campaign id.
    pub id: String,
    /// The campaign title.
    pub title: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// Total wall-clock microseconds for the whole run.
    pub micros: u64,
    /// Compile-memo activity attributed to this run, when a memo was
    /// attached via [`Campaign::with_compile_memo`].
    pub compile: Option<CompileStats>,
    /// Per-cell results in grid order.
    pub results: Vec<CellResult<R>>,
}

impl<R> CampaignRun<R> {
    /// Iterates the typed rows in grid order.
    pub fn rows(&self) -> impl Iterator<Item = &R> {
        self.results.iter().map(|r| &r.row)
    }

    /// Consumes the run, returning the typed rows in grid order.
    pub fn into_rows(self) -> Vec<R> {
        self.results.into_iter().map(|r| r.row).collect()
    }

    /// Number of evaluated cells.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the run produced no rows.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl<R: serde::Serialize> CampaignRun<R> {
    /// Serializes the rows into a type-erased, renderable [`Report`].
    ///
    /// # Panics
    ///
    /// Panics if a row fails to serialize (rows are plain data structs;
    /// failure is a bug).
    pub fn report(&self) -> Report {
        let cell_micros: Vec<u64> = self.results.iter().map(|r| r.micros).collect();
        Report {
            id: self.id.clone(),
            title: self.title.clone(),
            threads: self.threads,
            micros: self.micros,
            compile: self.compile,
            cell_latency: HistogramSnapshot::from_values(&cell_micros),
            rows: self
                .results
                .iter()
                .map(|r| serde_json::to_value(&r.row).expect("experiment rows serialize"))
                .collect(),
        }
    }
}

/// A rendered-or-renderable campaign result: JSON rows plus metadata,
/// independent of the row type.
#[derive(Debug, Clone)]
pub struct Report {
    id: String,
    title: String,
    threads: usize,
    micros: u64,
    compile: Option<CompileStats>,
    cell_latency: HistogramSnapshot,
    rows: Vec<Value>,
}

impl Report {
    /// The campaign id (e.g. `"e1"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Worker threads used by the run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total wall-clock microseconds of the run.
    pub fn micros(&self) -> u64 {
        self.micros
    }

    /// Compile-memo activity attributed to the run, when one was
    /// attached.
    pub fn compile(&self) -> Option<&CompileStats> {
        self.compile.as_ref()
    }

    /// The serialized rows, one JSON object per grid cell, in grid
    /// order.
    pub fn rows(&self) -> &[Value] {
        &self.rows
    }

    /// Column headers: the union of row-object keys in first-seen order
    /// (for derive-serialized structs, the field declaration order).
    pub fn headers(&self) -> Vec<String> {
        let mut headers: Vec<String> = Vec::new();
        for row in &self.rows {
            if let Value::Object(map) = row {
                for (key, _) in map.iter() {
                    if !headers.iter().any(|h| h == key) {
                        headers.push(key.clone());
                    }
                }
            }
        }
        if headers.is_empty() && !self.rows.is_empty() {
            headers.push("value".to_owned());
        }
        headers
    }

    /// Renders the rows as an aligned-column [`Table`].
    pub fn table(&self) -> Table {
        let headers = self.headers();
        let mut table = Table::new(headers.clone());
        for row in &self.rows {
            let cells = match row {
                Value::Object(map) => headers
                    .iter()
                    .map(|h| map.get(h).map(value_cell_text).unwrap_or_default())
                    .collect(),
                other => vec![value_cell_text(other)],
            };
            table.push(cells);
        }
        table
    }

    /// Renders a complete text block: header banner, run metadata, and
    /// the aligned table.
    pub fn render_text(&self) -> String {
        format!(
            "=== {} — {} ===\n[{} cells · {} threads · {:.3} s]\n\n{}",
            self.id.to_uppercase(),
            self.title,
            self.rows.len(),
            self.threads,
            self.micros as f64 / 1e6,
            self.table().render()
        )
    }

    /// Serializes the whole report as one JSON object:
    /// `{id, title, threads, micros, cells, rows}`, plus a `compile`
    /// object (`{hits, misses, entries, compile_micros,
    /// evaluate_micros, evaluate_p50_micros, evaluate_p95_micros,
    /// evaluate_max_micros}`) when a compile memo was attached to the
    /// run. The percentile fields summarize the *per-cell* evaluate
    /// wall times through the same log-bucketed histogram the serving
    /// tier's `/metrics` uses (`p ≤ reported < 2p`; max is exact).
    pub fn to_value(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("id".to_owned(), Value::String(self.id.clone()));
        map.insert("title".to_owned(), Value::String(self.title.clone()));
        map.insert("threads".to_owned(), Value::Int(self.threads as i64));
        map.insert(
            "micros".to_owned(),
            serde_json::to_value(self.micros).expect("u64 serializes"),
        );
        map.insert("cells".to_owned(), Value::Int(self.rows.len() as i64));
        if let Some(compile) = &self.compile {
            let mut split = serde_json::Map::new();
            split.insert(
                "hits".to_owned(),
                serde_json::to_value(compile.hits).expect("u64 serializes"),
            );
            split.insert(
                "misses".to_owned(),
                serde_json::to_value(compile.misses).expect("u64 serializes"),
            );
            split.insert(
                "entries".to_owned(),
                serde_json::to_value(compile.entries).expect("u64 serializes"),
            );
            split.insert(
                "compile_micros".to_owned(),
                serde_json::to_value(compile.compile_micros).expect("u64 serializes"),
            );
            split.insert(
                "evaluate_micros".to_owned(),
                serde_json::to_value(self.micros.saturating_sub(compile.compile_micros))
                    .expect("u64 serializes"),
            );
            split.insert(
                "evaluate_p50_micros".to_owned(),
                serde_json::to_value(self.cell_latency.percentile(50)).expect("u64 serializes"),
            );
            split.insert(
                "evaluate_p95_micros".to_owned(),
                serde_json::to_value(self.cell_latency.percentile(95)).expect("u64 serializes"),
            );
            split.insert(
                "evaluate_max_micros".to_owned(),
                serde_json::to_value(self.cell_latency.max).expect("u64 serializes"),
            );
            map.insert("compile".to_owned(), Value::Object(split));
        }
        map.insert("rows".to_owned(), Value::Array(self.rows.clone()));
        Value::Object(map)
    }
}

/// Formats one JSON value for a table cell: floats through [`fnum`],
/// `null` as `-`, scalars bare, and containers as compact JSON.
fn value_cell_text(v: &Value) -> String {
    match v {
        Value::Null => "-".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(x) => fnum(*x),
        Value::String(s) => s.clone(),
        other => other.to_json_string(),
    }
}

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use raysearch_core::campaign::Table;
/// let mut t = Table::new(vec!["k".into(), "value".into()]);
/// t.push(vec!["1".into(), "9.0".into()]);
/// let s = t.render();
/// assert!(s.contains('k') && s.contains("9.0"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn push(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` compactly for tables.
pub fn fnum(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_owned()
    } else if v == 0.0 || (0.001..1e6).contains(&v.abs()) {
        format!("{v:.6}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_is_row_major() {
        let grid = ParamGrid::new()
            .axis_u32("a", 1..=2)
            .axis_str("b", ["x", "y"]);
        let cells = grid.cells();
        assert_eq!(grid.product_len(), 4);
        let flat: Vec<(i64, String)> = cells
            .iter()
            .map(|c| (c.get_i64("a"), c.get_str("b").to_owned()))
            .collect();
        assert_eq!(
            flat,
            vec![
                (1, "x".to_owned()),
                (1, "y".to_owned()),
                (2, "x".to_owned()),
                (2, "y".to_owned()),
            ]
        );
    }

    #[test]
    fn filters_prune_cells() {
        let grid = ParamGrid::new()
            .axis_u32("k", 1..=4)
            .axis_u32("f", 0..4)
            .filter(|c| c.get_u32("f") < c.get_u32("k"));
        let cells = grid.cells();
        assert_eq!(cells.len(), 1 + 2 + 3 + 4);
        for c in &cells {
            assert!(c.get_u32("f") < c.get_u32("k"));
        }
        // a second filter composes conjunctively
        let strict = ParamGrid::new()
            .axis_u32("k", 1..=4)
            .axis_u32("f", 0..4)
            .filter(|c| c.get_u32("f") < c.get_u32("k"))
            .filter(|c| c.get_u32("k") >= 3);
        assert_eq!(strict.cells().len(), 3 + 4);
    }

    #[test]
    fn zipped_axis_crosses_with_plain_axes() {
        let grid = ParamGrid::new()
            .axis_zip(
                &["m", "k"],
                vec![
                    vec![2u32.into(), 1u32.into()],
                    vec![3u32.into(), 4u32.into()],
                ],
            )
            .axis_f64("x", [0.5, 1.5, 2.5]);
        let cells = grid.cells();
        assert_eq!(cells.len(), 6);
        // first zip row crossed with all x before the second
        assert_eq!(cells[0].get_u32("m"), 2);
        assert_eq!(cells[2].get_u32("m"), 2);
        assert_eq!(cells[3].get_u32("m"), 3);
        assert_eq!(cells[3].get_u32("k"), 4);
        assert!((cells[3].get_f64("x") - 0.5).abs() < 1e-15);
    }

    #[test]
    fn empty_axis_means_empty_grid() {
        let grid = ParamGrid::new().axis_u32("k", 1..=3).axis_u32("f", 1..1);
        assert_eq!(grid.product_len(), 0);
        assert!(grid.cells().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate axis name")]
    fn duplicate_axis_name_panics() {
        let _ = ParamGrid::new().axis_u32("k", 1..=2).axis_f64("k", [1.0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn zip_arity_mismatch_panics() {
        let _ = ParamGrid::new().axis_zip(&["m", "k"], vec![vec![2u32.into()]]);
    }

    #[derive(serde::Serialize)]
    struct DemoRow {
        k: u32,
        f: u32,
        ratio: f64,
        note: Option<f64>,
    }

    fn demo_campaign() -> Campaign<DemoRow> {
        let grid = ParamGrid::new()
            .axis_u32("k", 1..=5)
            .axis_u32("f", 0..5)
            .filter(|c| c.get_u32("f") < c.get_u32("k"));
        Campaign::new("demo", "ratio demo", grid, |cell| {
            let (k, f) = (cell.get_u32("k"), cell.get_u32("f"));
            DemoRow {
                k,
                f,
                ratio: f64::from(k) / f64::from(f + 1),
                note: (f == 0).then_some(1.0),
            }
        })
    }

    #[test]
    fn run_preserves_grid_order_across_thread_counts() {
        let sequential = demo_campaign().threads(Some(1)).run();
        assert_eq!(sequential.threads, 1);
        for threads in [2, 8] {
            let parallel = demo_campaign().threads(Some(threads)).run();
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in parallel.results.iter().zip(&sequential.results) {
                assert_eq!(a.cell, b.cell);
                assert_eq!(a.row.k, b.row.k);
                assert!((a.row.ratio - b.row.ratio).abs() < 1e-15);
            }
            // serialized reports agree row-for-row too
            let ra = parallel.report();
            let rb = sequential.report();
            assert_eq!(ra.rows(), rb.rows());
        }
    }

    #[test]
    fn report_renders_headers_in_field_order() {
        let report = demo_campaign().run().report();
        assert_eq!(report.headers(), vec!["k", "f", "ratio", "note"]);
        let text = report.render_text();
        assert!(text.starts_with("=== DEMO — ratio demo ==="));
        // every data row rendered
        assert_eq!(report.table().len(), report.rows().len());
        // Option::None renders as '-'
        assert!(text.contains('-'));
    }

    #[test]
    fn report_json_shape() {
        let report = demo_campaign().threads(Some(1)).run().report();
        let doc = report.to_value();
        assert_eq!(doc.get("id"), Some(&Value::String("demo".to_owned())));
        let rows = match doc.get("rows") {
            Some(Value::Array(rows)) => rows,
            other => panic!("rows missing: {other:?}"),
        };
        assert_eq!(rows.len(), 15);
        match &rows[0] {
            Value::Object(map) => {
                assert!(map.contains_key("ratio"));
                assert_eq!(map.get("k"), Some(&Value::Int(1)));
            }
            other => panic!("row not an object: {other:?}"),
        }
    }

    #[test]
    fn attached_memo_stats_flow_into_run_report_and_json() {
        use crate::evaluate_optimal_cached;

        let memo = Arc::new(CompileMemo::new());
        let grid = ParamGrid::new().axis_u32("f", [1u32, 3, 7]);
        let cell_memo = Arc::clone(&memo);
        // trivial-regime cells: the zone fleet is f-free, one compile
        let campaign = Campaign::new("memo", "shared geometry", grid, move |cell| {
            let f = cell.get_u32("f");
            let r = evaluate_optimal_cached(&cell_memo, 2, 512, f, 1e4).unwrap();
            DemoRow {
                k: 512,
                f,
                ratio: r.ratio,
                note: None,
            }
        })
        .threads(Some(2))
        .with_compile_memo(Arc::clone(&memo));
        let run = campaign.run();
        let compile = run.compile.expect("memo attached, stats recorded");
        assert_eq!((compile.misses, compile.hits), (1, 2));
        let report = run.report();
        assert_eq!(report.compile(), Some(&compile));
        let doc = report.to_value();
        let split = match doc.get("compile") {
            Some(Value::Object(map)) => map,
            other => panic!("compile split missing: {other:?}"),
        };
        assert_eq!(
            split.get("misses"),
            serde_json::to_value(1u64).ok().as_ref()
        );
        assert!(split.contains_key("compile_micros"));
        assert!(split.contains_key("evaluate_micros"));
        // the per-cell latency summary rides along in the same object:
        // percentiles are histogram upper bounds (p ≤ reported < 2p),
        // the max is the exact slowest cell
        let uint = |key: &str| {
            split
                .get(key)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("{key} missing from compile split"))
        };
        let (p50, p95, max) = (
            uint("evaluate_p50_micros"),
            uint("evaluate_p95_micros"),
            uint("evaluate_max_micros"),
        );
        assert!(p50 <= p95, "p50 {p50} must not exceed p95 {p95}");
        let slowest_cell = run.results.iter().map(|r| r.micros).max().unwrap();
        assert_eq!(max, slowest_cell);
        assert!(
            p95 >= slowest_cell.min(1),
            "p95 {p95} vs max {slowest_cell}"
        );
        // without a memo the key is absent and the run records nothing
        let bare = demo_campaign().threads(Some(1)).run();
        assert!(bare.compile.is_none());
        assert!(bare.report().to_value().get("compile").is_none());
    }

    #[test]
    fn per_cell_timing_is_recorded() {
        let run = demo_campaign().run();
        assert!(run.micros > 0 || run.results.iter().all(|r| r.micros == 0));
        assert_eq!(run.rows().count(), run.len());
    }

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.push(vec!["111".into(), "2".into()]);
        t.push(vec!["1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(9.0), "9.000000");
        assert!(fnum(1e9).contains('e'));
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
