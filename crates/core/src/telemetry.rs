//! The dependency-free measurement core of the observability layer:
//! power-of-two log-bucketed latency histograms and the SplitMix64
//! mixer trace ids are minted from.
//!
//! # Why log-bucketed, power-of-two histograms
//!
//! The serving hot path cannot afford to *store* latencies (an
//! unbounded reservoir) or to do float math per request. A
//! [`LatencyHistogram`] is 65 atomic counters: recording a value is one
//! `leading_zeros` plus four relaxed atomic adds — integers only, no
//! locks, no allocation. Bucket `b` covers `[2^(b-1), 2^b - 1]`
//! (bucket 0 holds exact zeros), so any quantile read off the bucket
//! boundaries is correct within a factor of two, and the exact `max` is
//! tracked separately so the tail is never rounded. Snapshots are plain
//! data and *mergeable* — per-shard or per-worker histograms sum into a
//! fleet-wide view without losing quantile fidelity beyond the bucket
//! width, which is what lets the router, the load harnesses and the
//! campaign engine share one histogram type.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The SplitMix64 finalizer: a bijective avalanche mix of `x`. Feeding
/// it a counter (0, 1, 2, …) yields a deterministic, well-scattered
/// sequence of 64-bit ids — exactly what trace-id minting wants: ids
/// that look random but replay identically run to run.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The bucket index `value` lands in: 0 for zero, otherwise the bit
/// length of `value` (so bucket `b ≥ 1` covers `[2^(b-1), 2^b - 1]`).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` covers (`0` for bucket 0,
/// `2^index - 1` otherwise, saturating at `u64::MAX`).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A lock-free latency histogram over power-of-two buckets.
///
/// All methods take `&self`; concurrent recorders never contend on a
/// lock. Counts are exact (every recorded value is counted in exactly
/// one bucket); only the quantile *positions* within a bucket are
/// approximated by the bucket's upper bound.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation — integer arithmetic and relaxed atomics
    /// only, safe on the hottest path.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy of the current counters. Concurrent recording
    /// may make the copy internally torn by a few in-flight
    /// observations; every committed observation is eventually visible.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data histogram state: what [`LatencyHistogram::snapshot`]
/// returns and what merging, quantile reads and report generation work
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturation-free for realistic
    /// microsecond latencies).
    pub sum: u64,
    /// The exact largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Builds a snapshot directly from a slice of values — the
    /// single-threaded convenience path (campaign cells, tests).
    #[must_use]
    pub fn from_values(values: &[u64]) -> Self {
        let mut snap = HistogramSnapshot::default();
        for &v in values {
            snap.buckets[bucket_index(v)] += 1;
            snap.count += 1;
            snap.sum = snap.sum.saturating_add(v);
            snap.max = snap.max.max(v);
        }
        snap
    }

    /// The commutative, associative merge of two snapshots — the
    /// fleet-wide view is the merge of the per-shard ones.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// The `p`-th percentile (`0 ..= 100`), integer arithmetic only:
    /// the upper bound of the bucket holding the `⌈count·p/100⌉`-th
    /// smallest observation, clamped to the exact recorded `max`.
    ///
    /// Guarantee: if `x ≥ 1` is the exact value at that rank, the
    /// returned `q` satisfies `x ≤ q < 2x` — within one power-of-two
    /// bucket, never below the truth.
    #[must_use]
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count.saturating_mul(p.min(100))).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random values for the property tests.
    fn pseudo_values(seed: u64, n: usize, spread_bits: u32) -> Vec<u64> {
        (0..n as u64)
            .map(|i| splitmix64(seed.wrapping_add(i)) >> (64 - spread_bits))
            .collect()
    }

    #[test]
    fn splitmix64_is_deterministic_and_scattered() {
        assert_eq!(splitmix64(0), splitmix64(0));
        let ids: Vec<u64> = (0..1000).map(splitmix64).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "counter inputs must not collide");
        // avalanche sanity: consecutive counters differ in many bits
        for w in ids.windows(2) {
            assert!((w[0] ^ w[1]).count_ones() >= 10);
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for b in 1..=63usize {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            // the off-by-one frontier: 2^(b-1)-1 | 2^(b-1) … 2^b-1 | 2^b
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(hi), b, "upper edge of bucket {b}");
            if lo > 1 {
                assert_eq!(bucket_index(lo - 1), b - 1, "below bucket {b}");
            }
            if b < 63 {
                assert_eq!(bucket_index(hi + 1), b + 1, "above bucket {b}");
            }
            assert_eq!(bucket_upper_bound(b), hi);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 0);
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 1023, 1024, 1025, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    /// Percentiles read off the histogram bound the exact order
    /// statistics from above, within one power-of-two bucket.
    #[test]
    fn percentile_bounds_the_exact_sorted_data() {
        for (seed, n, bits) in [
            (1u64, 500usize, 12u32),
            (2, 1000, 20),
            (3, 37, 6),
            (4, 1, 10),
        ] {
            let mut values = pseudo_values(seed, n, bits);
            let snap = HistogramSnapshot::from_values(&values);
            values.sort_unstable();
            for p in [0u64, 1, 10, 50, 90, 95, 99, 100] {
                let rank = (snap.count * p).div_ceil(100).max(1) as usize;
                let exact = values[rank - 1];
                let q = snap.percentile(p);
                assert!(
                    q >= exact,
                    "p{p} seed {seed}: histogram {q} below exact {exact}"
                );
                if exact >= 1 {
                    assert!(
                        q < 2 * exact,
                        "p{p} seed {seed}: histogram {q} not within 2x of exact {exact}"
                    );
                } else {
                    // an exact zero at the rank: the bucket answer can
                    // only exceed it if larger values share the count
                    assert!(q <= snap.max);
                }
            }
            assert_eq!(snap.percentile(100), *values.last().unwrap());
            assert_eq!(snap.max, *values.last().unwrap());
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = HistogramSnapshot::from_values(&pseudo_values(10, 200, 16));
        let b = HistogramSnapshot::from_values(&pseudo_values(11, 300, 10));
        let c = HistogramSnapshot::from_values(&pseudo_values(12, 50, 30));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let empty = HistogramSnapshot::default();
        assert_eq!(a.merge(&empty), a, "empty is the merge identity");
    }

    #[test]
    fn merge_equals_recording_the_concatenation() {
        let xs = pseudo_values(20, 150, 14);
        let ys = pseudo_values(21, 250, 14);
        let merged =
            HistogramSnapshot::from_values(&xs).merge(&HistogramSnapshot::from_values(&ys));
        let mut all = xs;
        all.extend(ys);
        assert_eq!(merged, HistogramSnapshot::from_values(&all));
    }

    #[test]
    fn atomic_histogram_agrees_with_from_values() {
        let values = pseudo_values(30, 400, 18);
        let hist = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for chunk in values.chunks(100) {
                let hist = &hist;
                scope.spawn(move || {
                    for &v in chunk {
                        hist.record(v);
                    }
                });
            }
        });
        assert_eq!(hist.count(), values.len() as u64);
        assert_eq!(hist.snapshot(), HistogramSnapshot::from_values(&values));
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let snap = HistogramSnapshot::default();
        for p in [0, 50, 100] {
            assert_eq!(snap.percentile(p), 0);
        }
    }
}
