//! Tightness verdicts: theory vs measurement vs falsification.
//!
//! For an instance `(m, k, f)` in the searchable regime the paper asserts
//! three mutually reinforcing facts, each independently checkable:
//!
//! 1. **theory** — the closed form `λ₀ = Λ(q/k)` (Theorem 6, via
//!    `raysearch-bounds`);
//! 2. **upper bound** — the cyclic exponential strategy *measures* at
//!    `λ₀` on the exact evaluator (appendix construction);
//! 3. **lower bound** — at any `λ < λ₀`, the strategy's induced `q`-fold
//!    ORC covering fails: the sweep exhibits an undercovered witness
//!    (Section 3.1 machinery).
//!
//! [`verify_tightness`] runs all three and returns a [`TightnessReport`].

use raysearch_bounds::{a_rays, lambda_to_mu, RayInstance};
use raysearch_cover::settings::{merge_fleet_intervals, OrcSetting};
use raysearch_cover::CoverageProfile;
use raysearch_sim::RobotId;
use raysearch_strategies::CyclicExponential;

use crate::canon::CanonF64;
use crate::compiled::{CompileCache, FleetBuilder, FleetKey, NoCache};
use crate::{CoreError, RayEvaluator};

/// The outcome of a tightness verification for one instance.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TightnessReport {
    /// The instance checked.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The closed-form optimal ratio `λ₀`.
    pub theory: f64,
    /// The measured worst-case ratio of the optimal strategy over
    /// `[1, horizon]` (approaches `theory` from below as the horizon
    /// grows).
    pub measured_upper: f64,
    /// Whether the `q`-fold ORC covering of the optimal strategy fails at
    /// `λ = (1−eps)·λ₀`, as the lower bound demands.
    pub falsified_below: bool,
    /// The undercovered witness distance when falsified.
    pub witness_below: Option<f64>,
    /// The relative margin used for the falsification check.
    pub eps: f64,
    /// The evaluation horizon.
    pub horizon: f64,
}

impl TightnessReport {
    /// Whether both directions hold within `tol` (relative).
    pub fn is_tight(&self, tol: f64) -> bool {
        self.falsified_below && (self.measured_upper - self.theory).abs() <= tol * self.theory
    }
}

/// Verifies the tightness of Theorem 6 for one instance.
///
/// `eps` is the relative margin below `λ₀` at which covering must fail;
/// for very small `eps` the failure witness moves far out, so the horizon
/// must grow accordingly (the paper's `N(ε)`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`]-style errors for out-of-regime
/// parameters, invalid horizons or `eps ∉ (0, 1)`.
pub fn verify_tightness(
    m: u32,
    k: u32,
    f: u32,
    horizon: f64,
    eps: f64,
) -> Result<TightnessReport, CoreError> {
    verify_tightness_cached(&NoCache, m, k, f, horizon, eps)
}

/// [`verify_tightness`] with a shared compilation cache for the
/// measurement side.
///
/// The upper-bound measurement consumes the same
/// [`CompiledFleet`](crate::CompiledFleet) artifact as
/// [`evaluate_optimal_cached`](crate::evaluate_optimal_cached) at the
/// same horizon, so verdicts piggyback on artifacts already compiled by
/// evaluations (and vice versa). The ORC falsification side still walks
/// the full log tours: its turn prefix is governed by the `μ·horizon`
/// mass cutoff, not the first-visit piece cap.
///
/// # Errors
///
/// As [`verify_tightness`].
pub fn verify_tightness_cached<C: CompileCache>(
    cache: &C,
    m: u32,
    k: u32,
    f: u32,
    horizon: f64,
    eps: f64,
) -> Result<TightnessReport, CoreError> {
    if !(eps.is_finite() && 0.0 < eps && eps < 1.0) {
        return Err(CoreError::invalid(format!(
            "eps must lie in (0, 1), got {eps}"
        )));
    }
    let instance = RayInstance::new(m, k, f)?;
    let theory = a_rays(m, k, f)?;
    let strategy = CyclicExponential::optimal(m, k, f)?;
    let evaluator = RayEvaluator::new(m as usize, f, 1.0, horizon)?;
    let lambda_below = theory * (1.0 - eps);
    let mu_below = lambda_to_mu(lambda_below)?;

    // Both checks ride the exact evaluator's overflow-proof log-domain
    // path (linear tours stop existing from k ≈ 139).
    let sum_cutoff = mu_below * horizon;

    // (2) measure the upper bound exactly, through the shared artifact:
    // the key matches `evaluate_optimal_cached` at the same horizon, so
    // one compilation serves both entry points
    let key = FleetKey::Cyclic {
        m,
        k,
        alpha: CanonF64::new(strategy.alpha())?,
        cap: CanonF64::new(horizon)?,
    };
    let fleet = cache.get_or_compile(key, &mut || {
        let mut builder = FleetBuilder::new(m as usize, horizon)?;
        for r in 0..k as usize {
            builder.push_log_tour(&strategy.log_tour_prefix(RobotId(r), horizon)?)?;
        }
        Ok(builder.finish())
    })?;

    // (3) the bounded turn prefix of the q-fold ORC covering; this side
    // needs linear turns, but only while an interval's start
    // `sum_before/μ` can still land in `[1, horizon]`
    let mut per_robot = Vec::with_capacity(k as usize);
    for r in 0..k as usize {
        let tour = strategy.log_tour(RobotId(r), horizon * 4.0)?;
        let mut turns = Vec::new();
        let mut sum_before = 0.0f64;
        for e in tour.excursions() {
            if sum_before > sum_cutoff {
                break;
            }
            let turn = e.turn.to_f64();
            // warm-up turns of very large fleets underflow linear f64;
            // their true mass is below one ulp of any later sum and
            // their intervals end far under distance 1, so they cannot
            // move the profile over [1, horizon]
            if turn > 0.0 {
                turns.push(turn);
                sum_before += turn;
            }
        }
        per_robot.push(OrcSetting::covered_intervals(&turns, mu_below)?);
    }

    let report = evaluator.evaluate_compiled(&fleet)?;
    if !report.is_covered() {
        return Err(CoreError::Uncovered {
            witness: report.uncovered.map(|w| w.x).unwrap_or(f64::NAN),
            ray: report.uncovered.map(|w| w.ray).unwrap_or(0),
        });
    }

    let merged = merge_fleet_intervals(per_robot);
    let profile = CoverageProfile::build(&merged, 1.0, horizon)?;
    let witness = profile.first_undercovered(instance.q() as usize);

    Ok(TightnessReport {
        m,
        k,
        f,
        theory,
        measured_upper: report.ratio,
        falsified_below: witness.is_some(),
        witness_below: witness,
        eps,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_validation() {
        assert!(verify_tightness(2, 1, 0, 100.0, 0.0).is_err());
        assert!(verify_tightness(2, 1, 0, 100.0, 1.0).is_err());
        assert!(verify_tightness(2, 1, 0, 100.0, f64::NAN).is_err());
    }

    #[test]
    fn cow_path_instance_is_tight() {
        let r = verify_tightness(2, 1, 0, 1e4, 1e-2).unwrap();
        assert!((r.theory - 9.0).abs() < 1e-12);
        assert!((r.measured_upper - 9.0).abs() < 1e-3);
        assert!(r.falsified_below, "coverage did not fail below 9");
        assert!(r.is_tight(1e-3));
    }

    #[test]
    fn faulty_line_instance_is_tight() {
        let r = verify_tightness(2, 3, 1, 1e4, 1e-2).unwrap();
        let expect = raysearch_bounds::a_line(3, 1).unwrap();
        assert!((r.theory - expect).abs() < 1e-12);
        assert!((r.measured_upper - expect).abs() < 1e-3);
        assert!(r.falsified_below);
    }

    #[test]
    fn multi_ray_instances_are_tight() {
        for (m, k, f) in [(3u32, 2u32, 0u32), (4, 3, 0), (3, 5, 1)] {
            let r = verify_tightness(m, k, f, 1e4, 2e-2).unwrap();
            assert!(
                (r.measured_upper - r.theory).abs() < 1e-3 * r.theory,
                "(m={m},k={k},f={f}): measured {} vs theory {}",
                r.measured_upper,
                r.theory
            );
            assert!(r.falsified_below, "(m={m},k={k},f={f}) not falsified");
        }
    }

    #[test]
    fn large_fleet_verdict_goes_through_the_log_pipeline() {
        // k = 256 has no linear fleet (turn points overflow f64); both
        // verdict sides must still run, sharing the log tours
        let r = verify_tightness(2, 256, 128, 1e6, 1e-2).unwrap();
        let expect = raysearch_bounds::a_rays(2, 256, 128).unwrap();
        assert!(r.measured_upper.is_finite());
        assert!((r.measured_upper - expect).abs() < 1e-6 * expect);
        assert!(r.falsified_below, "coverage did not fail below Λ");
        assert!(r.is_tight(1e-4));
    }

    #[test]
    fn cached_verdict_is_bit_identical_and_shares_the_evaluate_artifact() {
        use crate::compiled::CompileMemo;
        use crate::evaluate_optimal_cached;

        let memo = CompileMemo::new();
        for (m, k, f) in [(2u32, 3u32, 1u32), (3, 5, 1)] {
            let fresh = verify_tightness(m, k, f, 1e4, 1e-2).unwrap();
            let cached = verify_tightness_cached(&memo, m, k, f, 1e4, 1e-2).unwrap();
            assert_eq!(
                fresh.measured_upper.to_bits(),
                cached.measured_upper.to_bits(),
                "({m},{k},{f})"
            );
            assert_eq!(fresh.falsified_below, cached.falsified_below);
            assert_eq!(fresh.witness_below, cached.witness_below);
            // the evaluation entry point reuses the verdict's artifact
            evaluate_optimal_cached(&memo, m, k, f, 1e4).unwrap();
        }
        let stats = memo.stats();
        assert_eq!(
            (stats.misses, stats.hits),
            (2, 2),
            "verdict and evaluation share one artifact per instance"
        );
    }

    #[test]
    fn out_of_regime_is_rejected() {
        assert!(verify_tightness(2, 4, 1, 100.0, 0.01).is_err()); // trivial
        assert!(verify_tightness(2, 2, 2, 100.0, 0.01).is_err()); // impossible
    }
}
