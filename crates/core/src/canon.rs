//! Canonical floating-point keys for memoization.
//!
//! A serving layer memoizes evaluations keyed by instance parameters, and
//! some of those parameters are `f64`s (horizons, epsilons, bases). Raw
//! `f64` is a poor hash key: it is not `Eq`/`Hash`, `NaN` never equals
//! itself, and `-0.0 == 0.0` while their bit patterns differ — so two
//! logically equal instances could land in different cache entries (or
//! shards) and never share work. [`CanonF64`] fixes the key, not the
//! arithmetic: construction rejects `NaN`, normalizes `-0.0` to `+0.0`,
//! and then keys on the exact bit pattern, so logically equal finite
//! parameters always canonicalize identically.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::CoreError;

/// An `f64` canonicalized for use as (part of) a cache key.
///
/// Invariants established at construction:
///
/// * never `NaN` (rejected with [`CoreError::InvalidInput`]);
/// * never `-0.0` (normalized to `+0.0`);
///
/// so `Eq`/`Hash`/`Ord` on the underlying bit pattern agree with the
/// logical equality of the parameter values. Infinities are allowed —
/// they are legitimate, self-equal parameter values.
///
/// # Example
///
/// ```
/// use raysearch_core::canon::CanonF64;
///
/// let a = CanonF64::new(0.0)?;
/// let b = CanonF64::new(-0.0)?;
/// assert_eq!(a, b); // -0.0 normalizes to +0.0
/// assert!(CanonF64::new(f64::NAN).is_err());
/// # Ok::<(), raysearch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CanonF64(f64);

impl CanonF64 {
    /// Canonicalizes `value`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `value` is `NaN`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if value.is_nan() {
            return Err(CoreError::InvalidInput {
                reason: "NaN cannot be canonicalized into a cache key".to_owned(),
            });
        }
        // collapse -0.0 onto +0.0 so the bit patterns agree
        Ok(CanonF64(if value == 0.0 { 0.0 } else { value }))
    }

    /// The canonicalized value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The bit pattern the key hashes and compares by.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0.to_bits()
    }
}

impl PartialEq for CanonF64 {
    fn eq(&self, other: &Self) -> bool {
        self.bits() == other.bits()
    }
}

impl Eq for CanonF64 {}

impl Hash for CanonF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bits().hash(state);
    }
}

impl PartialOrd for CanonF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CanonF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is unrepresentable, so total_cmp degenerates to the
        // numeric order
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for CanonF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for CanonF64 {
    type Error = CoreError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        CanonF64::new(value)
    }
}

impl From<CanonF64> for f64 {
    fn from(value: CanonF64) -> f64 {
        value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(k: CanonF64) -> u64 {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_is_rejected() {
        assert!(CanonF64::new(f64::NAN).is_err());
        assert!(CanonF64::new(-f64::NAN).is_err());
        // a NaN produced by arithmetic, not just the constant
        assert!(CanonF64::new(f64::INFINITY - f64::INFINITY).is_err());
        assert!(CanonF64::try_from(f64::NAN).is_err());
    }

    #[test]
    fn negative_zero_normalizes() {
        let pos = CanonF64::new(0.0).unwrap();
        let neg = CanonF64::new(-0.0).unwrap();
        assert_eq!(pos, neg);
        assert_eq!(pos.bits(), neg.bits());
        assert_eq!(hash_of(pos), hash_of(neg));
        assert!(neg.get().is_sign_positive());
    }

    #[test]
    fn equal_values_share_bits_and_hash() {
        for v in [1.0, 1e4, -2.5, 0.1 + 0.2, f64::INFINITY, f64::MIN_POSITIVE] {
            let a = CanonF64::new(v).unwrap();
            let b = CanonF64::new(v).unwrap();
            assert_eq!(a, b, "{v}");
            assert_eq!(hash_of(a), hash_of(b), "{v}");
            assert_eq!(f64::from(a).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn distinct_values_differ() {
        let a = CanonF64::new(1e4).unwrap();
        let b = CanonF64::new(1e4 + 1e-8).unwrap();
        assert_ne!(a, b);
        assert_ne!(a.bits(), b.bits());
    }

    #[test]
    fn ordering_is_numeric() {
        let mut keys: Vec<CanonF64> = [2.5, -1.0, 0.0, f64::INFINITY, -0.0, 1.0]
            .iter()
            .map(|&v| CanonF64::new(v).unwrap())
            .collect();
        keys.sort();
        let sorted: Vec<f64> = keys.iter().map(|k| k.get()).collect();
        assert_eq!(sorted, vec![-1.0, 0.0, 0.0, 1.0, 2.5, f64::INFINITY]);
    }

    #[test]
    fn displays_as_the_value() {
        assert_eq!(CanonF64::new(2.5).unwrap().to_string(), "2.5");
        assert_eq!(CanonF64::new(-0.0).unwrap().to_string(), "0");
    }
}
