//! Canonical floating-point keys for memoization, and the stable hash
//! that routing layers build on.
//!
//! A serving layer memoizes evaluations keyed by instance parameters, and
//! some of those parameters are `f64`s (horizons, epsilons, bases). Raw
//! `f64` is a poor hash key: it is not `Eq`/`Hash`, `NaN` never equals
//! itself, and `-0.0 == 0.0` while their bit patterns differ — so two
//! logically equal instances could land in different cache entries (or
//! shards) and never share work. [`CanonF64`] fixes the key, not the
//! arithmetic: construction rejects `NaN`, normalizes `-0.0` to `+0.0`,
//! and then keys on the exact bit pattern, so logically equal finite
//! parameters always canonicalize identically.
//!
//! [`stable_hash64`] / [`StableHasher`] extend the same idea across
//! *process boundaries*: a sharding router that rendezvous-hashes
//! canonicalized keys must agree with itself after a restart, and a
//! recorded request tape must replay to the same shard assignment on any
//! host. `std`'s `DefaultHasher` makes no such promise, so routing keys
//! hash through this fixed, dependency-free FNV-1a implementation whose
//! outputs are pinned by test vectors.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::CoreError;

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A process- and platform-stable 64-bit streaming hasher (FNV-1a).
///
/// Unlike `std::collections::hash_map::DefaultHasher`, whose algorithm
/// is explicitly unspecified, this hasher is *pinned*: the same byte
/// stream produces the same value in every process, on every
/// architecture, forever (guarded by test vectors). That is the property
/// a consistent-hash router needs — shard assignment must survive
/// restarts and be reproducible from a recorded tape.
///
/// It implements [`std::hash::Hasher`], so `Hash` types can feed it, but
/// routing code should prefer hashing canonical *byte strings* (see
/// [`stable_hash64`]): derived `Hash` impls make no cross-version
/// layout promises.
///
/// # Example
///
/// ```
/// use raysearch_core::canon::{stable_hash64, StableHasher};
/// use std::hash::Hasher;
///
/// let mut h = StableHasher::new();
/// h.write(b"evaluate:m=2,k=3,f=1");
/// assert_eq!(h.finish(), stable_hash64(b"evaluate:m=2,k=3,f=1"));
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// Hashes `bytes` with the pinned FNV-1a 64-bit function.
///
/// This is the routing hash: a rendezvous router scores each backend by
/// `stable_hash64` over `backend-id ++ 0x00 ++ routing-key` and picks
/// the maximum, and replay harnesses recompute the same scores to
/// predict shard placement offline.
#[must_use]
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write(bytes);
    hasher.finish()
}

/// Hashes the concatenation `parts[0] ++ 0x00 ++ parts[1] ++ 0x00 ++ …`
/// with [`stable_hash64`]'s function. The `0x00` separator keeps
/// distinct part boundaries from colliding (`("ab", "c")` never hashes
/// like `("a", "bc")`); routing keys are printable strings, so the
/// separator cannot occur inside a part.
#[must_use]
pub fn stable_hash64_parts(parts: &[&[u8]]) -> u64 {
    let mut hasher = StableHasher::new();
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            hasher.write(&[0u8]);
        }
        hasher.write(part);
    }
    hasher.finish()
}

/// An `f64` canonicalized for use as (part of) a cache key.
///
/// Invariants established at construction:
///
/// * never `NaN` (rejected with [`CoreError::InvalidInput`]);
/// * never `-0.0` (normalized to `+0.0`);
///
/// so `Eq`/`Hash`/`Ord` on the underlying bit pattern agree with the
/// logical equality of the parameter values. Infinities are allowed —
/// they are legitimate, self-equal parameter values.
///
/// # Example
///
/// ```
/// use raysearch_core::canon::CanonF64;
///
/// let a = CanonF64::new(0.0)?;
/// let b = CanonF64::new(-0.0)?;
/// assert_eq!(a, b); // -0.0 normalizes to +0.0
/// assert!(CanonF64::new(f64::NAN).is_err());
/// # Ok::<(), raysearch_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CanonF64(f64);

impl CanonF64 {
    /// Canonicalizes `value`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] if `value` is `NaN`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if value.is_nan() {
            return Err(CoreError::InvalidInput {
                reason: "NaN cannot be canonicalized into a cache key".to_owned(),
            });
        }
        // collapse -0.0 onto +0.0 so the bit patterns agree
        Ok(CanonF64(if value == 0.0 { 0.0 } else { value }))
    }

    /// The canonicalized value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The bit pattern the key hashes and compares by.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0.to_bits()
    }
}

impl PartialEq for CanonF64 {
    fn eq(&self, other: &Self) -> bool {
        self.bits() == other.bits()
    }
}

impl Eq for CanonF64 {}

impl Hash for CanonF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bits().hash(state);
    }
}

impl PartialOrd for CanonF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CanonF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is unrepresentable, so total_cmp degenerates to the
        // numeric order
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for CanonF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for CanonF64 {
    type Error = CoreError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        CanonF64::new(value)
    }
}

impl From<CanonF64> for f64 {
    fn from(value: CanonF64) -> f64 {
        value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(k: CanonF64) -> u64 {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_is_rejected() {
        assert!(CanonF64::new(f64::NAN).is_err());
        assert!(CanonF64::new(-f64::NAN).is_err());
        // a NaN produced by arithmetic, not just the constant
        assert!(CanonF64::new(f64::INFINITY - f64::INFINITY).is_err());
        assert!(CanonF64::try_from(f64::NAN).is_err());
    }

    #[test]
    fn negative_zero_normalizes() {
        let pos = CanonF64::new(0.0).unwrap();
        let neg = CanonF64::new(-0.0).unwrap();
        assert_eq!(pos, neg);
        assert_eq!(pos.bits(), neg.bits());
        assert_eq!(hash_of(pos), hash_of(neg));
        assert!(neg.get().is_sign_positive());
    }

    #[test]
    fn equal_values_share_bits_and_hash() {
        for v in [1.0, 1e4, -2.5, 0.1 + 0.2, f64::INFINITY, f64::MIN_POSITIVE] {
            let a = CanonF64::new(v).unwrap();
            let b = CanonF64::new(v).unwrap();
            assert_eq!(a, b, "{v}");
            assert_eq!(hash_of(a), hash_of(b), "{v}");
            assert_eq!(f64::from(a).to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn distinct_values_differ() {
        let a = CanonF64::new(1e4).unwrap();
        let b = CanonF64::new(1e4 + 1e-8).unwrap();
        assert_ne!(a, b);
        assert_ne!(a.bits(), b.bits());
    }

    #[test]
    fn ordering_is_numeric() {
        let mut keys: Vec<CanonF64> = [2.5, -1.0, 0.0, f64::INFINITY, -0.0, 1.0]
            .iter()
            .map(|&v| CanonF64::new(v).unwrap())
            .collect();
        keys.sort();
        let sorted: Vec<f64> = keys.iter().map(|k| k.get()).collect();
        assert_eq!(sorted, vec![-1.0, 0.0, 0.0, 1.0, 2.5, f64::INFINITY]);
    }

    #[test]
    fn displays_as_the_value() {
        assert_eq!(CanonF64::new(2.5).unwrap().to_string(), "2.5");
        assert_eq!(CanonF64::new(-0.0).unwrap().to_string(), "0");
    }

    /// The published FNV-1a 64-bit test vectors. If any of these ever
    /// moves, every recorded tape's shard assignment silently changes —
    /// this test is the tripwire.
    #[test]
    fn stable_hash_matches_fnv1a_reference_vectors() {
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_writes_equal_one_shot() {
        let mut h = StableHasher::new();
        h.write(b"evaluate:");
        h.write(b"m=2,k=3,f=1");
        assert_eq!(h.finish(), stable_hash64(b"evaluate:m=2,k=3,f=1"));
    }

    #[test]
    fn parts_are_boundary_sensitive() {
        // the separator keeps ("ab","c") and ("a","bc") apart...
        assert_ne!(
            stable_hash64_parts(&[b"ab", b"c"]),
            stable_hash64_parts(&[b"a", b"bc"])
        );
        // ...and a single part hashes exactly like the flat bytes
        assert_eq!(
            stable_hash64_parts(&[b"backend-0"]),
            stable_hash64(b"backend-0")
        );
        // two parts equal the explicit 0x00-joined stream
        assert_eq!(
            stable_hash64_parts(&[b"b0", b"key"]),
            stable_hash64(b"b0\x00key")
        );
    }
}
