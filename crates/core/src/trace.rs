//! Hierarchical request tracing: span trees, a bounded completed-trace
//! ring, and Chrome trace-event export.
//!
//! The serving tier's histograms ([`crate::telemetry`]) answer "how slow
//! are requests *in aggregate*"; this module answers "where did *this*
//! request spend its time". Both views are fed from the same measured
//! spans, so they can never disagree.
//!
//! * [`SpanData`] — one node of a span tree: name, start/end offsets in
//!   microseconds relative to the trace root, `key=value` attributes and
//!   child spans. Renders to JSON with a fixed field order and parses
//!   back byte-identically ([`SpanData::to_json`] / [`SpanData::from_json`]).
//! * [`TraceBuilder`] / [`ScopedSpan`] — per-request span capture. The
//!   builder lives on the request's stack (one per in-flight request, so
//!   worker threads never contend while recording); the RAII guard stamps
//!   start/end offsets around a scope.
//! * [`TraceRecorder`] — the shared sink: a lock-sharded bounded ring of
//!   completed traces keyed by the 64-bit trace id, plus the
//!   deterministic SplitMix64 1-in-N sampling counter. Slow requests
//!   (over the serving tier's `--slow-log-micros` threshold) are always
//!   kept; everything else is kept 1-in-N.
//! * [`chrome_trace_json`] — converts assembled traces to Chrome
//!   trace-event JSON (catapult format), loadable in Perfetto or
//!   `chrome://tracing`.
//!
//! Everything here is deterministic: sampling draws come from an atomic
//! counter through [`splitmix64`], never from wall-clock entropy, so a
//! replay issues the same number of kept traces no matter the thread
//! count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde_json::Value;

use crate::canon::stable_hash64;
use crate::telemetry::splitmix64;

/// Default total capacity of a [`TraceRecorder`] ring (across shards).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Default number of lock shards in a [`TraceRecorder`].
pub const DEFAULT_TRACE_SHARDS: usize = 8;

/// Default sampling rate: keep one trace in N when the request is not
/// slow enough to be kept unconditionally.
pub const DEFAULT_SAMPLE_ONE_IN: u64 = 64;

/// One node of a span tree: a named interval `[start_micros, end_micros]`
/// relative to the trace root, with attributes and child spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Span name (`request`, `parse`, `backend_wait`, ...).
    pub name: String,
    /// Start offset in microseconds from the trace root's start.
    pub start_micros: u64,
    /// End offset in microseconds from the trace root's start.
    pub end_micros: u64,
    /// `key=value` attributes, rendered in insertion order.
    pub attrs: Vec<(String, String)>,
    /// Child spans, in recording order.
    pub children: Vec<SpanData>,
}

impl SpanData {
    /// A leaf span with no attributes or children.
    #[must_use]
    pub fn leaf(name: &str, start_micros: u64, end_micros: u64) -> SpanData {
        SpanData {
            name: name.to_owned(),
            start_micros,
            end_micros,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Duration of this span in microseconds.
    #[must_use]
    pub fn duration_micros(&self) -> u64 {
        self.end_micros.saturating_sub(self.start_micros)
    }

    /// Sum of the durations of the *leaf* spans of this tree (a span
    /// with children contributes its children, not itself). For disjoint
    /// sibling intervals this can never exceed the root duration — the
    /// invariant the probe and the trace-smoke CI job assert.
    #[must_use]
    pub fn leaf_duration_sum(&self) -> u64 {
        if self.children.is_empty() {
            return self.duration_micros();
        }
        self.children.iter().map(SpanData::leaf_duration_sum).sum()
    }

    /// Shifts this span and all descendants `offset` microseconds later
    /// — used when stitching a backend's tree (whose offsets are
    /// relative to the backend's own request start) under the router's
    /// `backend_wait` span.
    pub fn rebase(&mut self, offset: u64) {
        self.start_micros += offset;
        self.end_micros += offset;
        for child in &mut self.children {
            child.rebase(offset);
        }
    }

    /// Renders the tree as compact JSON with a fixed field order
    /// (`name`, `start_micros`, `end_micros`, `attrs`, `children`).
    /// [`SpanData::from_json`] followed by `to_json` reproduces the
    /// exact bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_json_string(out, &self.name);
        out.push_str(",\"start_micros\":");
        out.push_str(&self.start_micros.to_string());
        out.push_str(",\"end_micros\":");
        out.push_str(&self.end_micros.to_string());
        out.push_str(",\"attrs\":{");
        for (i, (key, value)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, key);
            out.push(':');
            write_json_string(out, value);
        }
        out.push_str("},\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }

    /// Parses a tree previously rendered by [`SpanData::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on schema mismatch.
    pub fn from_json(value: &Value) -> Result<SpanData, String> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span is missing a string \"name\"")?
            .to_owned();
        let micros = |field: &str| {
            value
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("span {name:?} is missing integer {field:?}"))
        };
        let start_micros = micros("start_micros")?;
        let end_micros = micros("end_micros")?;
        let mut attrs = Vec::new();
        match value.get("attrs") {
            Some(Value::Object(map)) => {
                for (key, attr) in map.iter() {
                    let attr = attr
                        .as_str()
                        .ok_or_else(|| format!("span {name:?} attr {key:?} is not a string"))?;
                    attrs.push((key.clone(), attr.to_owned()));
                }
            }
            _ => return Err(format!("span {name:?} is missing object \"attrs\"")),
        }
        let mut children = Vec::new();
        match value.get("children") {
            Some(Value::Array(items)) => {
                for item in items {
                    children.push(SpanData::from_json(item)?);
                }
            }
            _ => return Err(format!("span {name:?} is missing array \"children\"")),
        }
        Ok(SpanData {
            name,
            start_micros,
            end_micros,
            attrs,
            children,
        })
    }
}

/// JSON string escaping matching the vendored parser's expectations:
/// quotes, backslashes and control characters are escaped, everything
/// else is copied through verbatim.
fn write_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A finished trace: the 64-bit ring key, the trace id as it appeared
/// on the wire (usually 16 hex digits), and the root span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    /// Ring key — see [`TraceRecorder::key_for`].
    pub key: u64,
    /// The wire trace id (`x-raysearch-trace` value).
    pub trace: String,
    /// Root span (`request`), children in recording order.
    pub root: SpanData,
}

/// Per-request span capture. One builder lives on each in-flight
/// request's stack; spans are recorded with offsets relative to the
/// builder's start instant. Nothing is shared until the finished tree
/// is offered to the [`TraceRecorder`].
#[derive(Debug)]
pub struct TraceBuilder {
    started: Instant,
    spans: Vec<SpanData>,
}

impl TraceBuilder {
    /// Starts the trace clock.
    #[must_use]
    pub fn start() -> TraceBuilder {
        TraceBuilder {
            started: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Microseconds elapsed since [`TraceBuilder::start`], saturating
    /// at `u64::MAX`.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records a completed span with explicit offsets.
    pub fn record(&mut self, span: SpanData) {
        self.spans.push(span);
    }

    /// Opens a scoped span; the returned guard records `name` with the
    /// enclosing offsets when dropped.
    pub fn scoped(&mut self, name: &'static str) -> ScopedSpan<'_> {
        let start_micros = self.elapsed_micros();
        ScopedSpan {
            builder: self,
            name,
            start_micros,
            attrs: Vec::new(),
        }
    }

    /// Closes the trace: returns the root span covering `[0, now]` with
    /// every recorded span as a direct child, in recording order.
    #[must_use]
    pub fn finish(self, root_name: &str, attrs: Vec<(String, String)>) -> SpanData {
        let end_micros = self.elapsed_micros();
        SpanData {
            name: root_name.to_owned(),
            start_micros: 0,
            end_micros,
            attrs,
            children: self.spans,
        }
    }
}

/// RAII guard for one span: stamps the end offset and records itself
/// into the owning [`TraceBuilder`] on drop.
#[derive(Debug)]
pub struct ScopedSpan<'a> {
    builder: &'a mut TraceBuilder,
    name: &'static str,
    start_micros: u64,
    attrs: Vec<(String, String)>,
}

impl ScopedSpan<'_> {
    /// Attaches a `key=value` attribute to the span.
    pub fn attr(&mut self, key: &str, value: &str) {
        self.attrs.push((key.to_owned(), value.to_owned()));
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        let end_micros = self.builder.elapsed_micros();
        let span = SpanData {
            name: self.name.to_owned(),
            start_micros: self.start_micros,
            end_micros,
            attrs: std::mem::take(&mut self.attrs),
            children: Vec::new(),
        };
        self.builder.record(span);
    }
}

/// The shared trace sink: a lock-sharded bounded ring of completed
/// traces keyed by the 64-bit trace id, plus the deterministic sampling
/// counter.
///
/// Sharding: a trace lands in shard `key % shards`, so concurrent
/// worker threads storing different traces rarely contend on the same
/// lock. Each shard holds `capacity / shards` traces and evicts
/// oldest-first; evictions are counted in
/// [`TraceRecorder::dropped_total`].
///
/// Sampling: [`TraceRecorder::sample_decision`] draws from an atomic
/// counter through [`splitmix64`] — draw `c` keeps the trace iff
/// `splitmix64(c) % n == 0`. The decision *sequence* is fixed, so the
/// number of kept traces over `R` requests is identical at any thread
/// count (which request gets which draw may differ). The serving tier
/// keeps slow requests unconditionally and consults the sampler for the
/// rest.
#[derive(Debug)]
pub struct TraceRecorder {
    shards: Vec<Mutex<VecDeque<CompletedTrace>>>,
    shard_capacity: usize,
    sample_one_in: AtomicU64,
    sample_counter: AtomicU64,
    dropped: AtomicU64,
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// A recorder with the default capacity, shard count and sampling
    /// rate ([`DEFAULT_TRACE_CAPACITY`], [`DEFAULT_TRACE_SHARDS`],
    /// [`DEFAULT_SAMPLE_ONE_IN`]).
    #[must_use]
    pub fn new() -> TraceRecorder {
        TraceRecorder::with_capacity(DEFAULT_TRACE_CAPACITY, DEFAULT_TRACE_SHARDS)
    }

    /// A recorder holding at most `capacity` traces across `shards`
    /// lock shards.
    ///
    /// # Panics
    ///
    /// Panics unless `shards > 0` and `capacity` is a positive multiple
    /// of `shards` (so the global bound is exact).
    #[must_use]
    pub fn with_capacity(capacity: usize, shards: usize) -> TraceRecorder {
        assert!(shards > 0, "trace recorder needs at least one shard");
        assert!(
            capacity >= shards && capacity.is_multiple_of(shards),
            "trace capacity {capacity} must be a positive multiple of {shards} shards"
        );
        TraceRecorder {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            shard_capacity: capacity / shards,
            sample_one_in: AtomicU64::new(DEFAULT_SAMPLE_ONE_IN),
            sample_counter: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Total capacity across shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// The ring key for a wire trace id: 16-or-fewer hex digits parse
    /// as the id itself (the minted format), anything else falls back
    /// to the pinned [`stable_hash64`] so arbitrary client-supplied ids
    /// still key consistently across tiers.
    #[must_use]
    pub fn key_for(trace: &str) -> u64 {
        if !trace.is_empty() && trace.len() <= 16 {
            if let Ok(key) = u64::from_str_radix(trace, 16) {
                return key;
            }
        }
        stable_hash64(trace.as_bytes())
    }

    /// Sets the sampling rate: keep one non-slow trace in `n`. Values
    /// `0` and `1` both mean "keep every trace".
    pub fn set_sample_one_in(&self, n: u64) {
        self.sample_one_in.store(n, Ordering::SeqCst);
    }

    /// Current sampling rate.
    #[must_use]
    pub fn sample_one_in(&self) -> u64 {
        self.sample_one_in.load(Ordering::SeqCst)
    }

    /// Draws the next deterministic sampling decision. With rate
    /// `n <= 1` every draw keeps (and the counter does not advance).
    #[must_use]
    pub fn sample_decision(&self) -> bool {
        let n = self.sample_one_in.load(Ordering::SeqCst);
        if n <= 1 {
            return true;
        }
        let draw = self.sample_counter.fetch_add(1, Ordering::SeqCst);
        splitmix64(draw).is_multiple_of(n)
    }

    /// Stores a completed trace, evicting the oldest trace in its
    /// shard if the shard is full.
    pub fn store(&self, trace: CompletedTrace) {
        let shard = &self.shards[self.shard_index(trace.key)];
        let mut ring = shard.lock();
        if ring.len() >= self.shard_capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::SeqCst);
        }
        ring.push_back(trace);
    }

    /// Looks up the most recently stored trace under `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<CompletedTrace> {
        let ring = self.shards[self.shard_index(key)].lock();
        ring.iter().rev().find(|t| t.key == key).cloned()
    }

    /// Wire ids of every stored trace, newest-first within each shard.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<String> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock();
            ids.extend(ring.iter().rev().map(|t| t.trace.clone()));
        }
        ids
    }

    /// Number of traces currently stored.
    #[must_use]
    pub fn stored(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().len() as u64).sum()
    }

    /// Total traces evicted from the ring since startup.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    fn shard_index(&self, key: u64) -> usize {
        usize::try_from(key % self.shards.len() as u64).expect("shard index fits usize")
    }
}

/// Converts assembled traces to a Chrome trace-event (catapult) JSON
/// document, loadable in Perfetto or `chrome://tracing`.
///
/// Each input is `(trace_id, service, root_span)`. Every span becomes a
/// complete (`"ph":"X"`) event; each trace gets its own `tid` lane and
/// each distinct service its own `pid` (spans carrying a `service`
/// attribute — stitched subtrees — switch `pid` for their subtree).
/// Process-name metadata events label the `pid`s. Every event carries
/// `ph`, `ts`, `pid`, `tid` and `name`.
#[must_use]
pub fn chrome_trace_json<'a>(
    traces: impl IntoIterator<Item = (&'a str, &'a str, &'a SpanData)>,
) -> String {
    let mut services: Vec<String> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    for (index, (trace, service, root)) in traces.into_iter().enumerate() {
        let tid = index as u64 + 1;
        let pid = service_pid(&mut services, service);
        push_chrome_span(root, Some(trace), pid, tid, &mut services, &mut events);
    }
    for (index, service) in services.iter().enumerate() {
        let mut event = String::new();
        event.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":");
        event.push_str(&(index as u64 + 1).to_string());
        event.push_str(",\"tid\":0,\"args\":{\"name\":");
        write_json_string(&mut event, service);
        event.push_str("}}");
        events.push(event);
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn service_pid(services: &mut Vec<String>, service: &str) -> u64 {
    if let Some(found) = services.iter().position(|s| s == service) {
        return found as u64 + 1;
    }
    services.push(service.to_owned());
    services.len() as u64
}

fn push_chrome_span(
    span: &SpanData,
    trace: Option<&str>,
    pid: u64,
    tid: u64,
    services: &mut Vec<String>,
    events: &mut Vec<String>,
) {
    // a stitched subtree carries a `service` attr and moves to that pid
    let pid = span
        .attrs
        .iter()
        .find(|(k, _)| k == "service")
        .map_or(pid, |(_, s)| service_pid(services, s));
    let mut event = String::new();
    event.push_str("{\"name\":");
    write_json_string(&mut event, &span.name);
    event.push_str(",\"cat\":\"span\",\"ph\":\"X\",\"ts\":");
    event.push_str(&span.start_micros.to_string());
    event.push_str(",\"dur\":");
    event.push_str(&span.duration_micros().to_string());
    event.push_str(",\"pid\":");
    event.push_str(&pid.to_string());
    event.push_str(",\"tid\":");
    event.push_str(&tid.to_string());
    event.push_str(",\"args\":{");
    let mut first = true;
    if let Some(trace) = trace {
        event.push_str("\"trace\":");
        write_json_string(&mut event, trace);
        first = false;
    }
    for (key, value) in &span.attrs {
        if !first {
            event.push(',');
        }
        write_json_string(&mut event, key);
        event.push(':');
        write_json_string(&mut event, value);
        first = false;
    }
    event.push_str("}}");
    events.push(event);
    for child in &span.children {
        push_chrome_span(child, None, pid, tid, services, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn scoped_guards_record_ordered_disjoint_spans() {
        let mut builder = TraceBuilder::start();
        {
            let mut parse = builder.scoped("parse");
            parse.attr("bytes", "12");
        }
        {
            let _evaluate = builder.scoped("evaluate");
        }
        let root = builder.finish("request", attrs(&[("path", "/evaluate")]));
        assert_eq!(root.name, "request");
        assert_eq!(root.start_micros, 0);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "parse");
        assert_eq!(root.children[0].attrs, attrs(&[("bytes", "12")]));
        assert_eq!(root.children[1].name, "evaluate");
        // children are disjoint and inside the root
        assert!(root.children[0].end_micros <= root.children[1].start_micros);
        assert!(root.children[1].end_micros <= root.end_micros);
        assert!(root.leaf_duration_sum() <= root.duration_micros());
    }

    #[test]
    fn span_json_round_trips_byte_identically() {
        let mut root = SpanData::leaf("request", 0, 420);
        root.attrs = attrs(&[("path", "/evaluate?k=3"), ("status", "200")]);
        let mut wait = SpanData::leaf("backend_wait", 10, 400);
        wait.attrs = attrs(&[("backend", "backend-0")]);
        wait.children.push(SpanData::leaf("compile", 20, 100));
        root.children.push(SpanData::leaf("parse", 1, 9));
        root.children.push(wait);
        let text = root.to_json();
        let value = serde_json::from_str(&text).expect("span JSON parses");
        let parsed = SpanData::from_json(&value).expect("span schema");
        assert_eq!(parsed, root);
        assert_eq!(parsed.to_json(), text, "render → parse → render is stable");
    }

    #[test]
    fn span_json_escapes_and_rejects_bad_schemas() {
        let mut span = SpanData::leaf("weird \"name\"\n", 0, 1);
        span.attrs = attrs(&[("k\\e\ty", "v")]);
        let text = span.to_json();
        let value = serde_json::from_str(&text).expect("escaped JSON parses");
        assert_eq!(SpanData::from_json(&value).expect("round trip"), span);

        for bad in [
            "{\"start_micros\":0}",
            "{\"name\":\"x\",\"start_micros\":-1,\"end_micros\":0,\"attrs\":{},\"children\":[]}",
            "{\"name\":\"x\",\"start_micros\":0,\"end_micros\":1,\"attrs\":{},\"children\":{}}",
            "{\"name\":\"x\",\"start_micros\":0,\"end_micros\":1,\"attrs\":{\"a\":1},\"children\":[]}",
        ] {
            let value = serde_json::from_str(bad).expect("valid JSON");
            assert!(SpanData::from_json(&value).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn rebase_shifts_the_whole_subtree() {
        let mut root = SpanData::leaf("request", 0, 100);
        root.children.push(SpanData::leaf("evaluate", 5, 95));
        root.rebase(1000);
        assert_eq!(root.start_micros, 1000);
        assert_eq!(root.end_micros, 1100);
        assert_eq!(root.children[0].start_micros, 1005);
        assert_eq!(root.duration_micros(), 100);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest_first() {
        let recorder = TraceRecorder::with_capacity(4, 1);
        for i in 0..10u64 {
            recorder.store(CompletedTrace {
                key: i,
                trace: format!("{i:016x}"),
                root: SpanData::leaf("request", 0, i),
            });
        }
        assert_eq!(recorder.stored(), 4);
        assert_eq!(recorder.dropped_total(), 6);
        // the oldest six are gone, the newest four remain
        for i in 0..6 {
            assert!(recorder.get(i).is_none(), "trace {i} should be evicted");
        }
        for i in 6..10 {
            assert_eq!(recorder.get(i).map(|t| t.key), Some(i));
        }
        // newest-first listing
        assert_eq!(
            recorder.trace_ids(),
            (6..10u64)
                .rev()
                .map(|i| format!("{i:016x}"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn repeated_keys_return_the_newest_trace() {
        let recorder = TraceRecorder::with_capacity(4, 2);
        for end in [10, 20] {
            recorder.store(CompletedTrace {
                key: 7,
                trace: "0000000000000007".to_owned(),
                root: SpanData::leaf("request", 0, end),
            });
        }
        assert_eq!(recorder.get(7).map(|t| t.root.end_micros), Some(20));
    }

    #[test]
    fn sampling_is_deterministic_and_counter_driven() {
        let recorder = TraceRecorder::new();
        recorder.set_sample_one_in(4);
        let drawn: Vec<bool> = (0..256).map(|_| recorder.sample_decision()).collect();
        let expected: Vec<bool> = (0..256u64)
            .map(|c| splitmix64(c).is_multiple_of(4))
            .collect();
        assert_eq!(drawn, expected);
        let kept = drawn.iter().filter(|&&k| k).count();
        assert!(kept > 0 && kept < 256, "1-in-4 keeps some but not all");

        // rate <= 1 keeps everything and leaves the counter untouched
        let always = TraceRecorder::new();
        always.set_sample_one_in(1);
        assert!((0..64).all(|_| always.sample_decision()));
        always.set_sample_one_in(0);
        assert!((0..64).all(|_| always.sample_decision()));
    }

    #[test]
    fn keys_parse_hex_and_hash_everything_else() {
        assert_eq!(TraceRecorder::key_for("00000000deadbeef"), 0xdead_beef);
        assert_eq!(TraceRecorder::key_for("ff"), 0xff);
        let odd = TraceRecorder::key_for("not-hex-at-all");
        assert_eq!(odd, stable_hash64(b"not-hex-at-all"));
        assert_eq!(
            TraceRecorder::key_for(""),
            stable_hash64(b""),
            "empty ids hash rather than parse"
        );
    }

    #[test]
    fn chrome_export_emits_complete_events_per_span() {
        let mut root = SpanData::leaf("request", 0, 100);
        let mut wait = SpanData::leaf("backend_wait", 10, 90);
        let mut backend_root = SpanData::leaf("request", 12, 88);
        backend_root.attrs = attrs(&[("service", "raysearchd")]);
        wait.children.push(backend_root);
        root.children.push(wait);

        let doc = chrome_trace_json([("00000000deadbeef", "raysearch_router", &root)]);
        let value: Value = serde_json::from_str(&doc).expect("catapult JSON parses");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 3 spans + 2 process_name metadata events
        assert_eq!(events.len(), 5);
        for event in events {
            for field in ["ph", "ts", "pid", "tid", "name"] {
                assert!(
                    event.get(field).is_some(),
                    "event missing {field}: {event:?}"
                );
            }
        }
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(span_events.len(), 3);
        // the stitched backend subtree lands in its own pid
        let pids: Vec<u64> = span_events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Value::as_u64))
            .collect();
        assert_eq!(pids, vec![1, 1, 2]);
        // the root event carries the trace id
        assert_eq!(
            span_events[0]
                .get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Value::as_str),
            Some("00000000deadbeef")
        );
    }
}
