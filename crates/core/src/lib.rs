//! Public facade of the `raysearch` workspace: problem specifications,
//! exact competitive-ratio evaluation, tightness verdicts and parallel
//! parameter sweeps.
//!
//! This crate glues the substrates together into the API a user of the
//! reproduction actually touches:
//!
//! * [`problem`] — `LineProblem` / `RayProblem`: instance parameters plus
//!   an evaluation horizon;
//! * [`eval`] — the exact evaluator: computes
//!   `sup_x τ(x)/|x|` for a concrete fleet *symbolically* over
//!   breakpoints (no sampling), against the worst-case crash adversary;
//! * [`verdict`] — ties theory to measurement: the closed-form `Λ(q/k)`,
//!   the measured ratio of the optimal strategy, and the covering
//!   falsification just below the bound;
//! * [`compiled`] — the compilation layer: an arena-backed
//!   [`CompiledFleet`] artifact keyed by fleet geometry ([`FleetKey`])
//!   and a sharded memo ([`CompileMemo`]) so evaluations, verdicts,
//!   Monte-Carlo tables and campaign cells sharing geometry compile
//!   once;
//! * [`canon`] — canonical `f64` cache keys ([`CanonF64`]: no `NaN`, no
//!   `-0.0`) so a memoizing serving layer can key on instance parameters,
//!   plus the pinned cross-process hash ([`stable_hash64`]) consistent-hash
//!   routers and replay harnesses agree on;
//! * [`sweep`] — a small work-stealing parallel runner (std scoped
//!   threads) used by the benchmark harness for parameter sweeps;
//! * [`campaign`] — the campaign engine: declarative parameter grids
//!   ([`campaign::ParamGrid`]), a sharded deterministic-order runner
//!   ([`campaign::Campaign`]) and text/JSON reports
//!   ([`campaign::Report`]) — the machinery behind the E1–E10
//!   experiment suite in `raysearch-bench`;
//! * [`telemetry`] — the measurement core shared by the serving tier and
//!   the load harnesses: lock-free power-of-two latency histograms
//!   ([`LatencyHistogram`]), mergeable plain-data snapshots with
//!   integer-only percentile reads ([`HistogramSnapshot`]), and the
//!   [`splitmix64`] mixer trace ids are minted from;
//! * [`trace`] — hierarchical request tracing: per-request span trees
//!   ([`SpanData`]) captured through scoped guards ([`trace::ScopedSpan`]),
//!   a lock-sharded bounded ring of completed traces keyed by the 64-bit
//!   trace id ([`TraceRecorder`], deterministic SplitMix64 1-in-N
//!   sampling), and Chrome trace-event export
//!   ([`trace::chrome_trace_json`]).
//!
//! # Example: Theorem 1 tightness for (k, f) = (3, 1)
//!
//! ```
//! use raysearch_core::verdict::verify_tightness;
//!
//! let report = verify_tightness(2, 3, 1, 1e4, 1e-3)?;
//! // the measured ratio of the optimal strategy matches Λ(ρ)...
//! assert!((report.measured_upper - report.theory).abs() < 1e-2);
//! // ...and coverage provably fails just below it
//! assert!(report.falsified_below);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod campaign;
pub mod canon;
pub mod compiled;
pub mod eval;
pub mod problem;
pub mod sweep;
pub mod telemetry;
pub mod trace;
pub mod verdict;

pub use campaign::{Campaign, CampaignRun, Cell, ParamGrid, ParamValue, Report};
pub use canon::{stable_hash64, stable_hash64_parts, CanonF64, StableHasher};
pub use compiled::{
    CompileCache, CompileMemo, CompileStats, CompiledFleet, FleetBuilder, FleetKey, NoCache,
};
pub use error::CoreError;
pub use eval::{
    compile_first_visit_pieces, evaluate_optimal, evaluate_optimal_cached, EvalReport,
    FirstVisitPiece, LineEvaluator, RayEvaluator, WorstTarget,
};
pub use problem::{LineProblem, RayProblem};
pub use sweep::{par_map, par_map_threads};
pub use telemetry::{splitmix64, HistogramSnapshot, LatencyHistogram};
pub use trace::{CompletedTrace, SpanData, TraceBuilder, TraceRecorder};
pub use verdict::{verify_tightness, verify_tightness_cached, TightnessReport};
