use std::fmt;

use raysearch_bounds::BoundsError;
use raysearch_cover::CoverError;
use raysearch_faults::FaultError;
use raysearch_sim::SimError;
use raysearch_strategies::StrategyError;

/// Error raised by the facade: either invalid facade-level input, or a
/// wrapped error from one of the substrate crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A facade-level parameter was invalid.
    InvalidInput {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An evaluation horizon that cannot be padded to a finite fleet:
    /// the evaluator extends plans to `4×` the horizon (and baseline
    /// tours walk to twice that), so values above `f64::MAX / 8` (or
    /// non-finite ones) would silently overflow to `inf` before any
    /// range check.
    HorizonOverflow {
        /// The offending horizon.
        horizon: f64,
    },
    /// The fleet does not cover some target within the horizon, so the
    /// competitive ratio is unbounded.
    Uncovered {
        /// A witness target that fewer than `f+1` robots visit.
        witness: f64,
        /// The ray (or side: 0 = positive, 1 = negative) of the witness.
        ray: usize,
    },
    /// Simulation substrate error.
    Sim(SimError),
    /// Strategy construction error.
    Strategy(StrategyError),
    /// Bound computation error.
    Bounds(BoundsError),
    /// Covering machinery error.
    Cover(CoverError),
    /// Fault model error.
    Fault(FaultError),
}

impl CoreError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        CoreError::InvalidInput {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            CoreError::HorizonOverflow { horizon } => write!(
                f,
                "invalid horizon {horizon:e}: must be finite and at most f64::MAX/8 \
                 (fleets are padded to 4x the horizon, baseline tours to twice that)"
            ),
            CoreError::Uncovered { witness, ray } => write!(
                f,
                "target at distance {witness} on ray {ray} is never confirmed: ratio unbounded"
            ),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Strategy(e) => write!(f, "strategy error: {e}"),
            CoreError::Bounds(e) => write!(f, "bounds error: {e}"),
            CoreError::Cover(e) => write!(f, "cover error: {e}"),
            CoreError::Fault(e) => write!(f, "fault error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Strategy(e) => Some(e),
            CoreError::Bounds(e) => Some(e),
            CoreError::Cover(e) => Some(e),
            CoreError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<StrategyError> for CoreError {
    fn from(e: StrategyError) -> Self {
        CoreError::Strategy(e)
    }
}

impl From<BoundsError> for CoreError {
    fn from(e: BoundsError) -> Self {
        CoreError::Bounds(e)
    }
}

impl From<CoverError> for CoreError {
    fn from(e: CoverError) -> Self {
        CoreError::Cover(e)
    }
}

impl From<FaultError> for CoreError {
    fn from(e: FaultError) -> Self {
        CoreError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: CoreError = SimError::InvalidDistance { value: -2.0 }.into();
        assert!(e.to_string().contains("simulation error"));
        assert!(e.source().is_some());
        let e = CoreError::Uncovered {
            witness: 3.0,
            ray: 1,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_none());
    }
}
