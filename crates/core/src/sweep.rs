//! A small order-preserving parallel map for parameter sweeps.
//!
//! The experiment harness evaluates hundreds of `(m, k, f, α, λ, …)`
//! combinations; each is independent, so a work-stealing scoped-thread
//! pool is all that is needed. Built on `std::thread::scope` (no
//! `'static` bound on the work items) with a `parking_lot` mutex guarding
//! the result slots.
//!
//! [`par_map`] picks a worker count automatically; [`par_map_threads`]
//! takes an explicit one, which the [campaign engine](crate::campaign)
//! uses to honour a `--threads` flag (and `Some(1)` to force a fully
//! sequential, same-thread run).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// The worker count [`par_map`] uses by default: the machine's available
/// parallelism, or `1` when it cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, preserving order.
///
/// Spawns up to `min(items.len(), available_parallelism)` workers that
/// pull indices from a shared counter.
///
/// # Panics
///
/// If `f` panics on some item, the original panic payload is re-raised
/// on the calling thread once the workers have stopped (see
/// [`par_map_threads`]).
///
/// # Example
///
/// ```
/// let squares = raysearch_core::par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_threads(items, None, f)
}

/// [`par_map`] with an explicit worker count.
///
/// `threads = None` selects [`default_parallelism`]; `Some(1)` runs
/// sequentially on the calling thread (no pool, fully deterministic
/// scheduling); larger counts are clamped to the number of items. The
/// output order is the input order regardless of the worker count.
///
/// # Panics
///
/// If `f` panics, the remaining work is abandoned (workers stop claiming
/// new items) and the panic is re-raised on the calling thread with its
/// *original payload* — `panic!("bad cell {i}")` inside `f` surfaces as
/// that message, not as a generic poisoned-slot error. When several items
/// panic concurrently, the lowest-indexed payload observed wins.
///
/// # Example
///
/// ```
/// let doubled = raysearch_core::par_map_threads(&[1, 2, 3], Some(2), |&x| 2 * x);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map_threads<T: Sync, U: Send>(
    items: &[T],
    threads: Option<usize>,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.unwrap_or_else(default_parallelism).clamp(1, n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // First panic payload by item index, so propagation is as
    // deterministic as the scheduling allows.
    let panicked: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(value) => *slots[i].lock() = Some(value),
                    Err(payload) => {
                        let mut first = panicked.lock();
                        if first.as_ref().is_none_or(|(j, _)| i < *j) {
                            *first = Some((i, payload));
                        }
                        drop(first);
                        // Fail fast: park the counter past the end so no
                        // worker claims further items.
                        next.store(n, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some((_, payload)) = panicked.into_inner() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker filled every non-panicking slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| 2 * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<usize> = (0..257).collect();
        let sequential = par_map_threads(&items, Some(1), |&x| x * x + 1);
        for threads in [2, 3, 8, 64] {
            let parallel = par_map_threads(&items, Some(threads), |&x| x * x + 1);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        // None = auto matches too
        assert_eq!(par_map_threads(&items, None, |&x| x * x + 1), sequential);
    }

    #[test]
    fn borrows_environment() {
        let offset = 7usize;
        let items = vec![1usize, 2, 3];
        let out = par_map(&items, |&x| x + offset);
        assert_eq!(out, vec![8, 9, 10]);
    }

    #[test]
    fn handles_non_trivial_work() {
        let items: Vec<u32> = (1..64).collect();
        let out = par_map(&items, |&k| {
            raysearch_bounds::mu_threshold(k, 2 * k).unwrap()
        });
        // all equal by scale invariance
        for v in &out {
            assert!((v - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn propagates_worker_panic_payload() {
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_threads(&items, Some(4), |&x| {
                if x == 17 {
                    panic!("boom at item {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("formatted panic payload is a String");
        assert!(msg.contains("boom at item 17"), "payload lost: {msg}");
    }

    #[test]
    fn sequential_panic_propagates_too() {
        let items = vec![1u32, 2, 3];
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_threads(&items, Some(1), |&x| {
                if x == 2 {
                    panic!("sequential boom");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&'static str>().copied();
        assert_eq!(msg, Some("sequential boom"));
    }
}
