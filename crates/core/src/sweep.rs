//! A small order-preserving parallel map for parameter sweeps.
//!
//! The experiment harness evaluates hundreds of `(m, k, f, α, λ, …)`
//! combinations; each is independent, so a work-stealing scoped-thread
//! pool is all that is needed. Built on `std::thread::scope` (no
//! `'static` bound on the work items) with a `parking_lot` mutex guarding
//! the result slots.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item, in parallel, preserving order.
///
/// Spawns up to `min(items.len(), available_parallelism)` workers that
/// pull indices from a shared counter. Panics in `f` propagate.
///
/// # Example
///
/// ```
/// let squares = raysearch_core::par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(&items[i]);
                *slots[i].lock() = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot filled by worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| 2 * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn borrows_environment() {
        let offset = 7usize;
        let items = vec![1usize, 2, 3];
        let out = par_map(&items, |&x| x + offset);
        assert_eq!(out, vec![8, 9, 10]);
    }

    #[test]
    fn handles_non_trivial_work() {
        let items: Vec<u32> = (1..64).collect();
        let out = par_map(&items, |&k| {
            raysearch_bounds::mu_threshold(k, 2 * k).unwrap()
        });
        // all equal by scale invariance
        for v in &out {
            assert!((v - 4.0).abs() < 1e-9);
        }
    }
}
