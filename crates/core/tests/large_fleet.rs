//! Regression suite for the log-domain numeric core: the fleet sizes
//! that overflowed the linear pipeline to an error (`k ≳ 139` at deep
//! horizons) must now evaluate to finite ratios in closed-form
//! agreement, monotonically in `k`, with the trivial regime and the
//! horizon-overflow guard pinned alongside.
//!
//! Horizons here are sized for debug-build test budgets; the full
//! `horizon = 1e12` sweep up to `k = 4096` runs in release via the E12
//! campaign and its CI smoke job.

use raysearch_bounds::a_rays;
use raysearch_core::{evaluate_optimal, CoreError};

/// The formerly-overflowing fleet sizes, each paired with the
/// near-majority faulty count that keeps the line instance searchable
/// (`f = ⌊k/2⌋`, the closest approach to `η → 1⁺`) and a horizon deep
/// enough for sub-`1e-6` closed-form agreement.
const SWEEP: &[(u32, u32, f64)] = &[
    (139, 69, 1e8),
    (256, 128, 1e8),
    (512, 256, 1e8),
    (1024, 512, 1e8),
    (2048, 1024, 1e7),
    (4096, 2048, 1e7),
];

#[test]
fn formerly_overflowing_fleets_are_finite_and_closed_form_consistent() {
    for &(k, f, horizon) in SWEEP {
        let report = evaluate_optimal(2, k, f, horizon)
            .unwrap_or_else(|e| panic!("(2,{k},{f}) failed to evaluate: {e}"));
        let theory = a_rays(2, k, f).expect("searchable instance");
        assert!(
            report.is_covered(),
            "(2,{k},{f}) left a target uncovered: {:?}",
            report.uncovered
        );
        assert!(
            report.ratio.is_finite(),
            "(2,{k},{f}) ratio overflowed: {}",
            report.ratio
        );
        // the exact sup approaches Λ from below; never exceeds it
        assert!(
            report.ratio <= theory * (1.0 + 1e-9),
            "(2,{k},{f}) measured {} above Λ {theory}",
            report.ratio
        );
        let rel = (report.ratio - theory).abs() / theory;
        assert!(
            rel <= 1e-6,
            "(2,{k},{f}): measured {} vs Λ {theory}, relative error {rel:e}",
            report.ratio
        );
    }
}

#[test]
fn ratio_is_monotone_in_k_along_the_near_majority_diagonal() {
    // along f = k/2 (even k), η = (k+2)/k strictly decreases in k, so
    // both the closed form and the measured exact ratio must strictly
    // decrease toward Λ(1⁺) = 3 across the formerly-overflowing range
    let chain: Vec<(f64, f64)> = SWEEP
        .iter()
        .filter(|(k, _, _)| k % 2 == 0)
        .map(|&(k, f, _)| {
            // a fixed horizon across the chain so measured values are
            // comparable like-for-like
            let measured = evaluate_optimal(2, k, f, 1e7).expect("searchable").ratio;
            let theory = a_rays(2, k, f).expect("searchable");
            (measured, theory)
        })
        .collect();
    assert!(chain.len() >= 4);
    for w in chain.windows(2) {
        assert!(
            w[1].1 < w[0].1,
            "closed form not decreasing: {} !< {}",
            w[1].1,
            w[0].1
        );
        assert!(
            w[1].0 < w[0].0,
            "measured ratio not decreasing: {} !< {}",
            w[1].0,
            w[0].0
        );
    }
    // and the whole chain sits in (3, Λ(129/128)]
    for (measured, _) in &chain {
        assert!(*measured > 3.0 && *measured < 3.2);
    }
}

#[test]
fn trivial_regime_acceptance_instance_serves_ratio_one() {
    // the acceptance instance: k = 512, f = 1 on the line is deep in
    // the trivial regime (k ≥ 2(f+1)); the evaluator must agree with
    // the closed-form regime ratio of exactly 1, at full depth
    let report = evaluate_optimal(2, 512, 1, 1e12).expect("trivial instances evaluate");
    assert!(report.is_covered());
    assert!(
        (report.ratio - 1.0).abs() < 1e-6,
        "trivial-regime ratio {} != 1",
        report.ratio
    );
    let closed = raysearch_bounds::RayInstance::new(2, 512, 1)
        .unwrap()
        .regime()
        .ratio()
        .expect("trivial regime has a ratio");
    assert!((report.ratio - closed).abs() / closed <= 1e-6);
}

#[test]
fn oversized_horizons_fail_with_the_typed_error_not_inf() {
    // above f64::MAX / 8 the old pipeline silently multiplied into inf
    // (4x fleet pad, 2x more inside trivial-regime baseline tours); now
    // the overflow is caught before any padding multiplication
    let err = evaluate_optimal(2, 139, 69, f64::MAX / 2.0).unwrap_err();
    assert!(
        matches!(err, CoreError::HorizonOverflow { horizon } if horizon == f64::MAX / 2.0),
        "expected HorizonOverflow, got {err:?}"
    );
    // the guard is about representability, not size per se: the largest
    // paddable horizon proceeds past it
    assert!(!matches!(
        evaluate_optimal(2, 139, 69, f64::MAX / 8.0),
        Err(CoreError::HorizonOverflow { .. })
    ));
    // a genuinely deep horizon still evaluates to a finite ratio at the
    // closed form — depth alone is not an error
    let deep = evaluate_optimal(2, 139, 69, 1e300).expect("deep horizon evaluates");
    let theory = a_rays(2, 139, 69).unwrap();
    assert!(deep.ratio.is_finite());
    assert!((deep.ratio - theory).abs() / theory < 1e-6);
    // the trivial regime honors the same guard boundary (its baseline
    // tours walk out to 8x the horizon)
    assert!(matches!(
        evaluate_optimal(2, 512, 1, f64::MAX / 4.0),
        Err(CoreError::HorizonOverflow { .. })
    ));
    assert!(
        (evaluate_optimal(2, 512, 1, f64::MAX / 8.0).unwrap().ratio - 1.0).abs() < 1e-12,
        "trivial regime must evaluate right up to the guard"
    );
}

#[test]
fn saturating_depths_error_instead_of_returning_inf() {
    // within a factor alpha^(k*m) of f64::MAX, a first-visit constant
    // inside the range itself exceeds linear f64; that must surface as
    // a typed error, never as Ok { ratio: inf }
    for (m, k, f) in [(3u32, 200u32, 100u32), (5, 300, 80)] {
        match evaluate_optimal(m, k, f, f64::MAX / 8.0) {
            Ok(report) => assert!(
                report.ratio.is_finite(),
                "({m},{k},{f}): Ok must imply a finite ratio, got {}",
                report.ratio
            ),
            Err(CoreError::InvalidInput { reason }) => assert!(
                reason.contains("overflows"),
                "({m},{k},{f}): unexpected reason {reason}"
            ),
            Err(other) => panic!("({m},{k},{f}): unexpected error {other}"),
        }
    }
}
