//! Property suite for the compilation layer: over randomized grids of
//! `(m, k, f, horizon)` cells — searchable and trivial, with forced
//! geometry duplicates — a campaign evaluated through one shared
//! [`CompileMemo`] must produce rows bit-identical to per-cell fresh
//! compiles, at every thread count, while the memo's miss count lands
//! exactly on the number of distinct fleet geometries.
//!
//! The generator is a self-contained SplitMix64, so every run of the
//! suite sees the same grids; failures reproduce from the seed alone.

use std::collections::HashSet;
use std::sync::Arc;

use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_core::{evaluate_optimal, evaluate_optimal_cached, CompileMemo};

/// The classic SplitMix64 sequence (Steele et al.) — the same generator
/// the Monte-Carlo crate builds its counter-based streams from.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One evaluation cell: `(m, k, f, horizon)`.
type Instance = (u32, u32, u32, f64);

/// A randomized cell list mixing regimes and horizons, with a
/// trivial-regime family sharing one zone geometry across `f` and a
/// tail of exact duplicates — the sharing opportunities the memo must
/// exploit without changing a single bit of output.
fn random_cells(seed: u64) -> Vec<Instance> {
    let mut rng = SplitMix64(seed);
    let horizons = [1e4, 1e5, 1e6];
    let mut cells: Vec<Instance> = Vec::new();
    for _ in 0..10 {
        let m = 2 + rng.below(2) as u32;
        let k = 2 + rng.below(12) as u32;
        let f = rng.below(u64::from(k)) as u32;
        let horizon = horizons[rng.below(3) as usize];
        cells.push((m, k, f, horizon));
    }
    // trivial regime (k ≥ m(f+1)): the zone fleet is f-free, so these
    // three cells must share ONE compiled artifact
    for f in [1, 2, 3] {
        cells.push((2, 64, f, 1e5));
    }
    // exact duplicates: guaranteed searchable-regime sharing too
    let n = cells.len() as u64;
    for _ in 0..6 {
        let copy = cells[rng.below(n) as usize];
        cells.push(copy);
    }
    cells
}

/// The number of distinct fleet geometries in `cells`: trivial-regime
/// cells key on `(m, k, horizon)` (their zone fleet ignores `f`),
/// searchable cells on the full `(m, k, f, horizon)` — mirroring
/// `FleetKey::Zone` vs `FleetKey::Cyclic` without peeking at either.
fn distinct_geometries(cells: &[Instance]) -> usize {
    let mut keys: HashSet<(u32, u32, u32, u64)> = HashSet::new();
    for &(m, k, f, horizon) in cells {
        let f_key = if k >= m * (f + 1) { u32::MAX } else { f };
        keys.insert((m, k, f_key, horizon.to_bits()));
    }
    keys.len()
}

/// One row of the test campaign, reduced to exactly the bits the
/// determinism contract covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
struct RowBits {
    ratio: u64,
    worst: Option<(usize, u64, u64)>,
    breakpoints: usize,
}

/// Runs all `cells` through one shared memo at `threads` workers,
/// returning the rows (in grid order) and the memo's final counters.
fn run_shared(cells: &[Instance], threads: usize) -> (Vec<RowBits>, u64, u64) {
    let memo = Arc::new(CompileMemo::new());
    let cell_memo = Arc::clone(&memo);
    let owned: Vec<Instance> = cells.to_vec();
    let grid = ParamGrid::new().axis_u32("i", 0..owned.len() as u32);
    let run = Campaign::new("memo-prop", "shared-memo determinism", grid, move |cell| {
        let (m, k, f, horizon) = owned[cell.get_u32("i") as usize];
        let report = evaluate_optimal_cached(&cell_memo, m, k, f, horizon)
            .unwrap_or_else(|e| panic!("({m},{k},{f}) at {horizon}: {e}"));
        RowBits {
            ratio: report.ratio.to_bits(),
            worst: report
                .worst
                .map(|w| (w.ray, w.x.to_bits(), w.detection_limit.to_bits())),
            breakpoints: report.num_breakpoints,
        }
    })
    .with_compile_memo(Arc::clone(&memo))
    .threads(Some(threads))
    .run();
    let stats = run.compile.expect("memo attached");
    (run.rows().copied().collect(), stats.hits, stats.misses)
}

#[test]
fn shared_memo_campaigns_match_fresh_compiles_at_every_thread_count() {
    for seed in [1707, 5077, 2018] {
        let cells = random_cells(seed);
        // the ground truth: every cell freshly compiled, no cache at all
        let fresh: Vec<RowBits> = cells
            .iter()
            .map(|&(m, k, f, horizon)| {
                let report = evaluate_optimal(m, k, f, horizon)
                    .unwrap_or_else(|e| panic!("({m},{k},{f}) at {horizon}: {e}"));
                RowBits {
                    ratio: report.ratio.to_bits(),
                    worst: report
                        .worst
                        .map(|w| (w.ray, w.x.to_bits(), w.detection_limit.to_bits())),
                    breakpoints: report.num_breakpoints,
                }
            })
            .collect();
        let expected_misses = distinct_geometries(&cells) as u64;
        assert!(
            expected_misses < cells.len() as u64,
            "seed {seed}: the grid must contain shared geometry"
        );
        for threads in [1, 2, 8] {
            let (rows, hits, misses) = run_shared(&cells, threads);
            assert_eq!(
                rows, fresh,
                "seed {seed}, {threads} threads: shared-memo rows diverge from fresh compiles"
            );
            assert_eq!(
                misses, expected_misses,
                "seed {seed}, {threads} threads: one compile per distinct geometry"
            );
            assert_eq!(
                hits + misses,
                cells.len() as u64,
                "seed {seed}, {threads} threads: every cell goes through the memo"
            );
            assert!(
                hits > 0,
                "seed {seed}, {threads} threads: no reuse happened"
            );
        }
    }
}
