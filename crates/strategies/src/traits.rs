//! The strategy traits.
//!
//! Both traits are object-safe so heterogeneous strategy collections can be
//! benchmarked side by side (`Vec<Box<dyn LineStrategy>>`).

use raysearch_sim::{LineItinerary, LineTrajectory, RayTrajectory, RobotId, TourItinerary};

use crate::StrategyError;

/// A deterministic strategy for `k` robots searching the real line.
///
/// # Horizon contract
///
/// `itinerary(robot, horizon)` must return a finite plan that *behaves like
/// the infinite strategy* for every target with `1 ≤ |x| ≤ horizon`: all
/// visits to such targets that the infinite strategy would ever make in
/// finite time must be present, far enough past `horizon` that the
/// `(f+1)`-st distinct-robot visit time of any such target is final.
/// Implementations typically extend the plan until each side has been
/// swept past `horizon` a fleet-dependent number of times.
pub trait LineStrategy {
    /// Short human-readable description (used in experiment tables).
    fn name(&self) -> String;

    /// Fleet size `k`.
    fn num_robots(&self) -> usize;

    /// The finite plan of one robot, valid for targets up to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidHorizon`] for a non-finite or
    /// sub-unit horizon, and implementation-specific errors otherwise.
    fn itinerary(&self, robot: RobotId, horizon: f64) -> Result<LineItinerary, StrategyError>;

    /// Plans for the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates the first failing robot's error.
    fn fleet_itineraries(&self, horizon: f64) -> Result<Vec<LineItinerary>, StrategyError> {
        (0..self.num_robots())
            .map(|r| self.itinerary(RobotId(r), horizon))
            .collect()
    }

    /// Compiled trajectories for the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates [`LineStrategy::fleet_itineraries`] errors.
    fn fleet_trajectories(&self, horizon: f64) -> Result<Vec<LineTrajectory>, StrategyError> {
        Ok(self
            .fleet_itineraries(horizon)?
            .iter()
            .map(LineTrajectory::compile)
            .collect())
    }
}

/// A deterministic strategy for `k` robots searching `m` rays.
///
/// The same horizon contract as [`LineStrategy`] applies, per ray.
pub trait RayStrategy {
    /// Short human-readable description (used in experiment tables).
    fn name(&self) -> String;

    /// Number of rays `m`.
    fn num_rays(&self) -> usize;

    /// Fleet size `k`.
    fn num_robots(&self) -> usize;

    /// The finite tour of one robot, valid for targets up to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidHorizon`] for a non-finite or
    /// sub-unit horizon, and implementation-specific errors otherwise.
    fn tour(&self, robot: RobotId, horizon: f64) -> Result<TourItinerary, StrategyError>;

    /// Tours for the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates the first failing robot's error.
    fn fleet_tours(&self, horizon: f64) -> Result<Vec<TourItinerary>, StrategyError> {
        (0..self.num_robots())
            .map(|r| self.tour(RobotId(r), horizon))
            .collect()
    }

    /// Compiled trajectories for the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates [`RayStrategy::fleet_tours`] errors.
    fn fleet_trajectories(&self, horizon: f64) -> Result<Vec<RayTrajectory>, StrategyError> {
        Ok(self
            .fleet_tours(horizon)?
            .iter()
            .map(RayTrajectory::compile)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_sim::Direction;

    /// A minimal strategy to exercise the default methods.
    struct OneRobotOut;

    impl LineStrategy for OneRobotOut {
        fn name(&self) -> String {
            "one-robot-out".to_owned()
        }
        fn num_robots(&self) -> usize {
            2
        }
        fn itinerary(&self, robot: RobotId, horizon: f64) -> Result<LineItinerary, StrategyError> {
            StrategyError::check_horizon(horizon)?;
            let dir = if robot.index() == 0 {
                Direction::Positive
            } else {
                Direction::Negative
            };
            Ok(LineItinerary::new(dir, vec![2.0 * horizon])?)
        }
    }

    #[test]
    fn default_fleet_methods() {
        let s = OneRobotOut;
        let its = s.fleet_itineraries(10.0).unwrap();
        assert_eq!(its.len(), 2);
        let trajs = s.fleet_trajectories(10.0).unwrap();
        assert_eq!(trajs.len(), 2);
        // robot 1 goes negative
        assert!(trajs[1].first_visit(-10.0).is_some());
        assert!(trajs[1].first_visit(10.0).is_none());
        // horizon validation propagates
        assert!(s.fleet_itineraries(0.0).is_err());
    }

    #[test]
    fn traits_are_object_safe() {
        let s: Box<dyn LineStrategy> = Box::new(OneRobotOut);
        assert_eq!(s.num_robots(), 2);
    }
}
