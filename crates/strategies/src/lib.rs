//! Search strategies for robot fleets on the line and on `m` rays.
//!
//! A *strategy* is a rule producing, for each robot of a fleet, a plan
//! ([`LineItinerary`](raysearch_sim::LineItinerary) or
//! [`TourItinerary`](raysearch_sim::TourItinerary)). Strategies here are
//! *horizon-parameterized*: the paper's strategies are infinite geometric
//! progressions, and [`LineStrategy::itinerary`] /
//! [`RayStrategy::tour`] materialize the finite prefix that fully
//! determines all detection times for targets up to a requested distance.
//!
//! The star of the crate is [`CyclicExponential`], the appendix strategy of
//! Kupavskii–Welzl (originally from Czyzowitz et al. PODC'16 for the line
//! and Bernstein–Finkelstein–Zilberstein IJCAI'03 for rays): robots tour the
//! rays cyclically with geometrically growing turning points
//! `α^(k·n + m·r)`, which at the optimal base `α* = (q/(q−k))^(1/k)`
//! achieves the tight competitive ratio `Λ(q/k)` of Theorems 1 and 6.
//!
//! Baselines ([`ReplicatedDoubling`], [`ZonePartition`]) and seeded random
//! strategies ([`RandomGeometric`], [`Perturbed`]) support the experiment
//! suite's comparisons and falsification tests.
//!
//! # Example
//!
//! ```
//! use raysearch_strategies::{CyclicExponential, RayStrategy};
//!
//! // 3 robots, 1 faulty, on 2 rays (the line): the PODC'16 strategy.
//! let strat = CyclicExponential::optimal(2, 3, 1)?;
//! let tours = strat.fleet_tours(100.0)?;
//! assert_eq!(tours.len(), 3);
//! // every excursion's turning point grows by alpha^k
//! let turns: Vec<f64> = tours[0].excursions().iter().map(|e| e.turn).collect();
//! for w in turns.windows(2) {
//!     assert!(w[1] > w[0]);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod baselines;
pub mod cow_path;
pub mod cyclic;
pub mod dedicated;
pub mod random;
pub mod traits;

pub use baselines::{ReplicatedDoubling, ZonePartition};
pub use cow_path::DoublingCowPath;
pub use cyclic::{CyclicExponential, CyclicExponentialLine};
pub use dedicated::DedicatedPlusSweeper;
pub use error::StrategyError;
pub use random::{Perturbed, RandomGeometric};
pub use traits::{LineStrategy, RayStrategy};
