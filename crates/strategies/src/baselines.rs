//! Baseline strategies the optimal construction is compared against.
//!
//! * [`ReplicatedDoubling`] — all `k` robots run the *same* doubling
//!   cow-path. Every point is visited by all robots simultaneously, so the
//!   fleet tolerates any `f < k` faults at ratio 9 — a surprisingly strong
//!   baseline that the optimal strategy only beats when `ρ < 2`.
//! * [`ZonePartition`] — robots are pinned to rays round-robin and walk
//!   straight out. Ratio 1 when `k ≥ m(f+1)` (the trivial regime), but
//!   *fails entirely* otherwise: some ray has at most `f` robots and the
//!   adversary hides the target there. This realizes the paper's regime
//!   boundary in executable form (experiment E2).

use raysearch_sim::{Direction, Excursion, LineItinerary, RayId, RobotId, TourItinerary};

use crate::{DoublingCowPath, LineStrategy, RayStrategy, StrategyError};

/// All `k` robots run identical doubling cow-paths.
///
/// Since the robots move in lock-step, the `(f+1)`-st *distinct-robot*
/// visit to any point coincides with the first visit, so the fleet is
/// 9-competitive for every `f < k`. It never beats 9, though — the optimal
/// strategy's advantage for `ρ < 2` is exactly what experiment E1's
/// baseline column shows.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{LineStrategy, ReplicatedDoubling};
///
/// let fleet = ReplicatedDoubling::new(3)?;
/// let its = fleet.fleet_itineraries(10.0)?;
/// assert_eq!(its.len(), 3);
/// assert_eq!(its[0], its[2]); // identical plans
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplicatedDoubling {
    k: u32,
    base: DoublingCowPath,
}

impl ReplicatedDoubling {
    /// Creates a replicated-doubling fleet of `k ≥ 1` robots.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] if `k = 0`.
    pub fn new(k: u32) -> Result<Self, StrategyError> {
        if k == 0 {
            return Err(StrategyError::invalid("need at least one robot"));
        }
        Ok(ReplicatedDoubling {
            k,
            base: DoublingCowPath::classic(),
        })
    }

    /// The worst-case ratio of the fleet (9, independent of `f < k`).
    pub fn theoretical_ratio(&self) -> f64 {
        self.base.theoretical_ratio()
    }
}

impl LineStrategy for ReplicatedDoubling {
    fn name(&self) -> String {
        format!("replicated-doubling(k={})", self.k)
    }

    fn num_robots(&self) -> usize {
        self.k as usize
    }

    fn itinerary(&self, robot: RobotId, horizon: f64) -> Result<LineItinerary, StrategyError> {
        if robot.index() >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {} out of range for k = {}",
                robot.index(),
                self.k
            )));
        }
        self.base.itinerary(RobotId(0), horizon)
    }
}

/// Robots pinned to rays round-robin, each walking straight out.
///
/// Robot `r` explores ray `r mod m` and nothing else. Every point on a ray
/// with `c` assigned robots is visited by exactly `c` distinct robots, at
/// time equal to its distance. Hence: ratio `1` when every ray has at
/// least `f+1` robots (`k ≥ m(f+1)`), and *unbounded* otherwise.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{RayStrategy, ZonePartition};
///
/// let z = ZonePartition::new(2, 4, 1)?; // k = m(f+1): trivial regime
/// assert!(z.covers_all_rays());
/// let z = ZonePartition::new(3, 4, 1)?; // 4 < 3·2: some ray undercovered
/// assert!(!z.covers_all_rays());
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ZonePartition {
    m: u32,
    k: u32,
    f: u32,
}

impl ZonePartition {
    /// Creates a zone partition of `k` robots over `m` rays with `f`
    /// faults to tolerate.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] if `m = 0` or `k = 0`.
    pub fn new(m: u32, k: u32, f: u32) -> Result<Self, StrategyError> {
        if m == 0 {
            return Err(StrategyError::invalid("need at least one ray"));
        }
        if k == 0 {
            return Err(StrategyError::invalid("need at least one robot"));
        }
        Ok(ZonePartition { m, k, f })
    }

    /// Number of robots assigned to `ray`.
    pub fn robots_on_ray(&self, ray: usize) -> usize {
        let (k, m) = (self.k as usize, self.m as usize);
        k / m + usize::from(ray < k % m)
    }

    /// Returns `true` if every ray has at least `f+1` robots — i.e. the
    /// partition actually tolerates `f` faults (ratio 1).
    pub fn covers_all_rays(&self) -> bool {
        (0..self.m as usize).all(|ray| self.robots_on_ray(ray) > self.f as usize)
    }
}

impl RayStrategy for ZonePartition {
    fn name(&self) -> String {
        format!("zone-partition(m={}, k={}, f={})", self.m, self.k, self.f)
    }

    fn num_rays(&self) -> usize {
        self.m as usize
    }

    fn num_robots(&self) -> usize {
        self.k as usize
    }

    fn tour(&self, robot: RobotId, horizon: f64) -> Result<TourItinerary, StrategyError> {
        StrategyError::check_horizon(horizon)?;
        if robot.index() >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {} out of range for k = {}",
                robot.index(),
                self.k
            )));
        }
        let ray = RayId::new_unvalidated(robot.index() % self.m as usize);
        // One excursion, straight out past the horizon; the robot never
        // comes back (the finite plan turns at 2·horizon, far enough that
        // the return leg is irrelevant for targets within the horizon).
        let excursion = Excursion::new(ray, 2.0 * horizon)?;
        Ok(TourItinerary::new(self.m as usize, vec![excursion])?)
    }
}

/// A two-sided straight-out fleet on the line: `f+1` robots to `+∞`,
/// `f+1` to `-∞` — the paper's witness that `k ≥ 2(f+1)` gives ratio 1.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{baselines::TwoWaySaturation, LineStrategy};
///
/// let s = TwoWaySaturation::new(4, 1)?;
/// let trajs = s.fleet_trajectories(50.0)?;
/// // robots 0,1 go positive; robots 2,3 negative.
/// assert!(trajs[0].first_visit(50.0).is_some());
/// assert!(trajs[3].first_visit(-50.0).is_some());
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TwoWaySaturation {
    k: u32,
    f: u32,
}

impl TwoWaySaturation {
    /// Creates the saturation fleet; requires `k ≥ 2(f+1)`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] if `k < 2(f+1)`.
    pub fn new(k: u32, f: u32) -> Result<Self, StrategyError> {
        if k < 2 * (f + 1) {
            return Err(StrategyError::invalid(format!(
                "two-way saturation needs k >= 2(f+1), got k={k}, f={f}"
            )));
        }
        Ok(TwoWaySaturation { k, f })
    }
}

impl LineStrategy for TwoWaySaturation {
    fn name(&self) -> String {
        format!("two-way-saturation(k={}, f={})", self.k, self.f)
    }

    fn num_robots(&self) -> usize {
        self.k as usize
    }

    fn itinerary(&self, robot: RobotId, horizon: f64) -> Result<LineItinerary, StrategyError> {
        StrategyError::check_horizon(horizon)?;
        if robot.index() >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {} out of range for k = {}",
                robot.index(),
                self.k
            )));
        }
        // First f+1 robots positive, next f+1 negative, any spare robots
        // alternate.
        let v = self.f as usize + 1;
        let dir = if robot.index() < v {
            Direction::Positive
        } else if robot.index() < 2 * v {
            Direction::Negative
        } else if robot.index().is_multiple_of(2) {
            Direction::Positive
        } else {
            Direction::Negative
        };
        Ok(LineItinerary::new(dir, vec![2.0 * horizon])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_sim::{LinePoint, VisitEngine};

    #[test]
    fn replicated_doubling_validation() {
        assert!(ReplicatedDoubling::new(0).is_err());
        let s = ReplicatedDoubling::new(3).unwrap();
        assert!(s.itinerary(RobotId(3), 10.0).is_err());
    }

    #[test]
    fn replicated_doubling_detects_at_first_visit_time() {
        let s = ReplicatedDoubling::new(3).unwrap();
        let engine = VisitEngine::new(s.fleet_trajectories(100.0).unwrap()).unwrap();
        let sched = engine.schedule(LinePoint::new(-5.0).unwrap());
        // with f = 2 faults the 3rd distinct visit still happens at the
        // first visit time because the robots are in lock-step
        let t1 = sched.nth_distinct_robot_visit(1).unwrap();
        let t3 = sched.nth_distinct_robot_visit(3).unwrap();
        assert_eq!(t1, t3);
    }

    #[test]
    fn zone_partition_counts() {
        let z = ZonePartition::new(3, 7, 1).unwrap();
        assert_eq!(z.robots_on_ray(0), 3);
        assert_eq!(z.robots_on_ray(1), 2);
        assert_eq!(z.robots_on_ray(2), 2);
        assert!(z.covers_all_rays()); // all rays have >= 2
        let z = ZonePartition::new(3, 5, 1).unwrap();
        assert!(!z.covers_all_rays()); // ray 2 has 1 < 2
    }

    #[test]
    fn zone_partition_ratio_one_when_saturated() {
        use raysearch_sim::{RayId, RayPoint};
        let z = ZonePartition::new(2, 4, 1).unwrap();
        let engine = VisitEngine::new(z.fleet_trajectories(50.0).unwrap()).unwrap();
        for (ray, d) in [(0usize, 7.0), (1, 29.0)] {
            let p = RayPoint::new(RayId::new(ray, 2).unwrap(), d).unwrap();
            let sched = engine.schedule(p);
            // 2 distinct robots at time exactly d: ratio 1
            let t = sched.nth_distinct_robot_visit(2).unwrap();
            assert!((t.as_f64() - d).abs() < 1e-12);
        }
    }

    #[test]
    fn zone_partition_fails_when_undersized() {
        use raysearch_sim::{RayId, RayPoint};
        let z = ZonePartition::new(3, 4, 1).unwrap(); // ray 2 has 1 robot
        let engine = VisitEngine::new(z.fleet_trajectories(50.0).unwrap()).unwrap();
        let p = RayPoint::new(RayId::new(2, 3).unwrap(), 5.0).unwrap();
        let sched = engine.schedule(p);
        assert!(sched.nth_distinct_robot_visit(2).is_none());
    }

    #[test]
    fn two_way_saturation_ratio_one() {
        let s = TwoWaySaturation::new(4, 1).unwrap();
        let engine = VisitEngine::new(s.fleet_trajectories(100.0).unwrap()).unwrap();
        for x in [1.0, -17.0, 99.0] {
            let sched = engine.schedule(LinePoint::new(x).unwrap());
            let t = sched.nth_distinct_robot_visit(2).unwrap();
            assert!((t.as_f64() - x.abs()).abs() < 1e-12, "not ratio 1 at {x}");
        }
    }

    #[test]
    fn two_way_saturation_validation() {
        assert!(TwoWaySaturation::new(3, 1).is_err());
        assert!(TwoWaySaturation::new(4, 1).is_ok());
        let s = TwoWaySaturation::new(4, 1).unwrap();
        assert!(s.itinerary(RobotId(4), 10.0).is_err());
    }
}
