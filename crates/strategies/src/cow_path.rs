//! The classic single-robot cow-path strategy.
//!
//! One robot alternates sides with geometrically growing turning points
//! `1, b, b², …`. At base `b = 2` this is the optimal 9-competitive
//! doubling strategy (Beck–Newman 1970; Baeza-Yates–Culberson–Rawlins
//! 1988); other bases give ratio `1 + 2·b²/(b−1)` on the line, which the
//! E10 boundary experiment sweeps.

use raysearch_sim::{Direction, LineItinerary, RobotId};

use crate::{LineStrategy, StrategyError};

/// The geometric cow-path strategy for a single fault-free robot.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{DoublingCowPath, LineStrategy};
/// use raysearch_sim::RobotId;
///
/// let cow = DoublingCowPath::classic();
/// let it = cow.itinerary(RobotId(0), 10.0)?;
/// assert_eq!(&it.turns()[..4], &[1.0, 2.0, 4.0, 8.0]);
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DoublingCowPath {
    base: f64,
    start: Direction,
}

impl DoublingCowPath {
    /// Creates a cow-path strategy with geometric base `base > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] unless `base > 1` and
    /// finite.
    pub fn new(base: f64) -> Result<Self, StrategyError> {
        if !(base.is_finite() && base > 1.0) {
            return Err(StrategyError::invalid(format!(
                "cow-path base must satisfy base > 1, got {base}"
            )));
        }
        Ok(DoublingCowPath {
            base,
            start: Direction::Positive,
        })
    }

    /// The classic optimal doubling strategy (`base = 2`).
    pub fn classic() -> Self {
        DoublingCowPath {
            base: 2.0,
            start: Direction::Positive,
        }
    }

    /// Returns a copy starting in the given direction.
    pub fn starting(mut self, start: Direction) -> Self {
        self.start = start;
        self
    }

    /// The geometric base.
    #[inline]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The worst-case competitive ratio of this base on the line,
    /// `1 + 2·b²/(b−1)`.
    pub fn theoretical_ratio(&self) -> f64 {
        1.0 + 2.0 * self.base * self.base / (self.base - 1.0)
    }
}

impl LineStrategy for DoublingCowPath {
    fn name(&self) -> String {
        format!("cow-path(base={})", self.base)
    }

    fn num_robots(&self) -> usize {
        1
    }

    fn itinerary(&self, robot: RobotId, horizon: f64) -> Result<LineItinerary, StrategyError> {
        StrategyError::check_horizon(horizon)?;
        if robot.index() != 0 {
            return Err(StrategyError::invalid(format!(
                "cow path has a single robot, got index {}",
                robot.index()
            )));
        }
        let mut turns = vec![1.0];
        // Continue until both sides have been swept past the horizon: the
        // last two turns each exceed it.
        loop {
            let n = turns.len();
            if n >= 2 && turns[n - 1] >= horizon && turns[n - 2] >= horizon {
                break;
            }
            let next = turns[n - 1] * self.base;
            turns.push(next);
        }
        Ok(LineItinerary::new(self.start, turns)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_sim::LineTrajectory;

    #[test]
    fn validation() {
        assert!(DoublingCowPath::new(1.0).is_err());
        assert!(DoublingCowPath::new(f64::INFINITY).is_err());
        assert!(DoublingCowPath::new(1.5).is_ok());
    }

    #[test]
    fn classic_ratio_is_nine() {
        assert!((DoublingCowPath::classic().theoretical_ratio() - 9.0).abs() < 1e-12);
        // any other base is worse
        for b in [1.5, 1.9, 2.1, 3.0, 4.0] {
            assert!(DoublingCowPath::new(b).unwrap().theoretical_ratio() > 9.0 - 1e-12);
        }
    }

    #[test]
    fn covers_both_sides_past_horizon() {
        let cow = DoublingCowPath::classic();
        let it = cow.itinerary(RobotId(0), 100.0).unwrap();
        let traj = LineTrajectory::compile(&it);
        assert!(traj.max_reach(Direction::Positive) >= 100.0);
        assert!(traj.max_reach(Direction::Negative) >= 100.0);
    }

    #[test]
    fn worst_case_ratio_on_trajectory_is_nine() {
        // For the doubling strategy the supremum of visit_time(x)/|x| is 9,
        // approached by targets just past a turning point on the sparser
        // side. Check a near-worst target: x = -(2^j + eps).
        let cow = DoublingCowPath::classic();
        let traj = LineTrajectory::compile(&cow.itinerary(RobotId(0), 1e5).unwrap());
        // negative turning points are 2^odd; pick one deep enough that the
        // ratio 9 - 2^(2-i) is within 1e-3 of the supremum.
        let x = -(8192.0 * (1.0 + 1e-9));
        let t = traj.first_visit(x).unwrap().as_f64();
        let ratio = t / x.abs();
        assert!(ratio <= 9.0 + 1e-6, "ratio {ratio} exceeds 9");
        assert!(ratio >= 9.0 - 1e-3, "ratio {ratio} not near the sup 9");
    }

    #[test]
    fn single_robot_only() {
        let cow = DoublingCowPath::classic();
        assert!(cow.itinerary(RobotId(1), 10.0).is_err());
        assert_eq!(cow.num_robots(), 1);
    }

    #[test]
    fn starting_direction_respected() {
        let cow = DoublingCowPath::classic().starting(Direction::Negative);
        let it = cow.itinerary(RobotId(0), 4.0).unwrap();
        let first: Vec<f64> = it.signed_turns().take(1).collect();
        assert!(first[0] < 0.0);
    }
}
