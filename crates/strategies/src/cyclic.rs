//! The cyclic exponential strategy (paper appendix; PODC'16 / IJCAI'03).
//!
//! Robot `r` (1-based in the paper) tours the `m` rays cyclically. Its
//! `n`-th excursion (for `n = 1−2m, 2−2m, …`) explores ray `n mod m` up to
//! distance `α^(k·n + m·r)`. Consecutive turning points grow by `α^k`, and
//! the `k` robots interleave as `k` geometric subsequences offset by
//! `α^m`, so every point is visited by `f+1` distinct robots within a
//! bounded factor of its distance.
//!
//! At the optimal base `α* = (q/(q−k))^(1/k)`, `q = m(f+1)`, the worst-case
//! ratio equals `Λ(q/k)` — the exact value the lower bound of Theorems 1
//! and 6 forbids improving. Away from `α*`, the ratio is
//! `2·α^q/(α^k−1) + 1`; experiment E5 sweeps `α` to exhibit the minimum.

use raysearch_bounds::{optimal_alpha, LogScaled, RayInstance, Regime};
use raysearch_sim::{
    Direction, LineItinerary, LogExcursion, LogTourItinerary, RayId, RobotId, TourItinerary,
};

use crate::{LineStrategy, RayStrategy, StrategyError};

/// The cyclic exponential strategy for `k` robots on `m` rays with `f`
/// crash faults.
///
/// See the [module docs](self) for the construction. Use
/// [`CyclicExponential::optimal`] for the tight base, or
/// [`CyclicExponential::with_alpha`] to sweep ablations.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{CyclicExponential, RayStrategy};
///
/// let strat = CyclicExponential::optimal(3, 2, 0)?;
/// assert_eq!(strat.num_rays(), 3);
/// assert_eq!(strat.num_robots(), 2);
/// // q = 3, k = 2: alpha* = (3/1)^(1/2) = sqrt(3)
/// assert!((strat.alpha() - 3f64.sqrt()).abs() < 1e-12);
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CyclicExponential {
    m: u32,
    k: u32,
    f: u32,
    alpha: f64,
}

impl CyclicExponential {
    /// Creates the strategy with an explicit geometric base `alpha > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] unless
    /// `f < k < m(f+1)` (the searchable regime) and `alpha > 1`.
    pub fn with_alpha(m: u32, k: u32, f: u32, alpha: f64) -> Result<Self, StrategyError> {
        let inst = RayInstance::new(m, k, f)?;
        match inst.regime() {
            Regime::Searchable { .. } => {}
            other => {
                return Err(StrategyError::invalid(format!(
                    "cyclic exponential strategy needs the searchable regime \
                     f < k < m(f+1); {inst} is {other:?}"
                )))
            }
        }
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(StrategyError::invalid(format!(
                "geometric base must satisfy alpha > 1, got {alpha}"
            )));
        }
        Ok(CyclicExponential { m, k, f, alpha })
    }

    /// Creates the strategy at the optimal base
    /// `α* = (q/(q−k))^(1/k)`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] outside the searchable
    /// regime.
    pub fn optimal(m: u32, k: u32, f: u32) -> Result<Self, StrategyError> {
        let inst = RayInstance::new(m, k, f)?;
        let alpha = optimal_alpha(inst.q(), k)?;
        Self::with_alpha(m, k, f, alpha)
    }

    /// The geometric base `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The number of faulty robots tolerated.
    #[inline]
    pub fn num_faults(&self) -> u32 {
        self.f
    }

    /// The covering multiplicity `q = m(f+1)`.
    #[inline]
    pub fn q(&self) -> u32 {
        self.m * (self.f + 1)
    }

    /// The per-excursion growth factor `α^k`.
    #[inline]
    pub fn growth_per_excursion(&self) -> f64 {
        self.alpha.powi(self.k as i32)
    }

    /// The ray explored on excursion index `n` (which may be negative for
    /// the warm-up excursions): `n mod m`.
    fn ray_of(&self, n: i64) -> RayId {
        RayId::new_unvalidated(n.rem_euclid(i64::from(self.m)) as usize)
    }

    /// Natural log of the turning distance of robot `r` (0-based) on
    /// excursion `n`: `(k·n + m·(r+1)) · ln α`. This is the primary
    /// representation — the exponent grows linearly in `k·n`, so the
    /// linear-space magnitude `α^(k·n + m·(r+1))` overflows `f64` long
    /// before the tour contract's post-horizon padding is satisfied on
    /// large fleets (k ≳ 139 at deep horizons).
    fn turn_ln_of(&self, robot: usize, n: i64) -> f64 {
        let expo = f64::from(self.k) * n as f64 + f64::from(self.m) * (robot as f64 + 1.0);
        expo * self.alpha.ln()
    }

    /// The finite log-domain tour of one robot, valid for targets up to
    /// `horizon` — the overflow-proof form of [`RayStrategy::tour`].
    ///
    /// Turn points are generated and stored as logarithms; nothing here
    /// ever materializes `α^i` in linear space, so the tour exists for
    /// any fleet size. Wherever the linear tour is finite, its turns
    /// are exactly the saturating extraction of these (`tour` is
    /// implemented on top of this method).
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidHorizon`] for a non-finite or
    /// sub-unit horizon and [`StrategyError::InvalidParameters`] for an
    /// out-of-range robot index.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_sim::RobotId;
    /// use raysearch_strategies::CyclicExponential;
    ///
    /// // k = 139 overflows the linear tour; the log tour is fine
    /// let s = CyclicExponential::optimal(2, 139, 69)?;
    /// let tour = s.log_tour(RobotId(0), 1e12)?;
    /// assert!(tour.to_linear().is_err());
    /// assert!(tour.len() > 140);
    /// # Ok::<(), raysearch_strategies::StrategyError>(())
    /// ```
    pub fn log_tour(
        &self,
        robot: RobotId,
        horizon: f64,
    ) -> Result<LogTourItinerary, StrategyError> {
        StrategyError::check_horizon(horizon)?;
        if robot.index() >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {} out of range for k = {}",
                robot.index(),
                self.k
            )));
        }
        // The paper starts at j = -2, i.e. excursion n0 = 1 - 2m, which
        // guarantees every robot has swept every ray before distance 1.
        let n0 = 1 - 2 * i64::from(self.m);
        let mut excursions = Vec::new();
        // Per-ray count of excursions whose turn already exceeds the
        // horizon; we stop once every ray has f+2 of them, which makes all
        // (f+1)-st distinct-robot visit times below the horizon final.
        let needed = self.f as usize + 2;
        let mut beyond = vec![0usize; self.m as usize];
        let mut n = n0;
        while beyond.iter().any(|&c| c < needed) {
            let ray = self.ray_of(n);
            let ln_turn = self.turn_ln_of(robot.index(), n);
            excursions.push(
                LogExcursion::new(ray, LogScaled::from_ln(ln_turn))
                    .expect("finite exponent times finite ln(alpha) is a valid log turn"),
            );
            // same comparison the linear pipeline made: the extraction
            // saturates to inf past f64::MAX, which still counts as
            // beyond any finite horizon
            if ln_turn.exp() >= horizon {
                beyond[ray.index()] += 1;
            }
            n += 1;
        }
        Ok(LogTourItinerary::new(self.m as usize, excursions)?)
    }

    /// The shortest prefix of [`CyclicExponential::log_tour`] that a
    /// first-visit compilation capped at `cap` can consume: generation
    /// stops as soon as *every* ray has one excursion turning at or past
    /// `cap`.
    ///
    /// The excursion sequence depends only on the excursion index, so
    /// this is an elementwise-identical prefix of `log_tour(h)` for any
    /// `h ≥ cap` — and the piece compiler
    /// (`raysearch_core::compile_first_visit_pieces` with the same
    /// `cap`) stops within exactly this prefix: it closes a ray at that
    /// ray's first excursion reaching `cap`, and later excursions only
    /// contribute turning mass to pieces that are never created. For
    /// large fleets the prefix is tens of excursions where the padded
    /// full tour is thousands, which is what makes fleet compilation
    /// cheap enough to be a cacheable artifact.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidHorizon`] for a non-finite or
    /// sub-unit `cap` and [`StrategyError::InvalidParameters`] for an
    /// out-of-range robot index.
    pub fn log_tour_prefix(
        &self,
        robot: RobotId,
        cap: f64,
    ) -> Result<LogTourItinerary, StrategyError> {
        StrategyError::check_horizon(cap)?;
        if robot.index() >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {} out of range for k = {}",
                robot.index(),
                self.k
            )));
        }
        let n0 = 1 - 2 * i64::from(self.m);
        let mut excursions = Vec::new();
        let mut beyond = vec![false; self.m as usize];
        let mut n = n0;
        while beyond.iter().any(|&b| !b) {
            let ray = self.ray_of(n);
            let ln_turn = self.turn_ln_of(robot.index(), n);
            excursions.push(
                LogExcursion::new(ray, LogScaled::from_ln(ln_turn))
                    .expect("finite exponent times finite ln(alpha) is a valid log turn"),
            );
            // same threshold extraction the compiler applies: the
            // excursion's linear turn, saturating past f64::MAX
            if ln_turn.exp() >= cap {
                beyond[ray.index()] = true;
            }
            n += 1;
        }
        Ok(LogTourItinerary::new(self.m as usize, excursions)?)
    }

    /// Log-domain tours for the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates the first failing robot's error.
    pub fn fleet_log_tours(&self, horizon: f64) -> Result<Vec<LogTourItinerary>, StrategyError> {
        (0..self.k as usize)
            .map(|r| self.log_tour(RobotId(r), horizon))
            .collect()
    }

    /// Restriction of this strategy to the line (`m = 2`), with ray `0`
    /// mapped to the positive half-line.
    ///
    /// For `m = 2` the excursion tour and the genuine line motion produce
    /// identical first-visit times on the "current" side (the line robot's
    /// swing through the origin is the tour's return), so this view is
    /// exact, not a relaxation.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] if `m != 2`.
    pub fn to_line(&self) -> Result<CyclicExponentialLine, StrategyError> {
        if self.m != 2 {
            return Err(StrategyError::invalid(format!(
                "line view requires m = 2, this strategy has m = {}",
                self.m
            )));
        }
        Ok(CyclicExponentialLine {
            inner: self.clone(),
        })
    }
}

impl RayStrategy for CyclicExponential {
    fn name(&self) -> String {
        format!(
            "cyclic-exponential(m={}, k={}, f={}, alpha={:.6})",
            self.m, self.k, self.f, self.alpha
        )
    }

    fn num_rays(&self) -> usize {
        self.m as usize
    }

    fn num_robots(&self) -> usize {
        self.k as usize
    }

    /// The linear-space view of [`CyclicExponential::log_tour`]: same
    /// turn points bit-for-bit wherever they fit `f64`, an
    /// invalid-distance error where they overflow (large fleets at deep
    /// horizons — use `log_tour` there).
    fn tour(&self, robot: RobotId, horizon: f64) -> Result<TourItinerary, StrategyError> {
        Ok(self.log_tour(robot, horizon)?.to_linear()?)
    }
}

/// The line (`m = 2`) view of [`CyclicExponential`], as a genuine
/// zig-zag [`LineStrategy`].
///
/// Obtained via [`CyclicExponential::to_line`]. This is the PODC'16 optimal
/// strategy for `k` robots and `f` crash faults on the line.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{CyclicExponential, LineStrategy};
///
/// // k = 1, f = 0: the doubling cow path.
/// let line = CyclicExponential::optimal(2, 1, 0)?.to_line()?;
/// let it = line.itinerary(raysearch_sim::RobotId(0), 8.0)?;
/// let ratios: Vec<f64> = it.turns().windows(2).map(|w| w[1] / w[0]).collect();
/// for r in ratios {
///     assert!((r - 2.0).abs() < 1e-9); // doubling
/// }
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CyclicExponentialLine {
    inner: CyclicExponential,
}

impl CyclicExponentialLine {
    /// The underlying ray-strategy parameters.
    pub fn as_ray_strategy(&self) -> &CyclicExponential {
        &self.inner
    }
}

impl LineStrategy for CyclicExponentialLine {
    fn name(&self) -> String {
        format!("line-{}", self.inner.name())
    }

    fn num_robots(&self) -> usize {
        self.inner.num_robots()
    }

    fn itinerary(&self, robot: RobotId, horizon: f64) -> Result<LineItinerary, StrategyError> {
        let tour = self.inner.tour(robot, horizon)?;
        // Consecutive excursions alternate rays 0/1, so the tour maps
        // directly to an alternating line plan.
        let first = tour
            .excursions()
            .first()
            .expect("searchable-regime tours are nonempty");
        let start = if first.ray.index() == 0 {
            Direction::Positive
        } else {
            Direction::Negative
        };
        let turns = tour.excursions().iter().map(|e| e.turn).collect();
        Ok(LineItinerary::new(start, turns)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_regime_parameters() {
        // trivial regime: k >= m(f+1)
        assert!(CyclicExponential::optimal(2, 4, 1).is_err());
        // impossible: k = f
        assert!(CyclicExponential::optimal(2, 2, 2).is_err());
        // bad alpha
        assert!(CyclicExponential::with_alpha(2, 1, 0, 1.0).is_err());
        assert!(CyclicExponential::with_alpha(2, 1, 0, f64::NAN).is_err());
        // fine
        assert!(CyclicExponential::with_alpha(2, 1, 0, 3.0).is_ok());
    }

    #[test]
    fn optimal_alpha_for_cow_path_is_two() {
        let s = CyclicExponential::optimal(2, 1, 0).unwrap();
        assert!((s.alpha() - 2.0).abs() < 1e-12);
        assert!((s.growth_per_excursion() - 2.0).abs() < 1e-12);
        assert_eq!(s.q(), 2);
    }

    #[test]
    fn tour_cycles_rays_in_order() {
        let s = CyclicExponential::optimal(3, 2, 0).unwrap();
        let tour = s.tour(RobotId(0), 50.0).unwrap();
        for (i, w) in tour.excursions().windows(2).enumerate() {
            assert_eq!(
                (w[0].ray.index() + 1) % 3,
                w[1].ray.index(),
                "cycle broken at excursion {i}"
            );
        }
    }

    #[test]
    fn turns_grow_geometrically_by_alpha_k() {
        let s = CyclicExponential::optimal(2, 3, 1).unwrap();
        let growth = s.growth_per_excursion();
        let tour = s.tour(RobotId(1), 100.0).unwrap();
        for w in tour.excursions().windows(2) {
            let ratio = w[1].turn / w[0].turn;
            assert!(
                (ratio - growth).abs() < 1e-9,
                "expected growth {growth}, got {ratio}"
            );
        }
    }

    #[test]
    fn robots_are_offset_by_alpha_m() {
        let s = CyclicExponential::optimal(2, 3, 1).unwrap();
        let t0 = s.tour(RobotId(0), 50.0).unwrap();
        let t1 = s.tour(RobotId(1), 50.0).unwrap();
        let offset = s.alpha().powi(2); // alpha^m
        let r = t1.excursions()[0].turn / t0.excursions()[0].turn;
        assert!((r - offset).abs() < 1e-9);
    }

    #[test]
    fn warmup_reaches_below_distance_one() {
        // every robot's first excursion must turn at distance <= 1
        for (m, k, f) in [
            (2u32, 1u32, 0u32),
            (2, 3, 1),
            (3, 2, 0),
            (4, 5, 1),
            (5, 9, 2),
        ] {
            let s = CyclicExponential::optimal(m, k, f).unwrap();
            for r in 0..k as usize {
                let tour = s.tour(RobotId(r), 10.0).unwrap();
                let first = tour.excursions()[0].turn;
                assert!(
                    first <= 1.0 + 1e-9,
                    "robot {r} of (m={m},k={k},f={f}) starts at {first} > 1"
                );
            }
        }
    }

    #[test]
    fn tour_extends_past_horizon_per_ray() {
        let (m, k, f) = (3u32, 4u32, 1u32);
        let s = CyclicExponential::optimal(m, k, f).unwrap();
        let h = 200.0;
        for r in 0..k as usize {
            let tour = s.tour(RobotId(r), h).unwrap();
            for ray in 0..m as usize {
                let beyond = tour
                    .excursions()
                    .iter()
                    .filter(|e| e.ray.index() == ray && e.turn >= h)
                    .count();
                assert!(beyond >= (f as usize) + 2, "ray {ray} undercovered");
            }
        }
    }

    #[test]
    fn log_tour_matches_linear_tour_bit_for_bit() {
        for (m, k, f) in [(2u32, 3u32, 1u32), (3, 4, 1), (5, 9, 2)] {
            let s = CyclicExponential::optimal(m, k, f).unwrap();
            for r in 0..k as usize {
                let linear = s.tour(RobotId(r), 300.0).unwrap();
                let log = s.log_tour(RobotId(r), 300.0).unwrap();
                assert_eq!(linear.len(), log.len());
                for (a, b) in linear.excursions().iter().zip(log.excursions()) {
                    assert_eq!(a.ray, b.ray);
                    assert_eq!(a.turn.to_bits(), b.turn.to_f64().to_bits());
                }
            }
        }
    }

    #[test]
    fn log_tour_exists_where_the_linear_tour_overflows() {
        // q = k + 1 on the line: the slowest-growing base, whose
        // padding tail overflows f64 from k ≈ 139 at deep horizons
        let s = CyclicExponential::optimal(2, 149, 74).unwrap();
        assert!(s.tour(RobotId(0), 1e12).is_err(), "linear tour overflows");
        let tour = s.log_tour(RobotId(0), 1e12).unwrap();
        // per-excursion growth is exactly k·ln(alpha) in log space
        let step = f64::from(s.k) * s.alpha().ln();
        for w in tour.excursions().windows(2) {
            let got = w[1].turn.ln_abs() - w[0].turn.ln_abs();
            assert!((got - step).abs() < 1e-6, "growth {got} != {step}");
        }
        // the contract holds: each ray has f + 2 excursions past horizon
        let ln_h = 1e12f64.ln();
        for ray in 0..2usize {
            let beyond = tour
                .excursions()
                .iter()
                .filter(|e| e.ray.index() == ray && e.turn.ln_abs() >= ln_h)
                .count();
            assert!(beyond >= 76, "ray {ray} has only {beyond} beyond");
        }
        // fleet construction scales to every robot
        assert_eq!(s.fleet_log_tours(1e6).unwrap().len(), 149);
    }

    #[test]
    fn log_tour_prefix_is_an_elementwise_prefix_of_the_full_tour() {
        for (m, k, f) in [(2u32, 3u32, 1u32), (3, 4, 1), (2, 256, 128)] {
            let s = CyclicExponential::optimal(m, k, f).unwrap();
            for r in [0usize, k as usize - 1] {
                let cap = 1e6;
                let full = s.log_tour(RobotId(r), cap * 4.0).unwrap();
                let prefix = s.log_tour_prefix(RobotId(r), cap).unwrap();
                assert!(
                    prefix.len() <= full.len(),
                    "(m={m},k={k},f={f}) robot {r}: prefix longer than full tour"
                );
                for (a, b) in prefix.excursions().iter().zip(full.excursions()) {
                    assert_eq!(a.ray, b.ray);
                    assert_eq!(a.turn, b.turn);
                }
                // the prefix ends exactly when every ray has one
                // excursion at or past the cap — no later, no earlier
                for ray in 0..m as usize {
                    let beyond = prefix
                        .excursions()
                        .iter()
                        .filter(|e| e.ray.index() == ray && e.turn.to_f64() >= cap)
                        .count();
                    assert_eq!(beyond, 1, "ray {ray} not closed exactly once");
                }
            }
        }
    }

    #[test]
    fn log_tour_prefix_validates_like_log_tour() {
        let s = CyclicExponential::optimal(2, 3, 1).unwrap();
        assert!(s.log_tour_prefix(RobotId(3), 100.0).is_err());
        assert!(s.log_tour_prefix(RobotId(0), 0.5).is_err());
        assert!(s.log_tour_prefix(RobotId(0), f64::NAN).is_err());
    }

    #[test]
    fn robot_index_validation() {
        let s = CyclicExponential::optimal(2, 1, 0).unwrap();
        assert!(s.tour(RobotId(1), 10.0).is_err());
        assert!(s.tour(RobotId(0), 0.5).is_err());
    }

    #[test]
    fn line_view_requires_m2() {
        assert!(CyclicExponential::optimal(3, 2, 0)
            .unwrap()
            .to_line()
            .is_err());
        assert!(CyclicExponential::optimal(2, 1, 0)
            .unwrap()
            .to_line()
            .is_ok());
    }

    #[test]
    fn line_view_is_doubling_for_cow_path() {
        let line = CyclicExponential::optimal(2, 1, 0)
            .unwrap()
            .to_line()
            .unwrap();
        let it = line.itinerary(RobotId(0), 16.0).unwrap();
        for w in it.turns().windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
        assert_eq!(line.num_robots(), 1);
    }

    #[test]
    fn line_view_alternates_sides_matching_tour_rays() {
        let s = CyclicExponential::optimal(2, 3, 1).unwrap();
        let line = s.to_line().unwrap();
        let tour = s.tour(RobotId(2), 30.0).unwrap();
        let it = line.itinerary(RobotId(2), 30.0).unwrap();
        assert_eq!(tour.len(), it.len());
        for (e, signed) in tour.excursions().iter().zip(it.signed_turns()) {
            let expect_positive = e.ray.index() == 0;
            assert_eq!(signed > 0.0, expect_positive);
            assert!((signed.abs() - e.turn).abs() < 1e-12);
        }
    }
}
