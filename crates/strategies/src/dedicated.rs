//! The dedicated-robots strategy — distance-optimal, time-suboptimal.
//!
//! Kao–Ma–Sipser–Yin resolved the *total-distance* version of parallel
//! ray search, and the paper remarks: *"Somewhat unfortunately, the
//! optimal algorithm does not really use multiple robots simultaneously:
//! all but one robot search on one ray each, while the last robot
//! performs the search on all remaining rays."* This module implements
//! that shape so the time-competitive evaluation can show exactly how
//! much it loses to the cyclic strategy under the paper's time measure —
//! the ablation motivating Theorem 6's "all strategies" claim.
//!
//! With `k ≤ m` robots and no faults: robots `0..k-1` each walk straight
//! out a dedicated ray (ratio 1 there); robot `k-1` runs a single-robot
//! geometric search over the remaining `m-k+1` rays (classic ratio
//! `1 + 2·m'^{m'}/(m'-1)^{m'-1}` with `m' = m-k+1`). Its worst-case time
//! ratio is therefore the single-searcher constant for `m'` rays — worse
//! than `A(m,k,0)` whenever `k ≥ 2`.

use raysearch_bounds::{optimal_alpha, BoundsError};
use raysearch_sim::{Excursion, RayId, RobotId, TourItinerary};

use crate::{RayStrategy, StrategyError};

/// Dedicated robots plus one sweeper (the distance-optimal shape).
///
/// # Example
///
/// ```
/// use raysearch_strategies::{dedicated::DedicatedPlusSweeper, RayStrategy};
///
/// let s = DedicatedPlusSweeper::new(4, 3)?;
/// // robots 0 and 1 are dedicated; robot 2 sweeps rays 2 and 3.
/// assert_eq!(s.num_robots(), 3);
/// assert_eq!(s.sweeper_rays(), 2);
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DedicatedPlusSweeper {
    m: u32,
    k: u32,
}

impl DedicatedPlusSweeper {
    /// Creates the strategy for `k` robots on `m` rays (no faults).
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] unless
    /// `2 ≤ k ≤ m` and the sweeper has at least two rays
    /// (`m − k + 1 ≥ 2`; with exactly one ray left the strategy is the
    /// trivial saturation).
    pub fn new(m: u32, k: u32) -> Result<Self, StrategyError> {
        if k < 2 {
            return Err(StrategyError::invalid(
                "dedicated-plus-sweeper needs at least 2 robots",
            ));
        }
        if k > m {
            return Err(StrategyError::invalid(format!(
                "more robots than rays (k={k} > m={m}): use saturation instead"
            )));
        }
        if m - k + 1 < 2 {
            return Err(StrategyError::invalid(format!(
                "sweeper must have at least 2 rays, got m-k+1 = {}",
                m - k + 1
            )));
        }
        Ok(DedicatedPlusSweeper { m, k })
    }

    /// Number of rays the sweeper is responsible for, `m − k + 1`.
    #[inline]
    pub fn sweeper_rays(&self) -> u32 {
        self.m - self.k + 1
    }

    /// The worst-case *time* ratio of this strategy: the single-searcher
    /// constant on the sweeper's rays,
    /// `1 + 2·m'^{m'}/(m'−1)^{m'−1}`.
    ///
    /// # Errors
    ///
    /// Propagates bound-computation errors (none for valid instances).
    pub fn theoretical_time_ratio(&self) -> Result<f64, BoundsError> {
        raysearch_bounds::literature::single_robot_m_rays(self.sweeper_rays())
    }
}

impl RayStrategy for DedicatedPlusSweeper {
    fn name(&self) -> String {
        format!("dedicated-plus-sweeper(m={}, k={})", self.m, self.k)
    }

    fn num_rays(&self) -> usize {
        self.m as usize
    }

    fn num_robots(&self) -> usize {
        self.k as usize
    }

    fn tour(&self, robot: RobotId, horizon: f64) -> Result<TourItinerary, StrategyError> {
        StrategyError::check_horizon(horizon)?;
        let r = robot.index();
        if r >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {r} out of range for k = {}",
                self.k
            )));
        }
        let m = self.m as usize;
        if r + 1 < self.k as usize {
            // dedicated robot: straight out its own ray
            let ray = RayId::new_unvalidated(r);
            return Ok(TourItinerary::new(
                m,
                vec![Excursion::new(ray, 2.0 * horizon)?],
            )?);
        }
        // the sweeper: single-robot cyclic geometric search on the last
        // m' rays, with the classic optimal base (q = m', k = 1)
        let m_prime = self.sweeper_rays();
        let alpha = optimal_alpha(m_prime, 1)?;
        let first_sweeper_ray = self.k as usize - 1;
        let mut excursions = Vec::new();
        let mut n = 1 - 2 * i64::from(m_prime);
        let mut beyond = vec![0usize; m_prime as usize];
        while beyond.iter().any(|&c| c < 2) {
            let local = n.rem_euclid(i64::from(m_prime)) as usize;
            let ray = RayId::new_unvalidated(first_sweeper_ray + local);
            let turn = (n as f64 * alpha.ln()).exp();
            excursions.push(Excursion::new(ray, turn)?);
            if turn >= horizon {
                beyond[local] += 1;
            }
            n += 1;
        }
        Ok(TourItinerary::new(m, excursions)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DedicatedPlusSweeper::new(3, 1).is_err());
        assert!(DedicatedPlusSweeper::new(3, 4).is_err());
        assert!(DedicatedPlusSweeper::new(3, 3).is_err()); // sweeper gets 1 ray
        assert!(DedicatedPlusSweeper::new(3, 2).is_ok());
        let s = DedicatedPlusSweeper::new(4, 3).unwrap();
        assert!(s.tour(RobotId(3), 10.0).is_err());
        assert!(s.tour(RobotId(0), 0.1).is_err());
    }

    #[test]
    fn dedicated_robots_go_straight_out() {
        let s = DedicatedPlusSweeper::new(4, 3).unwrap();
        for r in 0..2usize {
            let tour = s.tour(RobotId(r), 50.0).unwrap();
            assert_eq!(tour.len(), 1);
            assert_eq!(tour.excursions()[0].ray.index(), r);
            assert!(tour.excursions()[0].turn >= 50.0);
        }
    }

    #[test]
    fn sweeper_cycles_its_rays_geometrically() {
        let s = DedicatedPlusSweeper::new(4, 3).unwrap();
        let tour = s.tour(RobotId(2), 50.0).unwrap();
        // sweeper owns rays 2 and 3 only
        for e in tour.excursions() {
            assert!(e.ray.index() >= 2);
        }
        // turns grow geometrically with the classic base for m' = 2 (= 2)
        for w in tour.excursions().windows(2) {
            assert!((w[1].turn / w[0].turn - 2.0).abs() < 1e-9);
        }
        // warm-up reaches below distance 1
        assert!(tour.excursions()[0].turn <= 1.0 + 1e-9);
    }

    #[test]
    fn time_ratio_is_the_single_searcher_constant() {
        // m=4, k=3: sweeper has 2 rays: classic 9
        let s = DedicatedPlusSweeper::new(4, 3).unwrap();
        assert!((s.theoretical_time_ratio().unwrap() - 9.0).abs() < 1e-12);
        // m=5, k=2: sweeper has 4 rays
        let s = DedicatedPlusSweeper::new(5, 2).unwrap();
        let m4 = raysearch_bounds::literature::single_robot_m_rays(4).unwrap();
        assert!((s.theoretical_time_ratio().unwrap() - m4).abs() < 1e-12);
    }

    #[test]
    fn loses_to_the_cyclic_strategy_in_time() {
        // the paper's remark, quantified: distance-optimal shape is
        // strictly worse for time whenever it is nontrivial
        for (m, k) in [(3u32, 2u32), (4, 2), (4, 3), (5, 3)] {
            let dedicated = DedicatedPlusSweeper::new(m, k).unwrap();
            let optimal = raysearch_bounds::a_rays(m, k, 0).unwrap();
            assert!(
                dedicated.theoretical_time_ratio().unwrap() > optimal + 0.5,
                "(m={m}, k={k}): dedicated not clearly worse"
            );
        }
    }
}
