//! Seeded random strategies for falsification testing.
//!
//! Theorem 6 says *no* strategy beats `Λ(q/k)`. That is not checkable by
//! enumeration, but it is falsifiable: the property-based tests throw
//! thousands of randomized strategies at the evaluator and assert none of
//! them ever lands below the bound. These types provide the randomness in
//! reproducible, seeded form.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raysearch_sim::{Excursion, RayId, RobotId, TourItinerary};

use crate::{RayStrategy, StrategyError};

/// A randomized geometric tour strategy: each robot gets its own seeded
/// base and phase, and tours rays cyclically from a random offset.
///
/// # Example
///
/// ```
/// use raysearch_strategies::{RandomGeometric, RayStrategy};
///
/// let s = RandomGeometric::new(2, 3, 1, 42, (1.2, 3.0))?;
/// let a = s.fleet_tours(50.0)?;
/// let b = s.fleet_tours(50.0)?;
/// assert_eq!(a, b); // fully deterministic in the seed
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RandomGeometric {
    m: u32,
    k: u32,
    f: u32,
    seed: u64,
    alpha_lo: f64,
    alpha_hi: f64,
}

impl RandomGeometric {
    /// Creates a random geometric strategy family member.
    ///
    /// `alpha_range` bounds each robot's per-cycle growth base.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] if `m = 0`, `k = 0` or
    /// the range is invalid (`1 < lo ≤ hi` required).
    pub fn new(
        m: u32,
        k: u32,
        f: u32,
        seed: u64,
        alpha_range: (f64, f64),
    ) -> Result<Self, StrategyError> {
        if m == 0 || k == 0 {
            return Err(StrategyError::invalid("need m >= 1 and k >= 1"));
        }
        let (lo, hi) = alpha_range;
        if !(lo.is_finite() && hi.is_finite() && 1.0 < lo && lo <= hi) {
            return Err(StrategyError::invalid(format!(
                "alpha range must satisfy 1 < lo <= hi, got ({lo}, {hi})"
            )));
        }
        Ok(RandomGeometric {
            m,
            k,
            f,
            seed,
            alpha_lo: lo,
            alpha_hi: hi,
        })
    }

    fn rng_for(&self, robot: usize) -> StdRng {
        // Mix the robot index into the seed so robots are independent but
        // the whole fleet is reproducible.
        StdRng::seed_from_u64(self.seed ^ (robot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl RayStrategy for RandomGeometric {
    fn name(&self) -> String {
        format!(
            "random-geometric(m={}, k={}, f={}, seed={})",
            self.m, self.k, self.f, self.seed
        )
    }

    fn num_rays(&self) -> usize {
        self.m as usize
    }

    fn num_robots(&self) -> usize {
        self.k as usize
    }

    fn tour(&self, robot: RobotId, horizon: f64) -> Result<TourItinerary, StrategyError> {
        StrategyError::check_horizon(horizon)?;
        if robot.index() >= self.k as usize {
            return Err(StrategyError::invalid(format!(
                "robot index {} out of range for k = {}",
                robot.index(),
                self.k
            )));
        }
        let mut rng = self.rng_for(robot.index());
        let alpha: f64 = rng.gen_range(self.alpha_lo..=self.alpha_hi);
        let phase: f64 = rng.gen_range(0.05..=1.0);
        let ray_offset: usize = rng.gen_range(0..self.m as usize);
        let m = self.m as usize;

        // Warm-up: start low enough that every ray is swept below distance
        // 1 at least twice before real coverage begins.
        let mut turn = phase;
        while turn > 1.0 / (alpha * alpha) {
            turn /= alpha;
        }
        for _ in 0..(2 * m) {
            turn /= alpha;
        }

        let needed = self.f as usize + 2;
        let mut beyond = vec![0usize; m];
        let mut excursions = Vec::new();
        let mut n = 0usize;
        while beyond.iter().any(|&c| c < needed) {
            let ray = RayId::new_unvalidated((ray_offset + n) % m);
            excursions.push(Excursion::new(ray, turn)?);
            if turn >= horizon {
                beyond[ray.index()] += 1;
            }
            turn *= alpha;
            n += 1;
        }
        Ok(TourItinerary::new(m, excursions)?)
    }
}

/// A wrapper that perturbs every turning point of an inner strategy by a
/// seeded multiplicative jitter in `[1/(1+eps), 1+eps]`.
///
/// Used to verify that the optimal strategy sits on a ridge: any jitter can
/// only raise the measured competitive ratio (up to evaluation slack).
///
/// # Example
///
/// ```
/// use raysearch_strategies::{CyclicExponential, Perturbed, RayStrategy};
///
/// let base = CyclicExponential::optimal(2, 1, 0)?;
/// let jittered = Perturbed::new(base, 0.05, 7)?;
/// let tour = jittered.tour(raysearch_sim::RobotId(0), 10.0)?;
/// assert!(!tour.is_empty());
/// # Ok::<(), raysearch_strategies::StrategyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Perturbed<S> {
    inner: S,
    eps: f64,
    seed: u64,
}

impl<S: RayStrategy> Perturbed<S> {
    /// Wraps `inner`, jittering turns by at most a factor `1 + eps`.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidParameters`] unless `0 < eps < 1`.
    pub fn new(inner: S, eps: f64, seed: u64) -> Result<Self, StrategyError> {
        if !(eps.is_finite() && 0.0 < eps && eps < 1.0) {
            return Err(StrategyError::invalid(format!(
                "perturbation must satisfy 0 < eps < 1, got {eps}"
            )));
        }
        Ok(Perturbed { inner, eps, seed })
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: RayStrategy> RayStrategy for Perturbed<S> {
    fn name(&self) -> String {
        format!(
            "perturbed(eps={}, seed={}, {})",
            self.eps,
            self.seed,
            self.inner.name()
        )
    }

    fn num_rays(&self) -> usize {
        self.inner.num_rays()
    }

    fn num_robots(&self) -> usize {
        self.inner.num_robots()
    }

    fn tour(&self, robot: RobotId, horizon: f64) -> Result<TourItinerary, StrategyError> {
        // Ask the inner strategy for a slightly larger horizon so that the
        // shrink direction of the jitter cannot pull coverage below the
        // caller's horizon.
        let tour = self.inner.tour(robot, horizon * (1.0 + self.eps))?;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (robot.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let excursions = tour
            .excursions()
            .iter()
            .map(|e| {
                let factor: f64 = rng.gen_range((1.0 / (1.0 + self.eps))..=(1.0 + self.eps));
                Excursion::new(e.ray, e.turn * factor)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TourItinerary::new(tour.num_rays(), excursions)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CyclicExponential;

    #[test]
    fn random_geometric_validation() {
        assert!(RandomGeometric::new(0, 1, 0, 1, (1.5, 2.0)).is_err());
        assert!(RandomGeometric::new(2, 0, 0, 1, (1.5, 2.0)).is_err());
        assert!(RandomGeometric::new(2, 1, 0, 1, (1.0, 2.0)).is_err());
        assert!(RandomGeometric::new(2, 1, 0, 1, (2.0, 1.5)).is_err());
    }

    #[test]
    fn random_geometric_is_deterministic() {
        let s = RandomGeometric::new(3, 4, 1, 99, (1.3, 2.5)).unwrap();
        assert_eq!(
            s.tour(RobotId(2), 40.0).unwrap(),
            s.tour(RobotId(2), 40.0).unwrap()
        );
        // different robots differ (with overwhelming probability)
        assert_ne!(
            s.tour(RobotId(0), 40.0).unwrap(),
            s.tour(RobotId(1), 40.0).unwrap()
        );
    }

    #[test]
    fn random_geometric_warms_up_and_extends() {
        let s = RandomGeometric::new(2, 2, 1, 5, (1.5, 2.0)).unwrap();
        let tour = s.tour(RobotId(0), 30.0).unwrap();
        let first = tour.excursions().first().unwrap().turn;
        assert!(first < 1.0, "warm-up starts at {first}");
        let last = tour.excursions().last().unwrap().turn;
        assert!(last >= 30.0);
    }

    #[test]
    fn random_geometric_turns_grow() {
        let s = RandomGeometric::new(2, 1, 0, 11, (1.4, 1.9)).unwrap();
        let tour = s.tour(RobotId(0), 25.0).unwrap();
        for w in tour.excursions().windows(2) {
            assert!(w[1].turn > w[0].turn);
        }
    }

    #[test]
    fn perturbed_stays_close_to_inner() {
        let base = CyclicExponential::optimal(2, 3, 1).unwrap();
        let p = Perturbed::new(base.clone(), 0.1, 3).unwrap();
        let t_base = base.tour(RobotId(0), 20.0 * 1.1).unwrap();
        let t_pert = p.tour(RobotId(0), 20.0).unwrap();
        assert_eq!(t_base.len(), t_pert.len());
        for (a, b) in t_base.excursions().iter().zip(t_pert.excursions()) {
            assert_eq!(a.ray, b.ray);
            let factor = b.turn / a.turn;
            assert!((1.0 / 1.1 - 1e-12..=1.1 + 1e-12).contains(&factor));
        }
    }

    #[test]
    fn perturbed_validation() {
        let base = CyclicExponential::optimal(2, 1, 0).unwrap();
        assert!(Perturbed::new(base.clone(), 0.0, 1).is_err());
        assert!(Perturbed::new(base.clone(), 1.0, 1).is_err());
        assert!(Perturbed::new(base, 0.5, 1).is_ok());
    }
}
