use std::fmt;

use raysearch_bounds::BoundsError;
use raysearch_sim::SimError;

/// Error raised when constructing or materializing a strategy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StrategyError {
    /// The strategy's parameters are structurally invalid.
    InvalidParameters {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The requested horizon is not a finite value `≥ 1`.
    InvalidHorizon {
        /// The offending horizon.
        horizon: f64,
    },
    /// An underlying simulation primitive rejected the generated plan.
    Sim(SimError),
    /// An underlying bound computation rejected the parameters.
    Bounds(BoundsError),
}

impl StrategyError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        StrategyError::InvalidParameters {
            reason: reason.into(),
        }
    }

    pub(crate) fn check_horizon(horizon: f64) -> Result<(), StrategyError> {
        if horizon.is_finite() && horizon >= 1.0 {
            Ok(())
        } else {
            Err(StrategyError::InvalidHorizon { horizon })
        }
    }
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::InvalidParameters { reason } => {
                write!(f, "invalid strategy parameters: {reason}")
            }
            StrategyError::InvalidHorizon { horizon } => {
                write!(f, "invalid horizon {horizon}: must be finite and >= 1")
            }
            StrategyError::Sim(e) => write!(f, "simulation error: {e}"),
            StrategyError::Bounds(e) => write!(f, "bounds error: {e}"),
        }
    }
}

impl std::error::Error for StrategyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StrategyError::Sim(e) => Some(e),
            StrategyError::Bounds(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for StrategyError {
    fn from(e: SimError) -> Self {
        StrategyError::Sim(e)
    }
}

impl From<BoundsError> for StrategyError {
    fn from(e: BoundsError) -> Self {
        StrategyError::Bounds(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_validation() {
        assert!(StrategyError::check_horizon(1.0).is_ok());
        assert!(StrategyError::check_horizon(1e9).is_ok());
        assert!(StrategyError::check_horizon(0.5).is_err());
        assert!(StrategyError::check_horizon(f64::NAN).is_err());
        assert!(StrategyError::check_horizon(f64::INFINITY).is_err());
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: StrategyError = SimError::InvalidDistance { value: -1.0 }.into();
        assert!(e.to_string().contains("simulation error"));
        assert!(e.source().is_some());
        let e = StrategyError::invalid("bad");
        assert!(e.source().is_none());
    }
}
