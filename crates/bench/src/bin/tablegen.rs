//! `tablegen` — regenerate every experiment table of the reproduction.
//!
//! ```text
//! tablegen [--list] [--json PATH] [--experiment e1,e4] [--max-k N]
//!          [--threads N] [--seed N] [--samples N] [ids...]
//! ```
//!
//! `--list` prints the experiment registry (one line per campaign: id,
//! title, default grid size) without running anything, and exits 0.
//!
//! Without a selection, all of E1–E10 run. In text mode (the default)
//! each campaign renders as an aligned table with run metadata. With
//! `--json PATH` a single JSON document is written to PATH (`-` for
//! stdout):
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "paper": "1707.05077",
//!   "config": {"max_k": 10, "threads": null},
//!   "campaigns": [
//!     {"id": "e1", "title": "...", "threads": 8, "micros": 12345,
//!      "cells": 25, "rows": [{"k": 1, "f": 0, ...}, ...]},
//!     {"id": "e12", ..., "micros": 12345,
//!      "compile": {"hits": 0, "misses": 24, "entries": 24,
//!                  "compile_micros": 2345, "evaluate_micros": 10000,
//!                  "evaluate_p50_micros": 255, "evaluate_p95_micros": 511,
//!                  "evaluate_max_micros": 489},
//!      "rows": [...]},
//!     ...
//!   ]
//! }
//! ```
//!
//! Campaigns that attach a compile memo (E12) also report the
//! compile/evaluate wall-time split: `compile_micros` is time spent
//! building [`raysearch_core::CompiledFleet`] artifacts, and
//! `evaluate_micros` is the remainder of `micros`. The
//! `evaluate_p50_micros` / `evaluate_p95_micros` / `evaluate_max_micros`
//! fields summarize the *per-cell* wall times through the same
//! log-bucketed histogram as the serving tier's `/metrics` (percentiles
//! are bucket upper bounds, `p ≤ reported < 2p`; the max is exact).

use raysearch_bench::experiments::{self, Config};

const USAGE: &str = "\
usage: tablegen [options] [ids...]

options:
  --list             print the experiment registry (id, title, default
                     grid size) and exit
  --json PATH        write one JSON document to PATH ('-' = stdout)
                     instead of rendering text tables
  --experiment LIST  comma-separated experiment ids (same as positional
                     ids), e.g. --experiment e1,e4
  --max-k N          ceiling for the k axes of E1-E4 and the E12 fleet
                     sizes (E12 sweeps {128,...,4096} capped at
                     max(N, 128)) (default 10)
  --threads N        worker threads per campaign (N >= 1; 1 = sequential;
                     default: machine parallelism)
  --seed N           master seed for the stochastic experiments (E11);
                     the whole table is a pure function of it (default
                     1707, never changes the deterministic E1-E10)
  --samples N        Monte-Carlo samples per E11 cell (N >= 1;
                     default 20000)
  --help             show this help

experiments: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 (default: all)";

struct Cli {
    json: Option<String>,
    list: bool,
    ids: Vec<String>,
    cfg: Config,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut json = None;
    let mut list = false;
    let mut ids: Vec<String> = Vec::new();
    let mut cfg = Config::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--list" => list = true,
            "--json" => {
                let path = value_of("--json")?;
                // catch scripts written against the old `--json e3` CLI
                // (a flag without a value) before they clobber a file
                if path.starts_with("--") || experiments::ALL.contains(&path.as_str()) {
                    return Err(format!(
                        "--json requires an output PATH ('-' = stdout), got {path:?}"
                    ));
                }
                json = Some(path);
            }
            "--experiment" | "--experiments" => {
                ids.extend(
                    value_of("--experiment")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_lowercase),
                );
            }
            "--max-k" => {
                cfg.max_k = value_of("--max-k")?
                    .parse::<u32>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or("--max-k expects an integer >= 1")?;
            }
            "--threads" => {
                cfg.threads = Some(
                    value_of("--threads")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .ok_or("--threads expects an integer >= 1")?,
                );
            }
            "--seed" => {
                cfg.seed = value_of("--seed")?
                    .parse::<u64>()
                    .map_err(|_| "--seed expects a non-negative integer")?;
            }
            "--samples" => {
                cfg.mc_samples = value_of("--samples")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--samples expects an integer >= 1")?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            id => ids.push(id.to_lowercase()),
        }
    }
    for id in &ids {
        if !experiments::ALL.contains(&id.as_str()) {
            return Err(format!(
                "unknown experiment {id:?} (available: {})",
                experiments::ALL.join(", ")
            ));
        }
    }
    if list && json.is_some() {
        // a script expecting a JSON document must not silently get the
        // text registry (and no output file) with exit 0
        return Err("--list and --json are mutually exclusive".to_owned());
    }
    Ok(Some(Cli {
        json,
        list,
        ids,
        cfg,
    }))
}

fn json_document(cli: &Cli, reports: &[raysearch_core::campaign::Report]) -> serde_json::Value {
    use serde_json::{Map, Value};
    let mut config = Map::new();
    config.insert("max_k".to_owned(), Value::Int(i64::from(cli.cfg.max_k)));
    config.insert(
        "threads".to_owned(),
        cli.cfg
            .threads
            .map_or(Value::Null, |t| Value::Int(t as i64)),
    );
    config.insert(
        "seed".to_owned(),
        serde_json::to_value(cli.cfg.seed).expect("u64 serializes"),
    );
    config.insert(
        "mc_samples".to_owned(),
        serde_json::to_value(cli.cfg.mc_samples).expect("u64 serializes"),
    );
    let mut doc = Map::new();
    doc.insert("schema_version".to_owned(), Value::Int(1));
    doc.insert("paper".to_owned(), Value::String("1707.05077".to_owned()));
    doc.insert("config".to_owned(), Value::Object(config));
    doc.insert(
        "campaigns".to_owned(),
        Value::Array(reports.iter().map(|r| r.to_value()).collect()),
    );
    Value::Object(doc)
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some(cli) = parse_args(&args)? else {
        println!("{USAGE}");
        return Ok(());
    };
    let selected: Vec<&str> = experiments::ALL
        .iter()
        .copied()
        .filter(|id| cli.ids.is_empty() || cli.ids.iter().any(|w| w == id))
        .collect();

    if cli.list {
        let mut table = raysearch_bench::Table::new(vec![
            "experiment".to_owned(),
            "campaign".to_owned(),
            "cells".to_owned(),
            "title".to_owned(),
        ]);
        for id in &selected {
            let infos =
                experiments::describe_experiment(id, &cli.cfg).expect("registry covers ALL");
            for info in infos {
                table.push(vec![
                    (*id).to_owned(),
                    info.id,
                    info.cells.to_string(),
                    info.title,
                ]);
            }
        }
        print!("{}", table.render());
        return Ok(());
    }

    let mut reports = Vec::new();
    for id in &selected {
        let batch =
            experiments::run_experiment(id, &cli.cfg).expect("registry covers every id in ALL");
        if cli.json.is_none() {
            for report in &batch {
                println!("{}", report.render_text());
            }
        }
        reports.extend(batch);
    }

    match &cli.json {
        Some(path) => {
            let text =
                serde_json::to_string(&json_document(&cli, &reports)).expect("document serializes");
            if path == "-" {
                println!("{text}");
            } else {
                std::fs::write(path, text + "\n")
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
        }
        None => println!("experiments available: {}", experiments::ALL.join(", ")),
    }
    Ok(())
}

fn main() {
    if let Err(msg) = run(std::env::args().skip(1).collect()) {
        eprintln!("tablegen: {msg}\n\n{USAGE}");
        std::process::exit(2);
    }
}
