//! `tablegen` — regenerate every experiment table/series of the
//! reproduction.
//!
//! ```text
//! cargo run -p raysearch-bench --bin tablegen [--release] [--json] [e1 e4 ...]
//! ```
//!
//! Without experiment arguments, all of E1–E10 run. With `--json`, rows
//! are emitted as JSON lines (one object per row, tagged with the
//! experiment id) instead of text tables.

use raysearch_bench::experiments::{
    self, e10_boundary, e1_theorem1, e2_regimes, e3_byzantine, e4_rays, e5_alpha, e6_potential,
    e7_orc, e8_fractional, e9_applications,
};

fn emit_json<T: serde::Serialize>(experiment: &str, rows: &[T]) {
    for row in rows {
        let mut value = serde_json::to_value(row).expect("rows serialize");
        if let serde_json::Value::Object(map) = &mut value {
            map.insert(
                "experiment".to_owned(),
                serde_json::Value::String(experiment.to_owned()),
            );
        }
        println!("{}", serde_json::to_string(&value).expect("valid json"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let run_all = wanted.is_empty();
    let want = |id: &str| run_all || wanted.iter().any(|w| w == id);

    let header = |id: &str, title: &str| {
        if !json {
            println!("\n=== {} — {title} ===\n", id.to_uppercase());
        }
    };

    if want("e1") {
        header("e1", "Theorem 1: A(k,f) closed form vs numeric vs measured");
        let rows = e1_theorem1::run(10, 5e3);
        if json {
            emit_json("e1", &rows);
        } else {
            print!("{}", e1_theorem1::table(&rows).render());
        }
    }
    if want("e2") {
        header("e2", "regime map (impossible / trivial / searchable)");
        let rows = e2_regimes::run(10);
        if json {
            emit_json("e2", &rows);
        } else {
            print!("{}", e2_regimes::table(&rows).render());
        }
    }
    if want("e3") {
        header(
            "e3",
            "Byzantine bands: B(k,f) >= A(k,f), conservative UB A(k,2f)",
        );
        let rows = e3_byzantine::run(8);
        if json {
            emit_json("e3", &rows);
        } else {
            print!("{}", e3_byzantine::table(&rows).render());
        }
    }
    if want("e4") {
        header(
            "e4",
            "Theorem 6: A(m,k,f) grid (f = 0 rows answer the open question)",
        );
        let rows = e4_rays::run(6, 7, 5e3);
        if json {
            emit_json("e4", &rows);
        } else {
            print!("{}", e4_rays::table(&rows).render());
        }
    }
    if want("e5") {
        header(
            "e5",
            "alpha ablation: ratio vs geometric base, minimum at alpha*",
        );
        for (m, k, f) in [(2u32, 1u32, 0u32), (2, 3, 1), (3, 4, 1)] {
            let rows = e5_alpha::run(m, k, f, 4, 5e3);
            if json {
                emit_json("e5", &rows);
            } else {
                print!("{}", e5_alpha::table(&rows).render());
                println!();
            }
        }
    }
    if want("e6") {
        header("e6", "potential growth vs mu/mu* (Lemma 5 measured)");
        let rows = e6_potential::run(
            2,
            3,
            1,
            &[0.9, 0.99, 0.999, 0.9999, 1.0, 1.02, 1.05, 1.15],
            5e3,
        );
        if json {
            emit_json("e6", &rows);
        } else {
            print!("{}", e6_potential::table(&rows).render());
        }
    }
    if want("e7") {
        header("e7", "sub-threshold cover reach vs lambda (ineq. (12))");
        for (m, k, f) in [(2u32, 1u32, 0u32), (3, 2, 0)] {
            let rows = e7_orc::run(m, k, f, &[1.02, 0.999, 0.995, 0.98, 0.95, 0.9, 0.8], 1e5);
            if json {
                emit_json("e7", &rows);
            } else {
                print!("{}", e7_orc::table(&rows).render());
                println!();
            }
        }
    }
    if want("e8") {
        header(
            "e8",
            "fractional C(eta) and the rational sandwich (Eq. (11))",
        );
        let rows = e8_fractional::run(&[1.25, 1.5, 1.75, 2.0, std::f64::consts::E, 3.0, 3.5], 64);
        if json {
            emit_json("e8", &rows);
        } else {
            print!("{}", e8_fractional::table(&rows).render());
        }
    }
    if want("e9") {
        header(
            "e9",
            "applications: contract scheduling & hybrid algorithms",
        );
        let rows = e9_applications::run(&[(1, 1), (2, 1), (3, 1), (3, 2), (4, 3), (5, 3)], 1e6);
        if json {
            emit_json("e9", &rows);
        } else {
            print!("{}", e9_applications::table(&rows).render());
        }
    }
    if want("e10") {
        header(
            "e10",
            "boundaries: rho -> 1+ discontinuity and the rho = 2 cow path",
        );
        let rho_rows = e10_boundary::run_rho(12);
        let base_rows = e10_boundary::run_bases(&[1.3, 1.5, 1.8, 2.0, 2.2, 2.5, 3.0, 4.0], 1e4);
        if json {
            emit_json("e10_rho", &rho_rows);
            emit_json("e10_base", &base_rows);
        } else {
            print!("{}", e10_boundary::rho_table(&rho_rows).render());
            println!();
            print!("{}", e10_boundary::base_table(&base_rows).render());
        }
    }

    if !json {
        println!("\nexperiments available: {}", experiments::ALL.join(", "));
    }
}
