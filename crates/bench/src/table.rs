//! Minimal aligned-column table rendering for experiment output.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use raysearch_bench::Table;
/// let mut t = Table::new(vec!["k".into(), "value".into()]);
/// t.push(vec!["1".into(), "9.0".into()]);
/// let s = t.render();
/// assert!(s.contains('k') && s.contains("9.0"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn push(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` compactly for tables.
pub fn fnum(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_owned()
    } else if v == 0.0 || (0.001..1e6).contains(&v.abs()) {
        format!("{v:.6}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.push(vec!["111".into(), "2".into()]);
        t.push(vec!["1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(9.0), "9.000000");
        assert!(fnum(1e9).contains('e'));
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
