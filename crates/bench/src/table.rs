//! Aligned-column table rendering, re-exported from the campaign engine.
//!
//! The renderer moved to [`raysearch_core::campaign`] when the campaign
//! engine absorbed the per-experiment table code; this module keeps the
//! historical `raysearch_bench::Table` / `fnum` paths working.

pub use raysearch_core::campaign::{fnum, Table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_table_renders() {
        let mut t = Table::new(vec!["k".into(), "value".into()]);
        t.push(vec!["1".into(), fnum(9.0)]);
        let s = t.render();
        assert!(s.contains("9.000000"));
    }
}
