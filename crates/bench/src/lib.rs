//! Experiment harness for the `raysearch` reproduction of Kupavskii &
//! Welzl, PODC 2018.
//!
//! The paper is a theory paper: its "evaluation" is a set of closed forms,
//! inequalities and constructions rather than measured tables. This crate
//! regenerates each of them as an executable experiment (E1–E12, indexed
//! in `DESIGN.md` and recorded in `EXPERIMENTS.md`):
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Theorem 1: `A(k,f)` — closed form vs numeric optimum vs measured strategy |
//! | E2 | regime map: trivial / searchable / impossible |
//! | E3 | Byzantine corollary: `B(k,f) ≥ A(k,f)`, the `B(3,1)` lift |
//! | E4 | Theorem 6: `A(m,k,f)` grid, `f = 0` open-question rows |
//! | E5 | appendix strategy: ratio vs base `α`, minimum at `α*` |
//! | E6 | Lemma 5: measured potential growth vs `δ` across `μ/μ*` |
//! | E7 | ineq. (12): sub-threshold covers die; stuck frontier vs `λ` |
//! | E8 | Eq. (11): fractional `C(η)` and the rational sandwich |
//! | E9 | applications: contract scheduling and hybrid algorithms |
//! | E10 | boundaries: `ρ → 1⁺` discontinuity and the `ρ = 2` cow path |
//! | E11 | Monte-Carlo: average-case detection ratios vs the exact `Λ(q/k)` |
//! | E12 | large fleets `k ≤ 4096`: exact ratio vs `Λ(q/k)` across the formerly-overflowing range |
//!
//! Every experiment is a [`Campaign`](raysearch_core::campaign::Campaign):
//! a declarative parameter grid plus a per-cell closure returning one
//! serializable row. The engine shards cells across threads in
//! deterministic grid order and renders a [`Report`](raysearch_core::campaign::Report)
//! as an aligned text table or JSON; the `tablegen` binary drives the
//! whole suite through [`experiments::run_experiment`].
//!
//! # Example: run E1 through the campaign engine
//!
//! ```
//! use raysearch_bench::experiments::e1_theorem1;
//!
//! // Small grid, short horizon: every searchable (k, f) with k ≤ 3.
//! let run = e1_theorem1::campaign(3, 500.0).threads(Some(2)).run();
//! assert_eq!(run.len(), 4); // (1,0), (2,1), (3,1), (3,2)
//!
//! // Typed rows out of the run...
//! let rows = run.rows().collect::<Vec<_>>();
//! assert!((rows[0].closed_form - 9.0).abs() < 1e-12); // the cow path
//!
//! // ...and a type-erased report for rendering.
//! let report = run.report();
//! assert_eq!(report.id(), "e1");
//! assert!(report.render_text().contains("closed_form"));
//! assert_eq!(report.to_value().get("cells").and_then(|v| v.as_i64()), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;
