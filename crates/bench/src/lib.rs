//! Experiment harness for the `raysearch` reproduction of Kupavskii &
//! Welzl, PODC 2018.
//!
//! The paper is a theory paper: its "evaluation" is a set of closed forms,
//! inequalities and constructions rather than measured tables. This crate
//! regenerates each of them as an executable experiment (E1–E10, indexed
//! in `DESIGN.md` and recorded in `EXPERIMENTS.md`):
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Theorem 1: `A(k,f)` — closed form vs numeric optimum vs measured strategy |
//! | E2 | regime map: trivial / searchable / impossible |
//! | E3 | Byzantine corollary: `B(k,f) ≥ A(k,f)`, the `B(3,1)` lift |
//! | E4 | Theorem 6: `A(m,k,f)` grid, `f = 0` open-question rows |
//! | E5 | appendix strategy: ratio vs base `α`, minimum at `α*` |
//! | E6 | Lemma 5: measured potential growth vs `δ` across `μ/μ*` |
//! | E7 | ineq. (12): sub-threshold covers die; stuck frontier vs `λ` |
//! | E8 | Eq. (11): fractional `C(η)` and the rational sandwich |
//! | E9 | applications: contract scheduling and hybrid algorithms |
//! | E10 | boundaries: `ρ → 1⁺` discontinuity and the `ρ = 2` cow path |
//!
//! Every experiment returns serde-serializable rows; the `tablegen` binary
//! renders them as aligned text tables or JSON lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;
