//! The executable experiment suite (see crate docs for the index).
//!
//! Every experiment is a [`Campaign`]
//! — a declarative parameter grid plus a per-cell closure returning one
//! typed row — so grid enumeration, thread sharding and rendering live
//! in one place (`raysearch_core::campaign`). [`run_experiment`] is the
//! registry the `tablegen` binary drives: it maps an experiment id and a
//! [`Config`] to the finished [`Report`]s (E10 produces two, one per row
//! type).

use raysearch_core::campaign::{Campaign, Report};

pub mod e10_boundary;
pub mod e11_montecarlo;
pub mod e12_large_fleet;
pub mod e1_theorem1;
pub mod e2_regimes;
pub mod e3_byzantine;
pub mod e4_rays;
pub mod e5_alpha;
pub mod e6_potential;
pub mod e7_orc;
pub mod e8_fractional;
pub mod e9_applications;

/// Identifiers of all experiments, in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
];

/// Scaling knobs shared by the whole suite (the `tablegen` CLI flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Ceiling for the `k` axes (and `k`-like grid extents) of E1–E4.
    pub max_k: u32,
    /// Worker threads per campaign (`None` = machine parallelism,
    /// `Some(1)` = sequential).
    pub threads: Option<usize>,
    /// Master seed for the stochastic experiments (E11). Each cell's
    /// sample `i` draws from `SplitMix64::keyed(seed, i)`, so the whole
    /// suite is reproducible from this one number.
    pub seed: u64,
    /// Monte-Carlo sample budget per E11 cell.
    pub mc_samples: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_k: 10,
            threads: None,
            seed: 1707, // arXiv:1707.05077
            mc_samples: 20_000,
        }
    }
}

/// What one registered campaign looks like before it runs: its report
/// id, title, and the number of grid cells the default spec enumerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// The report id (`"e1"`, ..., `"e10_rho"`, `"e10_base"`).
    pub id: String,
    /// The human-readable campaign title.
    pub title: String,
    /// Number of grid cells after filtering (the rows a run produces).
    pub cells: usize,
}

/// A generic consumer of an experiment's campaign(s): the single point
/// where the registry's campaign *construction* is shared between
/// running ([`run_experiment`]) and introspection
/// ([`describe_experiment`], `tablegen --list`).
trait CampaignVisitor {
    fn visit<R: Send + serde::Serialize>(&mut self, campaign: Campaign<R>);
}

/// Builds the campaign(s) registered under `id` and feeds them to the
/// visitor. Returns `false` for an unknown id.
fn visit_experiment(id: &str, cfg: &Config, v: &mut impl CampaignVisitor) -> bool {
    let t = cfg.threads;
    match id {
        "e1" => v.visit(e1_theorem1::campaign(cfg.max_k, 5e3).threads(t)),
        "e2" => v.visit(e2_regimes::campaign(cfg.max_k).threads(t)),
        "e3" => v.visit(e3_byzantine::campaign(cfg.max_k).threads(t)),
        "e4" => v.visit(e4_rays::campaign(6, cfg.max_k, 5e3).threads(t)),
        "e5" => v.visit(e5_alpha::campaign(&[(2, 1, 0), (2, 3, 1), (3, 4, 1)], 4, 5e3).threads(t)),
        "e6" => v.visit(
            e6_potential::campaign(
                2,
                3,
                1,
                &[0.9, 0.99, 0.999, 0.9999, 1.0, 1.02, 1.05, 1.15],
                5e3,
            )
            .threads(t),
        ),
        "e7" => v.visit(
            e7_orc::campaign(
                &[(2, 1, 0), (3, 2, 0)],
                &[1.02, 0.999, 0.995, 0.98, 0.95, 0.9, 0.8],
                1e5,
            )
            .threads(t),
        ),
        "e8" => v.visit(
            e8_fractional::campaign(&[1.25, 1.5, 1.75, 2.0, std::f64::consts::E, 3.0, 3.5], 64)
                .threads(t),
        ),
        "e9" => v.visit(
            e9_applications::campaign(&[(1, 1), (2, 1), (3, 1), (3, 2), (4, 3), (5, 3)], 1e6)
                .threads(t),
        ),
        "e10" => {
            v.visit(e10_boundary::rho_campaign(12).threads(t));
            v.visit(
                e10_boundary::base_campaign(&[1.3, 1.5, 1.8, 2.0, 2.2, 2.5, 3.0, 4.0], 1e4)
                    .threads(t),
            );
        }
        "e11" => v.visit(e11_montecarlo::campaign(cfg.mc_samples, cfg.seed, 1e3).threads(t)),
        // the deep horizon is the point: E12 exists to exercise the
        // asymptotic regime the log-domain core opened (its k axis is
        // FLEET_SIZES capped at max(max_k, 128), so default suite runs
        // stay on the cheap k = 128 slice)
        "e12" => v.visit(e12_large_fleet::campaign(cfg.max_k, 1e12).threads(t)),
        _ => return false,
    }
    true
}

/// Runs one experiment's campaign(s) and returns its report(s), or
/// `None` for an unknown id. Ids are the entries of [`ALL`]; `"e10"`
/// yields two reports (`e10_rho`, `e10_base`).
///
/// # Panics
///
/// Panics only if a substrate rejects in-regime parameters (a bug).
pub fn run_experiment(id: &str, cfg: &Config) -> Option<Vec<Report>> {
    struct Runner(Vec<Report>);
    impl CampaignVisitor for Runner {
        fn visit<R: Send + serde::Serialize>(&mut self, campaign: Campaign<R>) {
            self.0.push(campaign.run().report());
        }
    }
    let mut runner = Runner(Vec::new());
    visit_experiment(id, cfg, &mut runner).then_some(runner.0)
}

/// Describes one experiment's campaign(s) — id, title, grid size —
/// *without* evaluating any cell, or `None` for an unknown id. This is
/// what `tablegen --list` prints.
pub fn describe_experiment(id: &str, cfg: &Config) -> Option<Vec<ExperimentInfo>> {
    struct Describer(Vec<ExperimentInfo>);
    impl CampaignVisitor for Describer {
        fn visit<R: Send + serde::Serialize>(&mut self, campaign: Campaign<R>) {
            self.0.push(ExperimentInfo {
                id: campaign.id().to_owned(),
                title: campaign.title().to_owned(),
                cells: campaign.grid().cells().len(),
            });
        }
    }
    let mut describer = Describer(Vec::new());
    visit_experiment(id, cfg, &mut describer).then_some(describer.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids_and_rejects_unknown() {
        let cfg = Config {
            max_k: 4,
            threads: Some(2),
            ..Config::default()
        };
        // cheap spot-checks: the closed-form-only experiments
        for id in ["e2", "e3", "e8", "e10"] {
            let reports = run_experiment(id, &cfg).expect(id);
            assert!(!reports.is_empty(), "{id} produced no report");
            for r in &reports {
                assert!(!r.rows().is_empty(), "{id} report {} is empty", r.id());
                assert_eq!(r.threads(), 2.min(r.rows().len()).max(1));
            }
        }
        assert_eq!(
            run_experiment("e10", &cfg).map(|r| r.len()),
            Some(2),
            "e10 yields rho + base reports"
        );
        assert!(run_experiment("e99", &cfg).is_none());
        assert!(run_experiment("", &cfg).is_none());
    }

    #[test]
    fn describe_matches_what_a_run_produces() {
        let cfg = Config {
            max_k: 3,
            threads: Some(1),
            ..Config::default()
        };
        for id in ALL {
            let infos = describe_experiment(id, &cfg).expect(id);
            assert!(!infos.is_empty(), "{id} described no campaigns");
            for info in &infos {
                assert!(!info.title.is_empty(), "{id} has an untitled campaign");
            }
        }
        assert_eq!(
            describe_experiment("e10", &cfg).map(|i| i.len()),
            Some(2),
            "e10 describes rho + base"
        );
        assert!(describe_experiment("e99", &cfg).is_none());
        // the description's cell count is exactly the run's row count
        for id in ["e2", "e8"] {
            let infos = describe_experiment(id, &cfg).unwrap();
            let reports = run_experiment(id, &cfg).unwrap();
            assert_eq!(infos.len(), reports.len());
            for (info, report) in infos.iter().zip(&reports) {
                assert_eq!(info.id, report.id(), "{id}");
                assert_eq!(info.title, report.title(), "{id}");
                assert_eq!(info.cells, report.rows().len(), "{id}");
            }
        }
    }
}
