//! The executable experiment suite (see crate docs for the index).
//!
//! Every experiment is a [`Campaign`](raysearch_core::campaign::Campaign)
//! — a declarative parameter grid plus a per-cell closure returning one
//! typed row — so grid enumeration, thread sharding and rendering live
//! in one place (`raysearch_core::campaign`). [`run_experiment`] is the
//! registry the `tablegen` binary drives: it maps an experiment id and a
//! [`Config`] to the finished [`Report`]s (E10 produces two, one per row
//! type).

use raysearch_core::campaign::Report;

pub mod e10_boundary;
pub mod e1_theorem1;
pub mod e2_regimes;
pub mod e3_byzantine;
pub mod e4_rays;
pub mod e5_alpha;
pub mod e6_potential;
pub mod e7_orc;
pub mod e8_fractional;
pub mod e9_applications;

/// Identifiers of all experiments, in order.
pub const ALL: &[&str] = &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

/// Scaling knobs shared by the whole suite (the `tablegen` CLI flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Ceiling for the `k` axes (and `k`-like grid extents) of E1–E4.
    pub max_k: u32,
    /// Worker threads per campaign (`None` = machine parallelism,
    /// `Some(1)` = sequential).
    pub threads: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_k: 10,
            threads: None,
        }
    }
}

/// Runs one experiment's campaign(s) and returns its report(s), or
/// `None` for an unknown id. Ids are the entries of [`ALL`]; `"e10"`
/// yields two reports (`e10_rho`, `e10_base`).
///
/// # Panics
///
/// Panics only if a substrate rejects in-regime parameters (a bug).
pub fn run_experiment(id: &str, cfg: &Config) -> Option<Vec<Report>> {
    let t = cfg.threads;
    let reports = match id {
        "e1" => vec![e1_theorem1::campaign(cfg.max_k, 5e3)
            .threads(t)
            .run()
            .report()],
        "e2" => vec![e2_regimes::campaign(cfg.max_k).threads(t).run().report()],
        "e3" => vec![e3_byzantine::campaign(cfg.max_k).threads(t).run().report()],
        "e4" => vec![e4_rays::campaign(6, cfg.max_k, 5e3)
            .threads(t)
            .run()
            .report()],
        "e5" => vec![
            e5_alpha::campaign(&[(2, 1, 0), (2, 3, 1), (3, 4, 1)], 4, 5e3)
                .threads(t)
                .run()
                .report(),
        ],
        "e6" => vec![e6_potential::campaign(
            2,
            3,
            1,
            &[0.9, 0.99, 0.999, 0.9999, 1.0, 1.02, 1.05, 1.15],
            5e3,
        )
        .threads(t)
        .run()
        .report()],
        "e7" => vec![e7_orc::campaign(
            &[(2, 1, 0), (3, 2, 0)],
            &[1.02, 0.999, 0.995, 0.98, 0.95, 0.9, 0.8],
            1e5,
        )
        .threads(t)
        .run()
        .report()],
        "e8" => vec![e8_fractional::campaign(
            &[1.25, 1.5, 1.75, 2.0, std::f64::consts::E, 3.0, 3.5],
            64,
        )
        .threads(t)
        .run()
        .report()],
        "e9" => {
            vec![
                e9_applications::campaign(&[(1, 1), (2, 1), (3, 1), (3, 2), (4, 3), (5, 3)], 1e6)
                    .threads(t)
                    .run()
                    .report(),
            ]
        }
        "e10" => vec![
            e10_boundary::rho_campaign(12).threads(t).run().report(),
            e10_boundary::base_campaign(&[1.3, 1.5, 1.8, 2.0, 2.2, 2.5, 3.0, 4.0], 1e4)
                .threads(t)
                .run()
                .report(),
        ],
        _ => return None,
    };
    Some(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids_and_rejects_unknown() {
        let cfg = Config {
            max_k: 4,
            threads: Some(2),
        };
        // cheap spot-checks: the closed-form-only experiments
        for id in ["e2", "e3", "e8", "e10"] {
            let reports = run_experiment(id, &cfg).expect(id);
            assert!(!reports.is_empty(), "{id} produced no report");
            for r in &reports {
                assert!(!r.rows().is_empty(), "{id} report {} is empty", r.id());
                assert_eq!(r.threads(), 2.min(r.rows().len()).max(1));
            }
        }
        assert_eq!(
            run_experiment("e10", &cfg).map(|r| r.len()),
            Some(2),
            "e10 yields rho + base reports"
        );
        assert!(run_experiment("e99", &cfg).is_none());
        assert!(run_experiment("", &cfg).is_none());
    }
}
