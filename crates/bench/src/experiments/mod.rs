//! The executable experiment suite (see crate docs for the index).

pub mod e10_boundary;
pub mod e1_theorem1;
pub mod e2_regimes;
pub mod e3_byzantine;
pub mod e4_rays;
pub mod e5_alpha;
pub mod e6_potential;
pub mod e7_orc;
pub mod e8_fractional;
pub mod e9_applications;

/// Identifiers of all experiments, in order.
pub const ALL: &[&str] = &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];
