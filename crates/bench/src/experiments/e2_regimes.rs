//! E2 — the regime map of Theorem 1 (and its rays analogue).
//!
//! The paper's case analysis after Theorem 1: `k = f` is hopeless,
//! `k ≥ 2(f+1)` costs nothing, and in between the formula rules. This
//! experiment renders the full `(k, f)` map, checked by running the
//! saturation baseline in the trivial regime.

use raysearch_bounds::{LineInstance, Regime};
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_core::LineEvaluator;
use raysearch_strategies::{baselines::TwoWaySaturation, LineStrategy};

/// One cell of the regime map.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The paper's `s = 2(f+1) − k`.
    pub s: i64,
    /// Regime name: `impossible`, `trivial` or `searchable`.
    pub regime: String,
    /// The optimal ratio, when search is possible.
    pub ratio: Option<f64>,
    /// Measured ratio of the witness strategy in the trivial regime
    /// (`TwoWaySaturation`, must be exactly 1).
    pub trivial_witness: Option<f64>,
}

/// Builds the E2 campaign over the full grid `k ≤ max_k`, `f ≤ k`.
pub fn campaign(max_k: u32) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_u32("k", 1..=max_k)
        .axis_u32("f", 0..=max_k)
        .filter(|c| c.get_u32("f") <= c.get_u32("k"));
    Campaign::new(
        "e2",
        "regime map (impossible / trivial / searchable)",
        grid,
        |cell| {
            let (k, f) = (cell.get_u32("k"), cell.get_u32("f"));
            let instance = LineInstance::new(k, f).expect("validated");
            let regime = instance.regime();
            let trivial_witness = match regime {
                Regime::Trivial => {
                    let s = TwoWaySaturation::new(k, f).expect("trivial regime");
                    let fleet = s.fleet_itineraries(500.0).expect("valid horizon");
                    Some(
                        LineEvaluator::new(f, 1.0, 400.0)
                            .expect("valid range")
                            .evaluate(&fleet)
                            .expect("enough robots")
                            .ratio,
                    )
                }
                _ => None,
            };
            Row {
                k,
                f,
                s: instance.s(),
                regime: match regime {
                    Regime::Impossible => "impossible".to_owned(),
                    Regime::Trivial => "trivial".to_owned(),
                    Regime::Searchable { .. } => "searchable".to_owned(),
                },
                ratio: regime.ratio(),
                trivial_witness,
            }
        },
    )
}

/// Runs E2 over the full grid `k ≤ max_k`, `f ≤ k`.
///
/// # Panics
///
/// Panics if a substrate rejects validated parameters (a bug).
pub fn run(max_k: u32) -> Vec<Row> {
    campaign(max_k).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_boundaries_are_exact() {
        let rows = run(8);
        for r in &rows {
            match r.regime.as_str() {
                "impossible" => assert_eq!(r.k, r.f),
                "trivial" => {
                    assert!(r.s <= 0);
                    assert_eq!(r.ratio, Some(1.0));
                    let w = r.trivial_witness.expect("witness run");
                    assert!((w - 1.0).abs() < 1e-12, "witness ratio {w}");
                }
                "searchable" => {
                    assert!(r.s >= 1 && r.f < r.k);
                    assert!(r.ratio.unwrap() > 1.0);
                }
                other => panic!("unknown regime {other}"),
            }
        }
        // all three regimes occur
        for want in ["impossible", "trivial", "searchable"] {
            assert!(rows.iter().any(|r| r.regime == want));
        }
    }
}
