//! E2 — the regime map of Theorem 1 (and its rays analogue).
//!
//! The paper's case analysis after Theorem 1: `k = f` is hopeless,
//! `k ≥ 2(f+1)` costs nothing, and in between the formula rules. This
//! experiment renders the full `(k, f)` map, checked by running the
//! saturation baseline in the trivial regime.

use raysearch_bounds::{LineInstance, Regime};
use raysearch_core::LineEvaluator;
use raysearch_strategies::{baselines::TwoWaySaturation, LineStrategy};

use crate::table::{fnum, Table};

/// One cell of the regime map.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The paper's `s = 2(f+1) − k`.
    pub s: i64,
    /// Regime name: `impossible`, `trivial` or `searchable`.
    pub regime: String,
    /// The optimal ratio, when search is possible.
    pub ratio: Option<f64>,
    /// Measured ratio of the witness strategy in the trivial regime
    /// (`TwoWaySaturation`, must be exactly 1).
    pub trivial_witness: Option<f64>,
}

/// Runs E2 over the full grid `k ≤ max_k`, `f ≤ k`.
///
/// # Panics
///
/// Panics if a substrate rejects validated parameters (a bug).
pub fn run(max_k: u32) -> Vec<Row> {
    let mut rows = Vec::new();
    for k in 1..=max_k {
        for f in 0..=k {
            let instance = LineInstance::new(k, f).expect("validated");
            let regime = instance.regime();
            let trivial_witness = match regime {
                Regime::Trivial => {
                    let s = TwoWaySaturation::new(k, f).expect("trivial regime");
                    let fleet = s.fleet_itineraries(500.0).expect("valid horizon");
                    Some(
                        LineEvaluator::new(f, 1.0, 400.0)
                            .expect("valid range")
                            .evaluate(&fleet)
                            .expect("enough robots")
                            .ratio,
                    )
                }
                _ => None,
            };
            rows.push(Row {
                k,
                f,
                s: instance.s(),
                regime: match regime {
                    Regime::Impossible => "impossible".to_owned(),
                    Regime::Trivial => "trivial".to_owned(),
                    Regime::Searchable { .. } => "searchable".to_owned(),
                },
                ratio: regime.ratio(),
                trivial_witness,
            });
        }
    }
    rows
}

/// Renders the E2 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        ["k", "f", "s", "regime", "ratio", "trivial witness"]
            .map(String::from)
            .to_vec(),
    );
    for r in rows {
        t.push(vec![
            r.k.to_string(),
            r.f.to_string(),
            r.s.to_string(),
            r.regime.clone(),
            r.ratio.map(fnum).unwrap_or_else(|| "-".to_owned()),
            r.trivial_witness
                .map(fnum)
                .unwrap_or_else(|| "-".to_owned()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_boundaries_are_exact() {
        let rows = run(8);
        for r in &rows {
            match r.regime.as_str() {
                "impossible" => assert_eq!(r.k, r.f),
                "trivial" => {
                    assert!(r.s <= 0);
                    assert_eq!(r.ratio, Some(1.0));
                    let w = r.trivial_witness.expect("witness run");
                    assert!((w - 1.0).abs() < 1e-12, "witness ratio {w}");
                }
                "searchable" => {
                    assert!(r.s >= 1 && r.f < r.k);
                    assert!(r.ratio.unwrap() > 1.0);
                }
                other => panic!("unknown regime {other}"),
            }
        }
        // all three regimes occur
        for want in ["impossible", "trivial", "searchable"] {
            assert!(rows.iter().any(|r| r.regime == want));
        }
    }
}
