//! E10 — the boundary behaviour of the master ratio.
//!
//! Two series (two campaigns, since the rows differ):
//!
//! * **`ρ → 1⁺`** — the paper notes the ratio is `1` *at* `s = 0` but the
//!   formula tends to `3` as `s → 0⁺`: a genuine discontinuity between
//!   the trivial and searchable regimes. The series walks `q/k → 1`.
//! * **`ρ = 2` cow-path base sweep** — at the classic boundary the
//!   formula specializes to `1 + 2b²/(b−1)` over the doubling base `b`,
//!   minimized at `b = 2` with value 9; measured on real trajectories.

use raysearch_bounds::c_orc;
#[cfg(test)]
use raysearch_bounds::lambda_big;
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_core::LineEvaluator;
use raysearch_strategies::{DoublingCowPath, LineStrategy};

/// One point of the `ρ → 1⁺` series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RhoRow {
    /// Robots `k` (with `q = k + 1`, the closest searchable point).
    pub k: u32,
    /// `η = (k+1)/k`.
    pub eta: f64,
    /// `Λ(η)` — tends to 3, never 1.
    pub ratio: f64,
}

/// One point of the cow-path base sweep.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaseRow {
    /// The geometric base `b`.
    pub base: f64,
    /// The closed form `1 + 2b²/(b−1)`.
    pub formula: f64,
    /// Measured on a compiled trajectory.
    pub measured: f64,
}

/// Builds the `ρ → 1⁺` campaign for `k = 1, 2, 4, …, 2^doublings`.
pub fn rho_campaign(doublings: u32) -> Campaign<RhoRow> {
    let grid = ParamGrid::new().axis_u32("k", (0..=doublings).map(|i| 1u32 << i));
    Campaign::new(
        "e10_rho",
        "boundaries: rho -> 1+ discontinuity (Lambda tends to 3, never 1)",
        grid,
        |cell| {
            let k = cell.get_u32("k");
            RhoRow {
                k,
                eta: f64::from(k + 1) / f64::from(k),
                ratio: c_orc(k, k + 1).expect("q > k"),
            }
        },
    )
}

/// Builds the cow-path base-sweep campaign.
pub fn base_campaign(bases: &[f64], horizon: f64) -> Campaign<BaseRow> {
    let grid = ParamGrid::new().axis_f64("base", bases.iter().copied());
    Campaign::new(
        "e10_base",
        "boundaries: rho = 2 cow path, ratio vs doubling base",
        grid,
        move |cell| {
            let base = cell.get_f64("base");
            let cow = DoublingCowPath::new(base).expect("base > 1");
            let fleet = cow
                .fleet_itineraries(horizon * 10.0)
                .expect("valid horizon");
            let measured = LineEvaluator::new(0, 1.0, horizon)
                .expect("valid range")
                .evaluate(&fleet)
                .expect("single robot, f = 0")
                .ratio;
            BaseRow {
                base,
                formula: cow.theoretical_ratio(),
                measured,
            }
        },
    )
}

/// Runs the `ρ → 1⁺` series for `k = 1, 2, 4, …, 2^doublings`.
///
/// # Panics
///
/// Panics if bound computation rejects `q = k+1 > k` (a bug).
pub fn run_rho(doublings: u32) -> Vec<RhoRow> {
    rho_campaign(doublings).run().into_rows()
}

/// Runs the cow-path base sweep.
///
/// # Panics
///
/// Panics if a base `≤ 1` is passed.
pub fn run_bases(bases: &[f64], horizon: f64) -> Vec<BaseRow> {
    base_campaign(bases, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_series_descends_to_three_not_one() {
        let rows = run_rho(10);
        for w in rows.windows(2) {
            assert!(w[1].ratio < w[0].ratio, "not descending");
        }
        let last = rows.last().unwrap();
        assert!(last.ratio > 3.0, "crossed the limit 3");
        assert!(last.ratio < 3.1, "not yet near 3 at k = {}", last.k);
        // the discontinuity: at s = 0 exactly, the regime says 1
        let trivial = raysearch_bounds::LineInstance::new(4, 1).unwrap();
        assert_eq!(trivial.regime().ratio(), Some(1.0));
        // lambda_big(1) = 3 is the one-sided limit
        assert!((lambda_big(1.0).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn base_sweep_minimizes_at_two() {
        let rows = run_bases(&[1.5, 1.8, 2.0, 2.2, 3.0], 1e4);
        let at_two = rows.iter().find(|r| r.base == 2.0).unwrap();
        for r in &rows {
            assert!(
                (r.formula - r.measured).abs() < 1e-2 * r.formula,
                "formula vs measured at base {}",
                r.base
            );
            assert!(r.formula >= at_two.formula - 1e-12);
        }
        assert!((at_two.formula - 9.0).abs() < 1e-12);
    }
}
