//! E4 — Theorem 6: `A(m, k, f)` on `m` rays.
//!
//! The grid includes the `f = 0` rows that resolve the parallel `m`-ray
//! search question of Baeza-Yates–Culberson–Rawlins, Kao–Ma–Sipser–Yin and
//! Bernstein–Finkelstein–Zilberstein, and the `m = 2` rows that reduce to
//! Theorem 1. Each value is cross-checked by the exact evaluator on the
//! appendix strategy.

use raysearch_bounds::{a_line, RayInstance, Regime};
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_core::RayEvaluator;
use raysearch_strategies::{CyclicExponential, RayStrategy};

/// One row of the E4 grid.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// `q = m(f+1)`.
    pub q: u32,
    /// `η = q/k`.
    pub eta: f64,
    /// Closed form `A(m,k,f)` (Eq. (9)).
    pub closed_form: f64,
    /// Measured ratio of the appendix strategy.
    pub measured: f64,
    /// For `m = 2`: the Theorem 1 value (must coincide).
    pub line_value: Option<f64>,
}

/// Builds the E4 campaign over searchable instances with `m ≤ max_m`,
/// `k ≤ max_k`, `f ≤ 2`.
pub fn campaign(max_m: u32, max_k: u32, horizon: f64) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_u32("m", 2..=max_m)
        .axis_u32("k", 1..=max_k)
        .axis_u32("f", 0..=2)
        .filter(|c| c.get_u32("f") < c.get_u32("k"))
        .filter(|c| {
            RayInstance::new(c.get_u32("m"), c.get_u32("k"), c.get_u32("f"))
                .map(|i| matches!(i.regime(), Regime::Searchable { .. }))
                .unwrap_or(false)
        });
    Campaign::new(
        "e4",
        "Theorem 6: A(m,k,f) grid (f = 0 rows answer the open question)",
        grid,
        move |cell| {
            let (m, k, f) = (cell.get_u32("m"), cell.get_u32("k"), cell.get_u32("f"));
            let instance = RayInstance::new(m, k, f).expect("validated");
            let Regime::Searchable { ratio: closed_form } = instance.regime() else {
                unreachable!("grid filter admits only searchable cells");
            };
            let strategy = CyclicExponential::optimal(m, k, f).expect("searchable");
            let fleet = strategy.fleet_tours(horizon * 10.0).expect("valid horizon");
            let measured = RayEvaluator::new(m as usize, f, 1.0, horizon)
                .expect("valid range")
                .evaluate(&fleet)
                .expect("fleet large enough")
                .ratio;
            Row {
                m,
                k,
                f,
                q: instance.q(),
                eta: instance.eta(),
                closed_form,
                measured,
                line_value: (m == 2).then(|| a_line(k, f).expect("same regime")),
            }
        },
    )
}

/// Runs E4 over searchable instances with `m ≤ max_m`, `k ≤ max_k`,
/// `f ≤ 2`.
///
/// # Panics
///
/// Panics if a substrate rejects validated parameters (a bug).
pub fn run(max_m: u32, max_k: u32, horizon: f64) -> Vec<Row> {
    campaign(max_m, max_k, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_tight_and_consistent() {
        let rows = run(4, 5, 2e3);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                (r.closed_form - r.measured).abs() < 2e-2 * r.closed_form,
                "(m={}, k={}, f={}): closed {} vs measured {}",
                r.m,
                r.k,
                r.f,
                r.closed_form,
                r.measured
            );
            if let Some(line) = r.line_value {
                assert!((line - r.closed_form).abs() < 1e-12);
            }
        }
        // the classic single-robot m-ray constants appear on the f = 0 rows
        let c3 = rows
            .iter()
            .find(|r| (r.m, r.k, r.f) == (3, 1, 0))
            .expect("3-ray single robot row");
        assert!((c3.closed_form - 14.5).abs() < 1e-9);
    }
}
