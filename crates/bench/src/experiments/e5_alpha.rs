//! E5 — the α-ablation of the appendix strategy (figure: ratio vs base).
//!
//! The cyclic exponential strategy's worst-case ratio is
//! `2·α^q/(α^k−1) + 1`; the appendix minimizes it at
//! `α* = (q/(q−k))^(1/k)`. This experiment sweeps `α` around `α*` and
//! reports both the formula and the *measured* ratio — their agreement
//! validates the formula, and the minimum's location validates the
//! calculus.

use raysearch_bounds::{cyclic_ratio, optimal_alpha, RayInstance};
use raysearch_core::campaign::{Campaign, ParamGrid, ParamValue};
use raysearch_core::RayEvaluator;
use raysearch_strategies::{CyclicExponential, RayStrategy};

/// One point of the ratio-vs-α series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The geometric base being evaluated.
    pub alpha: f64,
    /// Whether this is the optimal base `α*`.
    pub is_optimal: bool,
    /// The appendix formula `2·α^q/(α^k−1)+1`.
    pub formula: f64,
    /// The measured worst-case ratio of the strategy at this base.
    pub measured: f64,
}

/// Builds the E5 campaign: for each `(m, k, f)` instance, `steps` bases
/// on each side of `α*` (geometric spacing relative to `α* − 1`).
pub fn campaign(instances: &[(u32, u32, u32)], steps: i32, horizon: f64) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_zip(
            &["m", "k", "f"],
            instances
                .iter()
                .map(|&(m, k, f)| vec![m.into(), k.into(), f.into()])
                .collect::<Vec<Vec<ParamValue>>>(),
        )
        .axis_i64("j", (-steps..=steps).map(i64::from));
    Campaign::new(
        "e5",
        "alpha ablation: ratio vs geometric base, minimum at alpha*",
        grid,
        move |cell| {
            let (m, k, f) = (cell.get_u32("m"), cell.get_u32("k"), cell.get_u32("f"));
            let j = i32::try_from(cell.get_i64("j")).expect("small step index");
            let instance = RayInstance::new(m, k, f).expect("validated");
            let q = instance.q();
            let astar = optimal_alpha(q, k).expect("searchable");
            // scale relative to (alpha* - 1) so every base stays > 1
            let alpha = 1.0 + (astar - 1.0) * 1.25f64.powi(j);
            let strategy = CyclicExponential::with_alpha(m, k, f, alpha).expect("alpha > 1");
            let fleet = strategy.fleet_tours(horizon * 10.0).expect("valid horizon");
            let measured = RayEvaluator::new(m as usize, f, 1.0, horizon)
                .expect("valid range")
                .evaluate(&fleet)
                .expect("fleet large enough")
                .ratio;
            Row {
                m,
                k,
                f,
                alpha,
                is_optimal: j == 0,
                formula: cyclic_ratio(alpha, q, k).expect("alpha > 1"),
                measured,
            }
        },
    )
}

/// Sweeps `α` around `α*` for one instance; `steps` points on each side.
///
/// # Panics
///
/// Panics on out-of-regime parameters (callers pass searchable
/// instances).
pub fn run(m: u32, k: u32, f: u32, steps: i32, horizon: f64) -> Vec<Row> {
    campaign(&[(m, k, f)], steps, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_sits_at_alpha_star() {
        let rows = run(2, 3, 1, 3, 2e3);
        let opt = rows.iter().find(|r| r.is_optimal).unwrap();
        for r in &rows {
            assert!(
                r.measured >= opt.measured - 1e-9,
                "alpha {} beats alpha* ({} < {})",
                r.alpha,
                r.measured,
                opt.measured
            );
            assert!(
                (r.measured - r.formula).abs() < 2e-2 * r.formula,
                "formula and measurement disagree at alpha {}",
                r.alpha
            );
        }
        let theory = raysearch_bounds::a_line(3, 1).unwrap();
        assert!((opt.measured - theory).abs() < 1e-2 * theory);
    }

    #[test]
    fn multi_instance_campaign_keeps_instance_order() {
        let instances = [(2u32, 1u32, 0u32), (2, 3, 1)];
        let rows = campaign(&instances, 1, 1e3).run().into_rows();
        assert_eq!(rows.len(), 2 * 3);
        // first instance's sweep precedes the second's
        assert_eq!((rows[0].m, rows[0].k, rows[0].f), (2, 1, 0));
        assert_eq!((rows[3].m, rows[3].k, rows[3].f), (2, 3, 1));
        // one optimal point per instance
        assert_eq!(rows.iter().filter(|r| r.is_optimal).count(), 2);
    }
}
