//! E5 — the α-ablation of the appendix strategy (figure: ratio vs base).
//!
//! The cyclic exponential strategy's worst-case ratio is
//! `2·α^q/(α^k−1) + 1`; the appendix minimizes it at
//! `α* = (q/(q−k))^(1/k)`. This experiment sweeps `α` around `α*` and
//! reports both the formula and the *measured* ratio — their agreement
//! validates the formula, and the minimum's location validates the
//! calculus.

use raysearch_bounds::{cyclic_ratio, optimal_alpha, RayInstance};
use raysearch_core::RayEvaluator;
use raysearch_strategies::{CyclicExponential, RayStrategy};

use crate::table::{fnum, Table};

/// One point of the ratio-vs-α series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The geometric base being evaluated.
    pub alpha: f64,
    /// Whether this is the optimal base `α*`.
    pub is_optimal: bool,
    /// The appendix formula `2·α^q/(α^k−1)+1`.
    pub formula: f64,
    /// The measured worst-case ratio of the strategy at this base.
    pub measured: f64,
}

/// Sweeps `α` around `α*` for one instance; `steps` points on each side.
///
/// # Panics
///
/// Panics on out-of-regime parameters (callers pass searchable
/// instances).
pub fn run(m: u32, k: u32, f: u32, steps: i32, horizon: f64) -> Vec<Row> {
    let instance = RayInstance::new(m, k, f).expect("validated");
    let q = instance.q();
    let astar = optimal_alpha(q, k).expect("searchable");
    let evaluator = RayEvaluator::new(m as usize, f, 1.0, horizon).expect("valid range");
    let mut rows = Vec::new();
    for j in -steps..=steps {
        // scale relative to (alpha* - 1) so every base stays > 1
        let alpha = 1.0 + (astar - 1.0) * 1.25f64.powi(j);
        let strategy = CyclicExponential::with_alpha(m, k, f, alpha).expect("alpha > 1");
        let fleet = strategy.fleet_tours(horizon * 10.0).expect("valid horizon");
        let measured = evaluator
            .evaluate(&fleet)
            .expect("fleet large enough")
            .ratio;
        rows.push(Row {
            m,
            k,
            f,
            alpha,
            is_optimal: j == 0,
            formula: cyclic_ratio(alpha, q, k).expect("alpha > 1"),
            measured,
        });
    }
    rows
}

/// Renders the E5 series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        ["m", "k", "f", "alpha", "opt?", "formula", "measured"]
            .map(String::from)
            .to_vec(),
    );
    for r in rows {
        t.push(vec![
            r.m.to_string(),
            r.k.to_string(),
            r.f.to_string(),
            format!("{:.6}", r.alpha),
            if r.is_optimal {
                "*".to_owned()
            } else {
                String::new()
            },
            fnum(r.formula),
            fnum(r.measured),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_sits_at_alpha_star() {
        let rows = run(2, 3, 1, 3, 2e3);
        let opt = rows.iter().find(|r| r.is_optimal).unwrap();
        for r in &rows {
            assert!(
                r.measured >= opt.measured - 1e-9,
                "alpha {} beats alpha* ({} < {})",
                r.alpha,
                r.measured,
                opt.measured
            );
            assert!(
                (r.measured - r.formula).abs() < 2e-2 * r.formula,
                "formula and measurement disagree at alpha {}",
                r.alpha
            );
        }
        let theory = raysearch_bounds::a_line(3, 1).unwrap();
        assert!((opt.measured - theory).abs() < 1e-2 * theory);
    }
}
