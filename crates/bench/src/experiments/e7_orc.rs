//! E7 — inequality (12) quantified: how far sub-threshold covers reach.
//!
//! The finite-horizon form of the lower bound says a `q`-fold λ-cover of
//! `[1, N]` is impossible for `λ` below the threshold once `N` is large
//! enough — and the needed `N` blows up as `λ` approaches the threshold.
//! This experiment measures exactly that: for a sweep of `λ/λ₀`, the
//! distance at which the optimal fleet's covering first fails (via the
//! coverage sweep), alongside the exact-assignment stuck frontier.

use raysearch_bounds::{a_rays, lambda_to_mu, RayInstance};
use raysearch_cover::settings::{merge_fleet_intervals, OrcSetting};
use raysearch_cover::{CoverageProfile, ExactAssigner};
use raysearch_strategies::{CyclicExponential, RayStrategy};

use crate::table::{fnum, Table};

/// One point of the reach-vs-λ series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// The fraction `λ/λ₀` probed.
    pub lambda_fraction: f64,
    /// The absolute `λ`.
    pub lambda: f64,
    /// First distance where `q`-fold coverage fails (sweep witness);
    /// `None` if covered through the whole horizon.
    pub sweep_witness: Option<f64>,
    /// Where the exact assignment got stuck; `None` if it reached the
    /// horizon.
    pub stuck_frontier: Option<f64>,
}

/// Runs E7 for one instance across `λ/λ₀` fractions over `[1, horizon]`.
///
/// # Panics
///
/// Panics on out-of-regime parameters.
pub fn run(m: u32, k: u32, f: u32, fractions: &[f64], horizon: f64) -> Vec<Row> {
    let instance = RayInstance::new(m, k, f).expect("validated");
    let q = instance.q() as usize;
    let lambda0 = a_rays(m, k, f).expect("searchable");
    let strategy = CyclicExponential::optimal(m, k, f).expect("searchable");
    let fleet = strategy.fleet_tours(horizon * 10.0).expect("valid horizon");

    fractions
        .iter()
        .map(|&frac| {
            let lambda = frac * lambda0;
            let mu = lambda_to_mu(lambda).expect("lambda > 1");
            let per_robot: Vec<_> = fleet
                .iter()
                .enumerate()
                .map(|(r, tour)| {
                    let mut ivs =
                        OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu)
                            .expect("valid mu");
                    for iv in &mut ivs {
                        iv.robot = r;
                    }
                    ivs
                })
                .collect();
            let merged = merge_fleet_intervals(per_robot.clone());
            let profile = CoverageProfile::build(&merged, 1.0, horizon).expect("valid range");
            let sweep_witness = profile.first_undercovered(q);
            let (_, stuck_frontier) = ExactAssigner::new(q, mu)
                .expect("valid q, mu")
                .assign_partial(&per_robot, horizon)
                .expect("valid target");
            Row {
                lambda_fraction: frac,
                lambda,
                sweep_witness,
                stuck_frontier,
            }
        })
        .collect()
}

/// Renders the E7 series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        [
            "lambda/lambda0",
            "lambda",
            "sweep witness",
            "assignment stuck at",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in rows {
        t.push(vec![
            format!("{:.4}", r.lambda_fraction),
            fnum(r.lambda),
            r.sweep_witness
                .map(fnum)
                .unwrap_or_else(|| "covered".to_owned()),
            r.stuck_frontier
                .map(fnum)
                .unwrap_or_else(|| "reached horizon".to_owned()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_shrinks_as_lambda_drops() {
        let rows = run(2, 1, 0, &[1.02, 0.999, 0.99, 0.95, 0.85], 1e5);
        // above the bound: fully covered
        assert!(rows[0].sweep_witness.is_none());
        assert!(rows[0].stuck_frontier.is_none());
        // below: witnesses exist and move inward monotonically
        let mut last = f64::INFINITY;
        for r in &rows[1..] {
            let w = r.sweep_witness.expect("sub-threshold must fail");
            assert!(
                w <= last * (1.0 + 1e-9),
                "witness moved outward at {}",
                r.lambda_fraction
            );
            last = w;
            // the assignment agrees qualitatively
            assert!(r.stuck_frontier.is_some());
        }
        // far below, failure is immediate
        assert!(last < 50.0);
    }
}
