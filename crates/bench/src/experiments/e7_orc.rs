//! E7 — inequality (12) quantified: how far sub-threshold covers reach.
//!
//! The finite-horizon form of the lower bound says a `q`-fold λ-cover of
//! `[1, N]` is impossible for `λ` below the threshold once `N` is large
//! enough — and the needed `N` blows up as `λ` approaches the threshold.
//! This experiment measures exactly that: for a sweep of `λ/λ₀`, the
//! distance at which the optimal fleet's covering first fails (via the
//! coverage sweep), alongside the exact-assignment stuck frontier.

use raysearch_bounds::{a_rays, lambda_to_mu, RayInstance};
use raysearch_core::campaign::{Campaign, ParamGrid, ParamValue};
use raysearch_cover::settings::{merge_fleet_intervals, OrcSetting};
use raysearch_cover::{CoverageProfile, ExactAssigner};
use raysearch_strategies::{CyclicExponential, RayStrategy};

/// One point of the reach-vs-λ series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The fraction `λ/λ₀` probed.
    pub lambda_fraction: f64,
    /// The absolute `λ`.
    pub lambda: f64,
    /// First distance where `q`-fold coverage fails (sweep witness);
    /// `None` if covered through the whole horizon.
    pub sweep_witness: Option<f64>,
    /// Where the exact assignment got stuck; `None` if it reached the
    /// horizon.
    pub stuck_frontier: Option<f64>,
}

/// Builds the E7 campaign: every `(m, k, f)` instance crossed with the
/// `λ/λ₀` fractions, over `[1, horizon]`.
pub fn campaign(instances: &[(u32, u32, u32)], fractions: &[f64], horizon: f64) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_zip(
            &["m", "k", "f"],
            instances
                .iter()
                .map(|&(m, k, f)| vec![m.into(), k.into(), f.into()])
                .collect::<Vec<Vec<ParamValue>>>(),
        )
        .axis_f64("lambda_fraction", fractions.iter().copied());
    // λ0 and the fleet are per-instance, not per-cell: build them once
    let prepared: Vec<_> = instances
        .iter()
        .map(|&(m, k, f)| {
            let instance = RayInstance::new(m, k, f).expect("validated");
            let lambda0 = a_rays(m, k, f).expect("searchable");
            let strategy = CyclicExponential::optimal(m, k, f).expect("searchable");
            let fleet = strategy.fleet_tours(horizon * 10.0).expect("valid horizon");
            ((m, k, f), instance.q() as usize, lambda0, fleet)
        })
        .collect();
    Campaign::new(
        "e7",
        "sub-threshold cover reach vs lambda (ineq. (12); '-' = covered / reached horizon)",
        grid,
        move |cell| {
            let (m, k, f) = (cell.get_u32("m"), cell.get_u32("k"), cell.get_u32("f"));
            let frac = cell.get_f64("lambda_fraction");
            let (_, q, lambda0, fleet) = prepared
                .iter()
                .find(|(mkf, ..)| *mkf == (m, k, f))
                .expect("cell instance was prepared");
            let (q, lambda0) = (*q, *lambda0);
            let lambda = frac * lambda0;
            let mu = lambda_to_mu(lambda).expect("lambda > 1");
            let per_robot: Vec<_> = fleet
                .iter()
                .enumerate()
                .map(|(r, tour)| {
                    let mut ivs =
                        OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu)
                            .expect("valid mu");
                    for iv in &mut ivs {
                        iv.robot = r;
                    }
                    ivs
                })
                .collect();
            let merged = merge_fleet_intervals(per_robot.clone());
            let profile = CoverageProfile::build(&merged, 1.0, horizon).expect("valid range");
            let sweep_witness = profile.first_undercovered(q);
            let (_, stuck_frontier) = ExactAssigner::new(q, mu)
                .expect("valid q, mu")
                .assign_partial(&per_robot, horizon)
                .expect("valid target");
            Row {
                m,
                k,
                f,
                lambda_fraction: frac,
                lambda,
                sweep_witness,
                stuck_frontier,
            }
        },
    )
}

/// Runs E7 for one instance across `λ/λ₀` fractions over `[1, horizon]`.
///
/// # Panics
///
/// Panics on out-of-regime parameters.
pub fn run(m: u32, k: u32, f: u32, fractions: &[f64], horizon: f64) -> Vec<Row> {
    campaign(&[(m, k, f)], fractions, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_shrinks_as_lambda_drops() {
        let rows = run(2, 1, 0, &[1.02, 0.999, 0.99, 0.95, 0.85], 1e5);
        // above the bound: fully covered
        assert!(rows[0].sweep_witness.is_none());
        assert!(rows[0].stuck_frontier.is_none());
        // below: witnesses exist and move inward monotonically
        let mut last = f64::INFINITY;
        for r in &rows[1..] {
            let w = r.sweep_witness.expect("sub-threshold must fail");
            assert!(
                w <= last * (1.0 + 1e-9),
                "witness moved outward at {}",
                r.lambda_fraction
            );
            last = w;
            // the assignment agrees qualitatively
            assert!(r.stuck_frontier.is_some());
        }
        // far below, failure is immediate
        assert!(last < 50.0);
    }
}
