//! E3 — the Byzantine corollary: `B(k,f) ≥ A(k,f)`.
//!
//! Crash behaviour is available to Byzantine robots, so every Theorem 1
//! value is a Byzantine lower bound; for `(3,1)` this lifts the prior
//! `3.93` (ISAAC'16) to `≈ 5.2331`. The table also shows the sound
//! conservative verifier's guarantee `A(k, 2f)` (wait for `f+1`
//! corroborating claims ⇒ tolerate `2f` adversarial first-visitors) where
//! that instance is searchable — the band `[A(k,f), A(k,2f)]` is where
//! the true `B(k,f)` lives for these strategies.

#[cfg(test)]
use raysearch_bounds::literature::PRIOR_BYZANTINE_LB_3_1;
use raysearch_bounds::literature::{
    byzantine_lower_bound, byzantine_table, prior_byzantine_lower_bound,
};
use raysearch_bounds::{a_line, LineInstance, Regime};
use raysearch_core::campaign::{Campaign, ParamGrid};

/// One row of the Byzantine band table.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of robots.
    pub k: u32,
    /// Number of Byzantine robots.
    pub f: u32,
    /// Prior published lower bound, when quoted in the paper.
    pub prior_lower: Option<f64>,
    /// The new lower bound `A(k,f)` from Theorem 1.
    pub new_lower: f64,
    /// The conservative verifier's upper bound `A(k, 2f)`, when the
    /// doubled-fault instance is searchable.
    pub conservative_upper: Option<f64>,
}

/// Builds the E3 campaign over the nontrivial grid with `k ≤ max_k`.
///
/// The `(k, f)` row set is taken verbatim from
/// [`byzantine_table`] —
/// the literature module owns the regime window, this campaign only adds
/// the conservative-verifier column.
pub fn campaign(max_k: u32) -> Campaign<Row> {
    let grid = ParamGrid::new().axis_zip(
        &["k", "f"],
        byzantine_table(max_k)
            .expect("grid parameters are valid")
            .into_iter()
            .map(|r| vec![r.k.into(), r.f.into()])
            .collect::<Vec<_>>(),
    );
    Campaign::new(
        "e3",
        "Byzantine bands: B(k,f) >= A(k,f), conservative UB A(k,2f)",
        grid,
        |cell| {
            let (k, f) = (cell.get_u32("k"), cell.get_u32("f"));
            let conservative_upper =
                LineInstance::new(k, (2 * f).min(k))
                    .ok()
                    .and_then(|i| match i.regime() {
                        Regime::Searchable { .. } if 2 * f < k => {
                            Some(a_line(k, 2 * f).expect("searchable"))
                        }
                        _ => None,
                    });
            Row {
                k,
                f,
                prior_lower: prior_byzantine_lower_bound(k, f),
                new_lower: byzantine_lower_bound(k, f).expect("searchable regime"),
                conservative_upper,
            }
        },
    )
}

/// Runs E3 over the nontrivial grid with `k ≤ max_k`.
///
/// # Panics
///
/// Panics if a substrate rejects validated parameters (a bug).
pub fn run(max_k: u32) -> Vec<Row> {
    campaign(max_k).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b31_lift_is_present() {
        let rows = run(6);
        let r = rows.iter().find(|r| (r.k, r.f) == (3, 1)).unwrap();
        assert_eq!(r.prior_lower, Some(PRIOR_BYZANTINE_LB_3_1));
        assert!(r.new_lower > 5.23);
        // conservative upper for (3,1) is A(3,2) = 9
        assert!((r.conservative_upper.unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn bands_are_ordered() {
        for r in run(8) {
            if let Some(u) = r.conservative_upper {
                assert!(
                    r.new_lower <= u + 1e-12,
                    "band inverted at (k={}, f={})",
                    r.k,
                    r.f
                );
            }
            if let Some(p) = r.prior_lower {
                assert!(r.new_lower > p, "no improvement at (k={}, f={})", r.k, r.f);
            }
        }
    }

    #[test]
    fn grid_matches_literature_table() {
        // the campaign's grid must reproduce byzantine_table exactly,
        // through the default tablegen extent (max_k = 10)
        let rows = run(10);
        let lit = byzantine_table(10).unwrap();
        assert_eq!(rows.len(), lit.len());
        for (r, l) in rows.iter().zip(&lit) {
            assert_eq!((r.k, r.f), (l.k, l.f));
            assert!((r.new_lower - l.new_lower_bound).abs() < 1e-12);
            assert_eq!(r.prior_lower, l.prior_lower_bound);
        }
    }
}
