//! E3 — the Byzantine corollary: `B(k,f) ≥ A(k,f)`.
//!
//! Crash behaviour is available to Byzantine robots, so every Theorem 1
//! value is a Byzantine lower bound; for `(3,1)` this lifts the prior
//! `3.93` (ISAAC'16) to `≈ 5.2331`. The table also shows the sound
//! conservative verifier's guarantee `A(k, 2f)` (wait for `f+1`
//! corroborating claims ⇒ tolerate `2f` adversarial first-visitors) where
//! that instance is searchable — the band `[A(k,f), A(k,2f)]` is where
//! the true `B(k,f)` lives for these strategies.

use raysearch_bounds::literature::byzantine_table;
#[cfg(test)]
use raysearch_bounds::literature::PRIOR_BYZANTINE_LB_3_1;
use raysearch_bounds::{a_line, LineInstance, Regime};

use crate::table::{fnum, Table};

/// One row of the Byzantine band table.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of robots.
    pub k: u32,
    /// Number of Byzantine robots.
    pub f: u32,
    /// Prior published lower bound, when quoted in the paper.
    pub prior_lower: Option<f64>,
    /// The new lower bound `A(k,f)` from Theorem 1.
    pub new_lower: f64,
    /// The conservative verifier's upper bound `A(k, 2f)`, when the
    /// doubled-fault instance is searchable.
    pub conservative_upper: Option<f64>,
}

/// Runs E3 over the nontrivial grid with `k ≤ max_k`.
///
/// # Panics
///
/// Panics if a substrate rejects validated parameters (a bug).
pub fn run(max_k: u32) -> Vec<Row> {
    byzantine_table(max_k)
        .expect("grid parameters are valid")
        .into_iter()
        .map(|r| {
            let conservative_upper =
                LineInstance::new(r.k, (2 * r.f).min(r.k))
                    .ok()
                    .and_then(|i| match i.regime() {
                        Regime::Searchable { .. } if 2 * r.f < r.k => {
                            Some(a_line(r.k, 2 * r.f).expect("searchable"))
                        }
                        _ => None,
                    });
            Row {
                k: r.k,
                f: r.f,
                prior_lower: r.prior_lower_bound,
                new_lower: r.new_lower_bound,
                conservative_upper,
            }
        })
        .collect()
}

/// Renders the E3 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        [
            "k",
            "f",
            "prior LB",
            "new LB = A(k,f)",
            "conservative UB = A(k,2f)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in rows {
        t.push(vec![
            r.k.to_string(),
            r.f.to_string(),
            r.prior_lower.map(fnum).unwrap_or_else(|| "-".to_owned()),
            fnum(r.new_lower),
            r.conservative_upper
                .map(fnum)
                .unwrap_or_else(|| "-".to_owned()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b31_lift_is_present() {
        let rows = run(6);
        let r = rows.iter().find(|r| (r.k, r.f) == (3, 1)).unwrap();
        assert_eq!(r.prior_lower, Some(PRIOR_BYZANTINE_LB_3_1));
        assert!(r.new_lower > 5.23);
        // conservative upper for (3,1) is A(3,2) = 9
        assert!((r.conservative_upper.unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn bands_are_ordered() {
        for r in run(8) {
            if let Some(u) = r.conservative_upper {
                assert!(
                    r.new_lower <= u + 1e-12,
                    "band inverted at (k={}, f={})",
                    r.k,
                    r.f
                );
            }
            if let Some(p) = r.prior_lower {
                assert!(r.new_lower > p, "no improvement at (k={}, f={})", r.k, r.f);
            }
        }
    }
}
