//! E1 — Theorem 1: `A(k, f)` on the line, three independent ways.
//!
//! For every searchable `(k, f)` the table shows the closed form of
//! Eq. (1), an independent numeric minimization of the strategy family's
//! ratio `2·α^q/(α^k−1) + 1`, the *measured* worst-case ratio of the
//! optimal strategy on the exact evaluator, and the replicated-doubling
//! baseline (always 9). Matching columns are the tightness of Theorem 1.

use raysearch_bounds::{cyclic_ratio, numeric::golden_section_min, LineInstance, Regime};
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_core::LineEvaluator;
use raysearch_strategies::{CyclicExponential, LineStrategy};

/// One row of the E1 table.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// `ρ = 2(f+1)/k`.
    pub rho: f64,
    /// Closed form `A(k,f)` (Eq. (1)).
    pub closed_form: f64,
    /// Numeric minimum of `2·α^q/(α^k−1)+1` over `α` (golden section).
    pub numeric_min: f64,
    /// Measured sup of `τ(x)/|x|` of the optimal strategy.
    pub measured: f64,
    /// Replicated-doubling baseline ratio (9 for every `f < k`).
    pub baseline: f64,
}

/// Builds the E1 campaign over all searchable `(k, f)` with `k ≤ max_k`.
pub fn campaign(max_k: u32, horizon: f64) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_u32("k", 1..=max_k)
        .axis_u32("f", 0..max_k.max(1))
        .filter(|c| c.get_u32("f") < c.get_u32("k"))
        .filter(|c| {
            LineInstance::new(c.get_u32("k"), c.get_u32("f"))
                .map(|i| matches!(i.regime(), Regime::Searchable { .. }))
                .unwrap_or(false)
        });
    Campaign::new(
        "e1",
        "Theorem 1: A(k,f) closed form vs numeric vs measured",
        grid,
        move |cell| {
            let (k, f) = (cell.get_u32("k"), cell.get_u32("f"));
            let instance = LineInstance::new(k, f).expect("validated");
            let Regime::Searchable { ratio: closed_form } = instance.regime() else {
                unreachable!("grid filter admits only searchable cells");
            };
            let q = instance.q();
            let (_, numeric_min) = golden_section_min(
                |a| cyclic_ratio(a, q, k).unwrap_or(f64::INFINITY),
                1.0 + 1e-9,
                32.0,
                1e-10,
            )
            .expect("valid interval");
            let strategy = CyclicExponential::optimal(2, k, f)
                .expect("searchable regime")
                .to_line()
                .expect("m = 2");
            let fleet = strategy
                .fleet_itineraries(horizon * 10.0)
                .expect("valid horizon");
            let measured = LineEvaluator::new(f, 1.0, horizon)
                .expect("valid range")
                .evaluate(&fleet)
                .expect("fleet large enough")
                .ratio;
            Row {
                k,
                f,
                rho: instance.rho(),
                closed_form,
                numeric_min,
                measured,
                baseline: 9.0,
            }
        },
    )
}

/// Runs E1 over all searchable `(k, f)` with `k ≤ max_k`.
///
/// # Panics
///
/// Panics if any substrate rejects in-regime parameters (a bug).
pub fn run(max_k: u32, horizon: f64) -> Vec<Row> {
    campaign(max_k, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_agree() {
        let rows = run(5, 2e3);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                (r.closed_form - r.numeric_min).abs() < 1e-6,
                "closed vs numeric at (k={}, f={})",
                r.k,
                r.f
            );
            assert!(
                (r.closed_form - r.measured).abs() < 1e-2 * r.closed_form,
                "closed vs measured at (k={}, f={})",
                r.k,
                r.f
            );
            // the optimum never loses to the baseline
            assert!(r.closed_form <= r.baseline + 1e-9);
        }
        // the (1,0) row is the classic cow path
        let cow = rows.iter().find(|r| (r.k, r.f) == (1, 0)).unwrap();
        assert!((cow.closed_form - 9.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_every_row() {
        let report = campaign(4, 1e3).threads(Some(2)).run().report();
        assert_eq!(report.id(), "e1");
        assert!(!report.rows().is_empty());
        let text = report.render_text();
        assert!(text.contains("closed_form") && text.contains("numeric_min"));
    }
}
