//! E12 — the asymptotic large-fleet regime `k ∈ {128, …, 4096}`.
//!
//! The paper's bound `Λ(η)` is an asymptotic statement: the gap between
//! the exact evaluator and the closed form is governed by `η = q/k`,
//! and the near-majority-faulty instances studied by the related work
//! (Bonato et al. 2020; Czyzowicz et al.) live at large `k` with
//! `f ≈ k/2` on the line. Before the log-domain numeric core this whole
//! regime was unreachable — turn points overflowed `f64` from
//! `k ≈ 139` — so E12 is the workload that the overflow fix opens: for
//! each fleet size it sweeps `f` across the searchable band
//! (`η` from just above 1 to the classic 2) and pins the measured exact
//! ratio against `Λ(η)` at a deep horizon.
//!
//! Every row must be finite with `measured ≤ closed_form` and relative
//! error at the `10^-6` scale; the CI large-fleet smoke job asserts
//! exactly that over the emitted JSON.

use std::sync::Arc;

use raysearch_bounds::{a_rays, RayInstance, Regime};
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_core::{evaluate_optimal_cached, CompileMemo};

/// The fleet sizes of the sweep: doublings from the last size the old
/// linear pipeline served (128) to the engine ceiling (4096).
pub const FLEET_SIZES: &[u32] = &[128, 256, 512, 1024, 2048, 4096];

/// The `η = q/k` targets swept per fleet size, realized as the faulty
/// counts `f = η·k/2 − 1` (exact integers for the power-of-two fleet
/// sizes; the first entry is `f = k/2`, i.e. `η = (k+2)/k`, the closest
/// searchable approach to `η → 1⁺`).
pub fn faulty_counts(k: u32) -> [u32; 4] {
    [k / 2, 5 * k / 8 - 1, 3 * k / 4 - 1, k - 1]
}

/// One row of the E12 table.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays (the line: 2).
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// `η = q/k = 2(f+1)/k`.
    pub eta: f64,
    /// The evaluation horizon.
    pub horizon: f64,
    /// Measured sup of `τ(x)/x` of the optimal fleet (exact evaluator,
    /// log-domain pipeline).
    pub measured: f64,
    /// Closed form `Λ(η) = A(2, k, f)` (Theorem 6).
    pub closed_form: f64,
    /// `|measured − closed_form| / closed_form`.
    pub rel_err: f64,
    /// Boundary candidates the evaluator examined.
    pub breakpoints: u64,
}

/// Builds the E12 campaign: [`FLEET_SIZES`] capped at
/// `max(max_k, 128)` × the [`faulty_counts`] sweep, evaluated at
/// `horizon`.
///
/// The cap keeps default suite runs (`tablegen` with a small `--max-k`)
/// at the cheap `k = 128` slice while `--max-k 4096` unlocks the full
/// sweep — the `k` axis never drops below 128, because smaller fleets
/// are E1/E4 territory.
pub fn campaign(max_k: u32, horizon: f64) -> Campaign<Row> {
    campaign_with_memo(max_k, horizon, Arc::new(CompileMemo::new()))
}

/// [`campaign`] with a caller-supplied compile memo, so repeated runs
/// (benchmark iterations, the serving layer) reuse compiled fleets
/// across campaigns and the run's report carries the compile/evaluate
/// time split.
pub fn campaign_with_memo(max_k: u32, horizon: f64, memo: Arc<CompileMemo>) -> Campaign<Row> {
    let cap = max_k.max(FLEET_SIZES[0]);
    let cells: Vec<(u32, u32)> = FLEET_SIZES
        .iter()
        .filter(|&&k| k <= cap)
        .flat_map(|&k| faulty_counts(k).into_iter().map(move |f| (k, f)))
        .collect();
    let grid = ParamGrid::new().axis_zip(
        &["k", "f"],
        cells.iter().map(|&(k, f)| vec![k.into(), f.into()]),
    );
    let cell_memo = Arc::clone(&memo);
    Campaign::new(
        "e12",
        "Large fleets: exact ratio vs Λ(q/k) across the formerly-overflowing range",
        grid,
        move |cell| {
            let (k, f) = (cell.get_u32("k"), cell.get_u32("f"));
            let instance = RayInstance::new(2, k, f).expect("validated");
            debug_assert!(matches!(instance.regime(), Regime::Searchable { .. }));
            let closed_form = a_rays(2, k, f).expect("E12 sweeps only the searchable band");
            let report = evaluate_optimal_cached(&cell_memo, 2, k, f, horizon)
                .expect("the log-domain pipeline is finite at any fleet size");
            Row {
                m: 2,
                k,
                f,
                eta: instance.eta(),
                horizon,
                measured: report.ratio,
                closed_form,
                rel_err: (report.ratio - closed_form).abs() / closed_form,
                breakpoints: report.num_breakpoints as u64,
            }
        },
    )
    .with_compile_memo(memo)
}

/// Runs E12 up to fleet size `max(max_k, 128)` at `horizon`.
///
/// # Panics
///
/// Panics if any substrate rejects in-regime parameters (a bug).
pub fn run(max_k: u32, horizon: f64) -> Vec<Row> {
    campaign(max_k, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_counts_stay_in_the_searchable_band() {
        for &k in FLEET_SIZES {
            for f in faulty_counts(k) {
                let inst = RayInstance::new(2, k, f).expect("valid instance");
                assert!(
                    matches!(inst.regime(), Regime::Searchable { .. }),
                    "(k={k}, f={f}) not searchable"
                );
            }
            // the sweep spans η from just above 1 to exactly 2
            let etas: Vec<f64> = faulty_counts(k)
                .into_iter()
                .map(|f| f64::from(2 * (f + 1)) / f64::from(k))
                .collect();
            assert!(etas.windows(2).all(|w| w[0] < w[1]));
            assert!(etas[0] > 1.0 && (etas[3] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rows_track_the_closed_form() {
        // the cheap slice: k = 128 at a moderate horizon
        let rows = run(1, 1e6);
        assert_eq!(rows.len(), 4, "cap below 128 still yields the k=128 slice");
        for r in &rows {
            assert_eq!(r.k, 128);
            assert!(r.measured.is_finite(), "(k={}, f={}) overflowed", r.k, r.f);
            assert!(
                r.measured <= r.closed_form * (1.0 + 1e-9),
                "measured {} exceeds Λ {}",
                r.measured,
                r.closed_form
            );
            assert!(
                r.rel_err < 1e-6,
                "(k={}, f={}): rel_err {}",
                r.k,
                r.f,
                r.rel_err
            );
            assert!(r.breakpoints > 0);
        }
        // η sweeps upward ⇒ Λ(η) strictly increases along the f axis
        assert!(rows.windows(2).all(|w| w[0].closed_form < w[1].closed_form));
    }

    #[test]
    fn cap_unlocks_larger_fleets() {
        let infos = campaign(256, 1e6);
        assert_eq!(infos.grid().cells().len(), 8, "128 and 256 slices");
        let report = campaign(128, 1e5).threads(Some(2)).run().report();
        assert_eq!(report.id(), "e12");
        assert_eq!(report.rows().len(), 4);
        let text = report.render_text();
        assert!(text.contains("closed_form") && text.contains("rel_err"));
    }

    #[test]
    fn shared_memo_makes_the_second_run_all_hits_with_identical_rows() {
        let memo = Arc::new(CompileMemo::new());
        let cold = campaign_with_memo(128, 1e5, Arc::clone(&memo))
            .threads(Some(2))
            .run();
        let cold_stats = cold.compile.expect("memo attached");
        assert_eq!(cold_stats.hits, 0, "first run compiles everything");
        assert_eq!(cold_stats.misses, 4, "one distinct α per (k, f) cell");
        let warm = campaign_with_memo(128, 1e5, Arc::clone(&memo))
            .threads(Some(2))
            .run();
        let warm_stats = warm.compile.expect("memo attached");
        assert_eq!(warm_stats.misses, 0, "second run compiles nothing");
        assert_eq!(warm_stats.hits, 4);
        for (a, b) in cold.rows().zip(warm.rows()) {
            assert_eq!(a.measured.to_bits(), b.measured.to_bits());
            assert_eq!(a.breakpoints, b.breakpoints);
        }
        // the default entry point is bit-identical to the memoized one
        for (a, b) in run(1, 1e5).iter().zip(cold.rows()) {
            assert_eq!(a.measured.to_bits(), b.measured.to_bits());
        }
    }
}
