//! E8 — Eq. (11): the fractional ratio `C(η)` and its rational sandwich.
//!
//! `C(η) = 2·η^η/(η−1)^(η−1) + 1` is proved by squeezing `η` between
//! rationals `q/k` from both sides and invoking the integral bound. The
//! series shows the sandwich closing as `k` grows.

use raysearch_bounds::c_fractional;
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_cover::fractional::{convergence, RationalStep};

/// One `η` row with its sandwich at a chosen denominator budget. The
/// sandwich sides are flattened to scalar columns (`lower_q/lower_k/…`)
/// so both the text table and JSON rows stay one-level.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// The weight requirement `η`.
    pub eta: f64,
    /// Closed form `C(η)`.
    pub closed_form: f64,
    /// Numerator of the best lower approximation `q/k ≤ η`, `k ≤ max_k`.
    pub lower_q: Option<u32>,
    /// Denominator of the best lower approximation.
    pub lower_k: Option<u32>,
    /// Its integral ORC value `C(k, ⌊ηk⌋)`.
    pub lower_value: Option<f64>,
    /// Numerator of the best upper approximation `q/k ≥ η`, `k ≤ max_k`.
    pub upper_q: Option<u32>,
    /// Denominator of the best upper approximation.
    pub upper_k: Option<u32>,
    /// Its integral ORC value `C(k, ⌈ηk⌉)`.
    pub upper_value: Option<f64>,
}

fn flatten(step: Option<RationalStep>) -> (Option<u32>, Option<u32>, Option<f64>) {
    match step {
        Some(s) => (Some(s.q), Some(s.k), Some(s.c_value)),
        None => (None, None, None),
    }
}

/// Builds the E8 campaign for the given `η` values with denominators up
/// to `max_k`.
pub fn campaign(etas: &[f64], max_k: u32) -> Campaign<Row> {
    let grid = ParamGrid::new().axis_f64("eta", etas.iter().copied());
    Campaign::new(
        "e8",
        "fractional C(eta) and the rational sandwich (Eq. (11))",
        grid,
        move |cell| {
            let eta = cell.get_f64("eta");
            let conv = convergence(eta, max_k).expect("eta > 1");
            let (lower_q, lower_k, lower_value) = flatten(conv.lower.last().copied());
            let (upper_q, upper_k, upper_value) = flatten(conv.upper.last().copied());
            Row {
                eta,
                closed_form: c_fractional(eta).expect("eta > 1"),
                lower_q,
                lower_k,
                lower_value,
                upper_q,
                upper_k,
                upper_value,
            }
        },
    )
}

/// Runs E8 for the given `η` values with denominators up to `max_k`.
///
/// # Panics
///
/// Panics if `eta ≤ 1` appears in the list.
pub fn run(etas: &[f64], max_k: u32) -> Vec<Row> {
    campaign(etas, max_k).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_closes() {
        let rows = run(&[1.25, 1.5, 2.0, std::f64::consts::E, 3.5], 64);
        for r in &rows {
            let lower = r.lower_value.expect("k budget suffices");
            let upper = r.upper_value.expect("k budget suffices");
            assert!(lower <= r.closed_form + 1e-9);
            assert!(upper >= r.closed_form - 1e-9);
            assert!(
                upper - lower < 0.15,
                "sandwich too wide at eta = {}: [{lower}, {upper}]",
                r.eta
            );
            // the approximations really straddle eta
            let lq = f64::from(r.lower_q.unwrap()) / f64::from(r.lower_k.unwrap());
            let uq = f64::from(r.upper_q.unwrap()) / f64::from(r.upper_k.unwrap());
            assert!(lq <= r.eta + 1e-12 && uq >= r.eta - 1e-12);
        }
        // eta = 2 is the cow path: C(2) = 9 and both sides exact
        let two = rows.iter().find(|r| r.eta == 2.0).unwrap();
        assert!((two.closed_form - 9.0).abs() < 1e-12);
        assert!((two.lower_value.unwrap() - 9.0).abs() < 1e-9);
        assert!((two.upper_value.unwrap() - 9.0).abs() < 1e-9);
    }
}
