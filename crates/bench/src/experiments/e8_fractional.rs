//! E8 — Eq. (11): the fractional ratio `C(η)` and its rational sandwich.
//!
//! `C(η) = 2·η^η/(η−1)^(η−1) + 1` is proved by squeezing `η` between
//! rationals `q/k` from both sides and invoking the integral bound. The
//! series shows the sandwich closing as `k` grows.

use raysearch_bounds::c_fractional;
use raysearch_cover::fractional::{convergence, RationalStep};

use crate::table::{fnum, Table};

/// One `η` row with its sandwich at a chosen denominator budget.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// The weight requirement `η`.
    pub eta: f64,
    /// Closed form `C(η)`.
    pub closed_form: f64,
    /// Best lower approximation `C(k, ⌊ηk⌋)` with `k ≤ max_k`.
    pub lower: Option<RationalStep>,
    /// Best upper approximation `C(k, ⌈ηk⌉)` with `k ≤ max_k`.
    pub upper: Option<RationalStep>,
}

/// Runs E8 for the given `η` values with denominators up to `max_k`.
///
/// # Panics
///
/// Panics if `eta ≤ 1` appears in the list.
pub fn run(etas: &[f64], max_k: u32) -> Vec<Row> {
    etas.iter()
        .map(|&eta| {
            let conv = convergence(eta, max_k).expect("eta > 1");
            Row {
                eta,
                closed_form: c_fractional(eta).expect("eta > 1"),
                lower: conv.lower.last().copied(),
                upper: conv.upper.last().copied(),
            }
        })
        .collect()
}

/// Renders the E8 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        [
            "eta",
            "C(eta)",
            "lower q/k",
            "lower value",
            "upper q/k",
            "upper value",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in rows {
        let fmt_step = |s: &Option<RationalStep>| match s {
            Some(s) => (format!("{}/{}", s.q, s.k), fnum(s.c_value)),
            None => ("-".to_owned(), "-".to_owned()),
        };
        let (lr, lv) = fmt_step(&r.lower);
        let (ur, uv) = fmt_step(&r.upper);
        t.push(vec![
            format!("{:.6}", r.eta),
            fnum(r.closed_form),
            lr,
            lv,
            ur,
            uv,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_closes() {
        let rows = run(&[1.25, 1.5, 2.0, std::f64::consts::E, 3.5], 64);
        for r in &rows {
            let lower = r.lower.as_ref().expect("k budget suffices").c_value;
            let upper = r.upper.as_ref().expect("k budget suffices").c_value;
            assert!(lower <= r.closed_form + 1e-9);
            assert!(upper >= r.closed_form - 1e-9);
            assert!(
                upper - lower < 0.15,
                "sandwich too wide at eta = {}: [{lower}, {upper}]",
                r.eta
            );
        }
        // eta = 2 is the cow path: C(2) = 9 and both sides exact
        let two = rows.iter().find(|r| r.eta == 2.0).unwrap();
        assert!((two.closed_form - 9.0).abs() < 1e-12);
        assert!((two.lower.unwrap().c_value - 9.0).abs() < 1e-9);
        assert!((two.upper.unwrap().c_value - 9.0).abs() < 1e-9);
    }
}
