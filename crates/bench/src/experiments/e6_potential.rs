//! E6 — the potential function in action (figure: growth vs `μ/μ*`).
//!
//! Lemma 5 guarantees every assigned interval multiplies `f(P)` by at
//! least `δ(μ) = (μ*/μ)^k`. This experiment runs the exact-multiplicity
//! assignment on the optimal fleet across a sweep of `μ/μ*` and reports
//! the measured minimum and geometric-mean step growth against `δ`:
//! below the threshold growth exceeds 1 and the cover dies (finite stuck
//! frontier); at and above it the cover runs forever with mean growth
//! pinned near 1.

use raysearch_bounds::{delta_growth, mu_threshold, RayInstance};
use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_cover::potential::{PotentialSeries, Setting};
use raysearch_cover::settings::OrcSetting;
use raysearch_cover::ExactAssigner;
use raysearch_strategies::{CyclicExponential, RayStrategy};

/// One point of the growth-vs-μ series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Number of crash-faulty robots.
    pub f: u32,
    /// The ratio `μ/μ*` probed.
    pub mu_fraction: f64,
    /// The absolute `μ`.
    pub mu: f64,
    /// Lemma 5's guaranteed per-step growth `δ`.
    pub delta_theory: f64,
    /// Measured minimum step growth of `f(P)`.
    pub measured_min: f64,
    /// Measured geometric-mean step growth.
    pub measured_mean: f64,
    /// Number of potential steps measured.
    pub steps: usize,
    /// Where the cover died (`None` if it reached the target).
    pub stuck_frontier: Option<f64>,
}

/// Builds the E6 campaign for one instance across `μ/μ*` fractions.
pub fn campaign(m: u32, k: u32, f: u32, fractions: &[f64], target: f64) -> Campaign<Row> {
    let grid = ParamGrid::new().axis_f64("mu_fraction", fractions.iter().copied());
    // the instance, threshold and fleet are μ-independent: build once
    let instance = RayInstance::new(m, k, f).expect("validated");
    let q = instance.q();
    let mu_star = mu_threshold(k, q).expect("searchable");
    let tours = CyclicExponential::optimal(m, k, f)
        .expect("searchable")
        .fleet_tours(target * 10.0)
        .expect("valid horizon");
    Campaign::new(
        "e6",
        "potential growth vs mu/mu* (Lemma 5 measured; stuck_frontier '-' = survived to target)",
        grid,
        move |cell| {
            let frac = cell.get_f64("mu_fraction");
            let mu = frac * mu_star;
            let per_robot: Vec<_> = tours
                .iter()
                .enumerate()
                .map(|(r, tour)| {
                    let mut ivs =
                        OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu)
                            .expect("valid mu");
                    for iv in &mut ivs {
                        iv.robot = r;
                    }
                    ivs
                })
                .collect();
            let (assignment, stuck) = ExactAssigner::new(q as usize, mu)
                .expect("valid q, mu")
                .assign_partial(&per_robot, target)
                .expect("valid target");
            let (measured_min, measured_mean, steps) =
                match PotentialSeries::compute(&assignment, Setting::Orc { q }) {
                    Ok(series) => {
                        let report = series
                            .growth_report(k as usize, q - k, mu)
                            .expect("valid parameters");
                        (
                            report.min_step_ratio,
                            report.mean_step_ratio,
                            report.steps_measured,
                        )
                    }
                    Err(_) => (f64::NAN, f64::NAN, 0),
                };
            Row {
                m,
                k,
                f,
                mu_fraction: frac,
                mu,
                delta_theory: delta_growth(mu, q - k, k).expect("valid parameters"),
                measured_min,
                measured_mean,
                steps,
                stuck_frontier: stuck,
            }
        },
    )
}

/// Runs E6 for one instance across the given `μ/μ*` fractions.
///
/// # Panics
///
/// Panics on out-of-regime parameters.
pub fn run(m: u32, k: u32, f: u32, fractions: &[f64], target: f64) -> Vec<Row> {
    campaign(m, k, f, fractions, target).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_crosses_one_at_threshold_and_cover_dies_below() {
        let rows = run(2, 3, 1, &[0.9, 0.97, 1.0, 1.05, 1.15], 2e3);
        for r in &rows {
            assert_eq!((r.m, r.k, r.f), (2, 3, 1));
            if r.mu_fraction < 1.0 {
                assert!(r.delta_theory > 1.0);
                assert!(r.stuck_frontier.is_some(), "survived below threshold");
            } else if r.mu_fraction > 1.0 {
                assert!(r.delta_theory < 1.0);
                assert!(r.stuck_frontier.is_none(), "died above threshold");
                // measured mean hovers near 1 on surviving covers
                assert!((r.measured_mean - 1.0).abs() < 0.35);
            }
            if r.steps > 0 {
                assert!(
                    r.measured_min >= r.delta_theory * (1.0 - 1e-9),
                    "Lemma 5 violated at mu/mu* = {}",
                    r.mu_fraction
                );
            }
        }
    }
}
