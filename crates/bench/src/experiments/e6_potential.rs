//! E6 — the potential function in action (figure: growth vs `μ/μ*`).
//!
//! Lemma 5 guarantees every assigned interval multiplies `f(P)` by at
//! least `δ(μ) = (μ*/μ)^k`. This experiment runs the exact-multiplicity
//! assignment on the optimal fleet across a sweep of `μ/μ*` and reports
//! the measured minimum and geometric-mean step growth against `δ`:
//! below the threshold growth exceeds 1 and the cover dies (finite stuck
//! frontier); at and above it the cover runs forever with mean growth
//! pinned near 1.

use raysearch_bounds::{delta_growth, mu_threshold, RayInstance};
use raysearch_cover::potential::{PotentialSeries, Setting};
use raysearch_cover::settings::OrcSetting;
use raysearch_cover::ExactAssigner;
use raysearch_strategies::{CyclicExponential, RayStrategy};

use crate::table::{fnum, Table};

/// One point of the growth-vs-μ series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// The ratio `μ/μ*` probed.
    pub mu_fraction: f64,
    /// The absolute `μ`.
    pub mu: f64,
    /// Lemma 5's guaranteed per-step growth `δ`.
    pub delta_theory: f64,
    /// Measured minimum step growth of `f(P)`.
    pub measured_min: f64,
    /// Measured geometric-mean step growth.
    pub measured_mean: f64,
    /// Number of potential steps measured.
    pub steps: usize,
    /// Where the cover died (`None` if it reached the target).
    pub stuck_frontier: Option<f64>,
}

/// Runs E6 for one instance across the given `μ/μ*` fractions.
///
/// # Panics
///
/// Panics on out-of-regime parameters.
pub fn run(m: u32, k: u32, f: u32, fractions: &[f64], target: f64) -> Vec<Row> {
    let instance = RayInstance::new(m, k, f).expect("validated");
    let q = instance.q();
    let mu_star = mu_threshold(k, q).expect("searchable");
    let strategy = CyclicExponential::optimal(m, k, f).expect("searchable");

    fractions
        .iter()
        .map(|&frac| {
            let mu = frac * mu_star;
            let per_robot: Vec<_> = strategy
                .fleet_tours(target * 10.0)
                .expect("valid horizon")
                .iter()
                .enumerate()
                .map(|(r, tour)| {
                    let mut ivs =
                        OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu)
                            .expect("valid mu");
                    for iv in &mut ivs {
                        iv.robot = r;
                    }
                    ivs
                })
                .collect();
            let (assignment, stuck) = ExactAssigner::new(q as usize, mu)
                .expect("valid q, mu")
                .assign_partial(&per_robot, target)
                .expect("valid target");
            let (measured_min, measured_mean, steps) =
                match PotentialSeries::compute(&assignment, Setting::Orc { q }) {
                    Ok(series) => {
                        let report = series
                            .growth_report(k as usize, q - k, mu)
                            .expect("valid parameters");
                        (
                            report.min_step_ratio,
                            report.mean_step_ratio,
                            report.steps_measured,
                        )
                    }
                    Err(_) => (f64::NAN, f64::NAN, 0),
                };
            Row {
                mu_fraction: frac,
                mu,
                delta_theory: delta_growth(mu, q - k, k).expect("valid parameters"),
                measured_min,
                measured_mean,
                steps,
                stuck_frontier: stuck,
            }
        })
        .collect()
}

/// Renders the E6 series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        [
            "mu/mu*",
            "mu",
            "delta",
            "min growth",
            "mean growth",
            "steps",
            "died at",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in rows {
        t.push(vec![
            format!("{:.4}", r.mu_fraction),
            fnum(r.mu),
            fnum(r.delta_theory),
            fnum(r.measured_min),
            fnum(r.measured_mean),
            r.steps.to_string(),
            r.stuck_frontier
                .map(fnum)
                .unwrap_or_else(|| "survived".to_owned()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_crosses_one_at_threshold_and_cover_dies_below() {
        let rows = run(2, 3, 1, &[0.9, 0.97, 1.0, 1.05, 1.15], 2e3);
        for r in &rows {
            if r.mu_fraction < 1.0 {
                assert!(r.delta_theory > 1.0);
                assert!(r.stuck_frontier.is_some(), "survived below threshold");
            } else if r.mu_fraction > 1.0 {
                assert!(r.delta_theory < 1.0);
                assert!(r.stuck_frontier.is_none(), "died above threshold");
                // measured mean hovers near 1 on surviving covers
                assert!((r.measured_mean - 1.0).abs() < 0.35);
            }
            if r.steps > 0 {
                assert!(
                    r.measured_min >= r.delta_theory * (1.0 - 1e-9),
                    "Lemma 5 violated at mu/mu* = {}",
                    r.mu_fraction
                );
            }
        }
    }
}
