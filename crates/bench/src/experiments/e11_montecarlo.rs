//! E11 — Monte-Carlo average case vs the exact worst case.
//!
//! Everything before this experiment is adversarial; E11 asks what the
//! same optimal fleets achieve against *random* fault sets and *random*
//! targets. For each searchable instance the table contrasts four fault
//! models — the exact adversary (`worst`), a uniform random `f`-subset
//! (`uniform`), i.i.d. crashes after Bonato et al. 2020 (`iid`), and an
//! i.i.d. Byzantine mix under the conservative `(f+1)`-corroboration
//! rule (`byzantine`) — against the closed form `Λ(q/k)`. Targets are
//! drawn log-uniformly over `[1, horizon]` on a uniform ray.
//!
//! The whole table is a pure function of `(samples, seed, horizon)`:
//! the engine's counter-based sampling makes every cell bit-identical
//! across thread counts.

use raysearch_core::campaign::{Campaign, ParamGrid};
use raysearch_mc::{estimate, FaultSampler, McConfig, Scenario, TargetSampler};

/// Per-robot fault probability of the `iid` and `byzantine` models.
pub const FAULT_P: f64 = 0.1;

/// The searchable instances E11 samples.
pub const INSTANCES: &[(u32, u32, u32)] = &[(2, 3, 1), (2, 5, 2), (3, 4, 1)];

/// The fault models swept per instance, in grid order — the engine's
/// full taxonomy.
pub const MODELS: &[&str] = FaultSampler::NAMES;

/// One row of the E11 table.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Number of rays.
    pub m: u32,
    /// Number of robots.
    pub k: u32,
    /// Fault budget of the simulated optimal strategy.
    pub f: u32,
    /// Fault-sampler name (`worst`, `uniform`, `iid`, `byzantine`).
    pub model: String,
    /// Monte-Carlo samples drawn.
    pub samples: u64,
    /// The master seed.
    pub seed: u64,
    /// Mean detection ratio over detected samples.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// 95th-percentile detection ratio.
    pub p95: f64,
    /// Largest observed detection ratio.
    pub max: f64,
    /// Samples never confirmed by enough robots (possible only for the
    /// i.i.d. models, which may exceed the fault budget).
    pub undetected: u64,
    /// The exact worst case `Λ(q/k)`.
    pub closed_form: f64,
    /// `closed_form − mean`: the average case's gain over the adversary.
    pub mean_slack: f64,
}

/// Builds the E11 campaign: [`INSTANCES`] × [`MODELS`], `samples` draws
/// per cell from `seed`, targets log-uniform over `[1, horizon]`.
pub fn campaign(samples: u64, seed: u64, horizon: f64) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_zip(
            &["m", "k", "f"],
            INSTANCES
                .iter()
                .map(|&(m, k, f)| vec![m.into(), k.into(), f.into()]),
        )
        .axis_str("model", MODELS.iter().copied());
    Campaign::new(
        "e11",
        "Monte-Carlo: average-case ratio vs the exact worst case Λ(q/k)",
        grid,
        move |cell| {
            let (m, k, f) = (cell.get_u32("m"), cell.get_u32("k"), cell.get_u32("f"));
            let model = cell.get_str("model");
            let faults = FaultSampler::from_name(model, f, FAULT_P)
                .expect("the E11 model axis is FaultSampler::NAMES");
            let scenario = Scenario::new(
                m,
                k,
                f,
                horizon,
                faults,
                TargetSampler::LogUniform {
                    lo: 1.0,
                    hi: horizon,
                },
            )
            .expect("E11 grid lists only searchable instances");
            // cells are already sharded across the campaign's workers;
            // the engine itself must stay sequential per cell
            let cfg = McConfig {
                threads: Some(1),
                ..McConfig::with_seed(seed, samples)
            };
            match estimate(&scenario, &cfg) {
                Ok(report) => Row {
                    m,
                    k,
                    f,
                    model: model.to_owned(),
                    samples: report.samples,
                    seed: report.seed,
                    mean: report.mean,
                    std_error: report.std_error,
                    p95: report.p95,
                    max: report.max,
                    undetected: report.undetected,
                    closed_form: report.closed_form,
                    mean_slack: report.closed_form - report.mean,
                },
                // a tiny budget can leave an i.i.d. cell with every
                // sample undetected; report that as a degenerate row
                // (NaN statistics render as NaN text / JSON null)
                // instead of panicking the whole table
                Err(_) => Row {
                    m,
                    k,
                    f,
                    model: model.to_owned(),
                    samples,
                    seed,
                    mean: f64::NAN,
                    std_error: f64::NAN,
                    p95: f64::NAN,
                    max: f64::NAN,
                    undetected: samples,
                    closed_form: raysearch_bounds::a_rays(m, k, f)
                        .expect("E11 grid lists only searchable instances"),
                    mean_slack: f64::NAN,
                },
            }
        },
    )
}

/// Runs E11 with the given budget and seed.
///
/// # Panics
///
/// Panics only if a substrate rejects in-regime parameters (a bug).
pub fn run(samples: u64, seed: u64, horizon: f64) -> Vec<Row> {
    campaign(samples, seed, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_case_beats_the_adversary() {
        let rows = run(2_000, 7, 500.0);
        assert_eq!(rows.len(), INSTANCES.len() * MODELS.len());
        for r in &rows {
            assert!(
                r.mean >= 1.0,
                "({},{},{}) {}: mean below 1",
                r.m,
                r.k,
                r.f,
                r.model
            );
            assert!(
                r.mean < r.closed_form,
                "({},{},{}) {}: mean {} not below Λ {}",
                r.m,
                r.k,
                r.f,
                r.model,
                r.mean,
                r.closed_form
            );
            if matches!(r.model.as_str(), "worst" | "uniform") {
                // budget-respecting models stay within the worst case
                assert_eq!(r.undetected, 0, "{} lost targets", r.model);
                assert!(
                    r.max <= r.closed_form + 1e-9,
                    "{}: max {} above Λ {}",
                    r.model,
                    r.max,
                    r.closed_form
                );
            }
        }
        // the worst-case sampler dominates the uniform one on average
        for &(m, k, f) in INSTANCES {
            let by_model = |name: &str| {
                rows.iter()
                    .find(|r| (r.m, r.k, r.f, r.model.as_str()) == (m, k, f, name))
                    .unwrap()
            };
            assert!(by_model("worst").mean >= by_model("uniform").mean);
        }
    }

    #[test]
    fn rows_are_a_pure_function_of_the_seed() {
        let a = run(500, 42, 300.0);
        let b = run(500, 42, 300.0);
        assert_eq!(a, b);
        let c = run(500, 43, 300.0);
        assert_ne!(a, c, "changing the seed must change the table");
    }

    #[test]
    fn report_renders_every_row() {
        let report = campaign(200, 1, 200.0).threads(Some(2)).run().report();
        assert_eq!(report.id(), "e11");
        assert_eq!(report.rows().len(), 12);
        let text = report.render_text();
        assert!(text.contains("closed_form") && text.contains("byzantine"));
    }
}
