//! E9 — the Section 3 applications: contract algorithms and hybrid
//! online algorithms, simulated and compared against the master
//! expression.
//!
//! * **Contract scheduling** (`k` processors, `m` problems): the optimal
//!   acceleration ratio is `μ(m+k, k)`; the geometric schedule realizes
//!   it.
//! * **Hybrid algorithms** (`k` workers hedging `m` candidate
//!   algorithms, restart-on-switch): the optimal wall-clock competitive
//!   ratio is `A(m, k, 0)` — Theorem 6 at `f = 0`.

use raysearch_bounds::{a_rays, mu_threshold};
use raysearch_core::campaign::{Campaign, ParamGrid, ParamValue};
use raysearch_strategies::{CyclicExponential, RayStrategy};

/// One application row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Which application this row simulates.
    pub application: String,
    /// Number of problems / candidate algorithms `m`.
    pub m: u32,
    /// Number of processors / workers `k`.
    pub k: u32,
    /// The theoretical optimum for this application.
    pub theory: f64,
    /// The simulated worst-case value.
    pub measured: f64,
}

/// Simulates the geometric contract schedule and measures its
/// acceleration ratio.
fn contract_acceleration(m: u32, k: u32, horizon: f64) -> f64 {
    let q = m + k;
    let alpha = (f64::from(q) / f64::from(m)).powf(1.0 / f64::from(k));
    // completions: (finish, problem, length) across all processors
    let mut completions: Vec<(f64, usize, f64)> = Vec::new();
    for r in 0..k {
        let mut clock = 0.0;
        let mut n = 1 - 2 * i64::from(m);
        loop {
            let expo = f64::from(k) * n as f64 + f64::from(m) * (f64::from(r) + 1.0);
            let length = (expo * alpha.ln()).exp();
            clock += length;
            if clock > horizon {
                break;
            }
            completions.push((clock, n.rem_euclid(i64::from(m)) as usize, length));
            n += 1;
        }
    }
    completions.sort_by(|a, b| a.0.total_cmp(&b.0));
    let settle = horizon / 100.0;
    let mut best_done = vec![0.0f64; m as usize];
    let mut worst: f64 = 0.0;
    for (finish, problem, length) in completions {
        if finish > settle && best_done[problem] > 0.0 {
            worst = worst.max(finish / best_done[problem]);
        }
        best_done[problem] = best_done[problem].max(length);
    }
    worst
}

/// Simulates the hybrid scheduler (restart-on-switch) and measures its
/// competitive ratio over adversarial runtimes.
fn hybrid_ratio(m: u32, k: u32, horizon: f64) -> f64 {
    let strategy = CyclicExponential::optimal(m, k, 0).expect("searchable");
    let tours = strategy.fleet_tours(horizon * 10.0).expect("valid horizon");
    let solve_time = |lucky: usize, x: f64| -> Option<f64> {
        let mut best: Option<f64> = None;
        for tour in &tours {
            let mut clock = 0.0;
            for e in tour.excursions() {
                if e.ray.index() == lucky && e.turn >= x {
                    let t = clock + x;
                    best = Some(best.map_or(t, |b: f64| b.min(t)));
                    break;
                }
                clock += 2.0 * e.turn;
            }
        }
        best
    };
    let mut worst: f64 = 0.0;
    for tour in &tours {
        for e in tour.excursions() {
            let x = e.turn * (1.0 + 1e-9);
            if !(1.0..=horizon).contains(&x) {
                continue;
            }
            if let Some(t) = solve_time(e.ray.index(), x) {
                worst = worst.max(t / x);
            }
        }
    }
    worst
}

/// Builds the E9 campaign over the given `(m, k)` pairs: a `contract`
/// row for every pair, and a `hybrid` row where `k < m`.
pub fn campaign(pairs: &[(u32, u32)], horizon: f64) -> Campaign<Row> {
    let grid = ParamGrid::new()
        .axis_zip(
            &["m", "k"],
            pairs
                .iter()
                .map(|&(m, k)| vec![m.into(), k.into()])
                .collect::<Vec<Vec<ParamValue>>>(),
        )
        .axis_str("application", ["contract", "hybrid"])
        .filter(|c| c.get_str("application") == "contract" || c.get_u32("k") < c.get_u32("m"));
    Campaign::new(
        "e9",
        "applications: contract scheduling & hybrid algorithms",
        grid,
        move |cell| {
            let (m, k) = (cell.get_u32("m"), cell.get_u32("k"));
            match cell.get_str("application") {
                "contract" => Row {
                    application: "contract".to_owned(),
                    m,
                    k,
                    theory: mu_threshold(k, m + k).expect("q > k"),
                    measured: contract_acceleration(m, k, horizon),
                },
                _ => Row {
                    application: "hybrid".to_owned(),
                    m,
                    k,
                    theory: a_rays(m, k, 0).expect("searchable"),
                    measured: hybrid_ratio(m, k, horizon / 100.0),
                },
            }
        },
    )
}

/// Runs E9 over the given `(m, k)` pairs.
///
/// # Panics
///
/// Panics on out-of-regime parameters (`k < m` required for hybrid rows).
pub fn run(pairs: &[(u32, u32)], horizon: f64) -> Vec<Row> {
    campaign(pairs, horizon).run().into_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applications_match_theory() {
        let rows = run(&[(1, 1), (3, 1), (3, 2), (4, 3)], 1e6);
        for r in &rows {
            assert!(
                r.measured <= r.theory * (1.0 + 1e-6),
                "{} (m={}, k={}) beats theory",
                r.application,
                r.m,
                r.k
            );
            assert!(
                r.measured >= r.theory * (1.0 - 5e-2),
                "{} (m={}, k={}): measured {} far below theory {}",
                r.application,
                r.m,
                r.k,
                r.measured,
                r.theory
            );
        }
        // the classic: one processor, one problem, acceleration 4
        let classic = rows
            .iter()
            .find(|r| r.application == "contract" && (r.m, r.k) == (1, 1))
            .unwrap();
        assert!((classic.theory - 4.0).abs() < 1e-12);
        // hybrid rows exist exactly where k < m
        assert!(rows
            .iter()
            .filter(|r| r.application == "hybrid")
            .all(|r| r.k < r.m));
        assert!(rows.iter().any(|r| r.application == "hybrid"));
    }
}
