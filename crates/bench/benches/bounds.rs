//! Microbenchmarks for the closed-form bound computations (E1/E4/E8
//! backbone): `Λ(η)`, `μ(q,k)` and the numeric cross-check optimizer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use raysearch_bounds::numeric::golden_section_min;
use raysearch_bounds::{a_rays, cyclic_ratio, lambda_big, mu_threshold};

fn bench_closed_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds/closed_form");
    group.bench_function("lambda_big", |b| {
        b.iter(|| lambda_big(black_box(1.6180339887)).unwrap())
    });
    group.bench_function("mu_threshold", |b| {
        b.iter(|| mu_threshold(black_box(7), black_box(12)).unwrap())
    });
    group.bench_function("a_rays_grid_6x7x3", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in 2u32..=6 {
                for k in 1u32..=7 {
                    for f in 0u32..3.min(k) {
                        if let Ok(v) = a_rays(m, k, f) {
                            acc += v;
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_numeric_optimizer(c: &mut Criterion) {
    c.bench_function("bounds/golden_section_alpha", |b| {
        b.iter(|| {
            golden_section_min(
                |a| cyclic_ratio(a, black_box(6), black_box(5)).unwrap_or(f64::INFINITY),
                1.0 + 1e-9,
                16.0,
                1e-10,
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_closed_forms, bench_numeric_optimizer);
criterion_main!(benches);
