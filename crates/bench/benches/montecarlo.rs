//! Microbenchmarks for the Monte-Carlo engine: per-sample cost of the
//! fault/target samplers, sequential vs sharded estimation throughput,
//! and the one-off fleet-compilation overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SplitMix64;
use raysearch_mc::{estimate, FaultSampler, McConfig, Scenario, TargetSampler, VisitTable};
use raysearch_strategies::{CyclicExponential, RayStrategy};

fn line_scenario(faults: FaultSampler) -> Scenario {
    Scenario::new(
        2,
        3,
        1,
        1e3,
        faults,
        TargetSampler::LogUniform { lo: 1.0, hi: 1e3 },
    )
    .expect("searchable instance")
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo/samplers");
    let uniform = FaultSampler::UniformSubset { f: 2 };
    let iid = FaultSampler::IidCrash { p: 0.1 };
    let targets = TargetSampler::LogUniform { lo: 1.0, hi: 1e4 };
    group.bench_function("uniform_subset_k8", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SplitMix64::keyed(1, i);
            black_box(uniform.draw(8, &mut rng))
        })
    });
    group.bench_function("iid_crash_k8", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SplitMix64::keyed(1, i);
            black_box(iid.draw(8, &mut rng))
        })
    });
    group.bench_function("log_uniform_target", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = SplitMix64::keyed(2, i);
            black_box(targets.draw(3, &mut rng))
        })
    });
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo/estimate");
    let scenario = line_scenario(FaultSampler::UniformSubset { f: 1 });
    group.bench_function("10k_sequential", |b| {
        let cfg = McConfig {
            threads: Some(1),
            ..McConfig::with_seed(3, 10_000)
        };
        b.iter(|| black_box(estimate(&scenario, &cfg).unwrap().mean))
    });
    group.bench_function("10k_sharded", |b| {
        let cfg = McConfig {
            threads: Some(4),
            ..McConfig::with_seed(3, 10_000)
        };
        b.iter(|| black_box(estimate(&scenario, &cfg).unwrap().mean))
    });
    group.finish();
}

fn bench_visit_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo/visit_table");
    let fleet = CyclicExponential::optimal(3, 4, 1)
        .unwrap()
        .fleet_tours(4e3)
        .unwrap();
    group.bench_function("compile_fleet", |b| {
        b.iter(|| black_box(VisitTable::from_fleet(&fleet).unwrap().num_robots()))
    });
    let table = VisitTable::from_fleet(&fleet).unwrap();
    group.bench_function("first_visit_query", |b| {
        let mut x = 1.0f64;
        b.iter(|| {
            x = if x > 900.0 { 1.0 } else { x * 1.7 };
            black_box(table.first_visit(2, 1, x))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_estimation, bench_visit_table);
criterion_main!(benches);
