//! Benchmarks for the exact line evaluator (E1 backbone): scaling in the
//! fleet size and the evaluation horizon.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use raysearch_core::LineEvaluator;
use raysearch_strategies::{CyclicExponential, LineStrategy};

fn bench_eval_by_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_line/by_fleet");
    for &(k, f) in &[(1u32, 0u32), (3, 1), (5, 2), (7, 3)] {
        let strategy = CyclicExponential::optimal(2, k, f)
            .unwrap()
            .to_line()
            .unwrap();
        let fleet = strategy.fleet_itineraries(1e5).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_f{f}")),
            &fleet,
            |b, fleet| {
                let evaluator = LineEvaluator::new(f, 1.0, 1e4).unwrap();
                b.iter(|| evaluator.evaluate(black_box(fleet)).unwrap().ratio)
            },
        );
    }
    group.finish();
}

fn bench_eval_by_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_line/by_horizon");
    let strategy = CyclicExponential::optimal(2, 3, 1)
        .unwrap()
        .to_line()
        .unwrap();
    for &hi in &[1e3, 1e5, 1e7] {
        let fleet = strategy.fleet_itineraries(hi * 10.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(hi), &fleet, |b, fleet| {
            let evaluator = LineEvaluator::new(1, 1.0, hi).unwrap();
            b.iter(|| evaluator.evaluate(black_box(fleet)).unwrap().ratio)
        });
    }
    group.finish();
}

fn bench_detection_queries(c: &mut Criterion) {
    let strategy = CyclicExponential::optimal(2, 5, 2)
        .unwrap()
        .to_line()
        .unwrap();
    let fleet = strategy.fleet_itineraries(1e5).unwrap();
    let evaluator = LineEvaluator::new(2, 1.0, 1e4).unwrap();
    c.bench_function("eval_line/detection_time_1k_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1000 {
                let x = 1.0 + f64::from(i) * 9.0;
                if let Some(t) = evaluator.detection_time(&fleet, black_box(x)).unwrap() {
                    acc += t;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_eval_by_fleet,
    bench_eval_by_horizon,
    bench_detection_queries
);
criterion_main!(benches);
