//! Benchmarks for the exact assignment and potential series (E6
//! backbone).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use raysearch_bounds::mu_threshold;
use raysearch_cover::potential::{PotentialSeries, Setting};
use raysearch_cover::settings::{CoveredInterval, OrcSetting};
use raysearch_cover::ExactAssigner;
use raysearch_strategies::{CyclicExponential, RayStrategy};

fn intervals_for(m: u32, k: u32, f: u32, mu: f64, horizon: f64) -> Vec<Vec<CoveredInterval>> {
    CyclicExponential::optimal(m, k, f)
        .unwrap()
        .fleet_tours(horizon)
        .unwrap()
        .iter()
        .enumerate()
        .map(|(r, tour)| {
            let mut ivs =
                OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu).unwrap();
            for iv in &mut ivs {
                iv.robot = r;
            }
            ivs
        })
        .collect()
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential/assign");
    for &target in &[1e3, 1e5] {
        let (m, k, f) = (2u32, 3u32, 1u32);
        let q = m * (f + 1);
        let mu = 1.05 * mu_threshold(k, q).unwrap();
        let per_robot = intervals_for(m, k, f, mu, target * 10.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(target),
            &per_robot,
            |b, per_robot| {
                let assigner = ExactAssigner::new(q as usize, mu).unwrap();
                b.iter(|| {
                    let (a, stuck) = assigner
                        .assign_partial(black_box(per_robot), target)
                        .unwrap();
                    assert!(stuck.is_none());
                    black_box(a.steps.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_series(c: &mut Criterion) {
    let (m, k, f) = (2u32, 3u32, 1u32);
    let q = m * (f + 1);
    let mu = 1.05 * mu_threshold(k, q).unwrap();
    let per_robot = intervals_for(m, k, f, mu, 1e6);
    let (assignment, _) = ExactAssigner::new(q as usize, mu)
        .unwrap()
        .assign_partial(&per_robot, 1e5)
        .unwrap();
    c.bench_function("potential/series_compute", |b| {
        b.iter(|| {
            let series =
                PotentialSeries::compute(black_box(&assignment), Setting::Orc { q }).unwrap();
            black_box(series.log_values.len())
        })
    });
}

criterion_group!(benches, bench_assignment, bench_series);
criterion_main!(benches);
