//! Benchmarks for the exact m-ray evaluator (E4/E5 backbone): scaling in
//! the number of rays and in the fleet.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use raysearch_core::RayEvaluator;
use raysearch_strategies::{CyclicExponential, RayStrategy};

fn bench_by_rays(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_rays/by_rays");
    for &m in &[2u32, 4, 8, 16] {
        let k = m - 1; // searchable with f = 0
        let strategy = CyclicExponential::optimal(m, k, 0).unwrap();
        let fleet = strategy.fleet_tours(1e5).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_k{k}")),
            &fleet,
            |b, fleet| {
                let evaluator = RayEvaluator::new(m as usize, 0, 1.0, 1e4).unwrap();
                b.iter(|| evaluator.evaluate(black_box(fleet)).unwrap().ratio)
            },
        );
    }
    group.finish();
}

fn bench_by_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_rays/by_faults");
    for &f in &[0u32, 1, 2, 3] {
        let (m, k) = (3u32, 3 * (f + 1) - 1);
        let strategy = CyclicExponential::optimal(m, k, f).unwrap();
        let fleet = strategy.fleet_tours(1e5).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("f{f}_k{k}")),
            &fleet,
            |b, fleet| {
                let evaluator = RayEvaluator::new(m as usize, f, 1.0, 1e4).unwrap();
                b.iter(|| evaluator.evaluate(black_box(fleet)).unwrap().ratio)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_by_rays, bench_by_faults);
criterion_main!(benches);
