//! Microbenchmarks for the campaign engine: grid enumeration cost and
//! the sharded runner's overhead over the raw per-cell work (E1 on a
//! small grid).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use raysearch_bench::experiments::e1_theorem1;
use raysearch_core::campaign::ParamGrid;

fn bench_grid_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/grid");
    group.bench_function("cells_20x20_filtered", |b| {
        b.iter(|| {
            let grid = ParamGrid::new()
                .axis_u32("k", 1..=20)
                .axis_u32("f", 0..20)
                .filter(|cell| cell.get_u32("f") < cell.get_u32("k"));
            black_box(grid.cells().len())
        })
    });
    group.bench_function("cells_zip_x_float", |b| {
        b.iter(|| {
            let grid = ParamGrid::new()
                .axis_zip(
                    &["m", "k", "f"],
                    (0..32u32).map(|i| vec![(i % 5 + 2).into(), (i + 1).into(), 0u32.into()]),
                )
                .axis_f64("alpha", (0..32).map(|i| 1.0 + f64::from(i) / 32.0));
            black_box(grid.cells().len())
        })
    });
    group.finish();
}

fn bench_campaign_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/e1");
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(e1_theorem1::campaign(5, 1e3).threads(Some(1)).run().len()))
    });
    group.bench_function("sharded", |b| {
        b.iter(|| black_box(e1_theorem1::campaign(5, 1e3).threads(Some(4)).run().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_grid_enumeration, bench_campaign_runner);
criterion_main!(benches);
