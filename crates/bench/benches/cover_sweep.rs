//! Benchmarks for the covering machinery (E7 backbone): interval
//! extraction, fleet merging and the coverage sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use raysearch_bounds::lambda_to_mu;
use raysearch_cover::settings::{merge_fleet_intervals, CoveredInterval, OrcSetting};
use raysearch_cover::CoverageProfile;
use raysearch_strategies::{CyclicExponential, RayStrategy};

fn fleet_intervals(horizon: f64) -> Vec<Vec<CoveredInterval>> {
    let strategy = CyclicExponential::optimal(2, 3, 1).unwrap();
    let lambda = raysearch_bounds::a_line(3, 1).unwrap() * 1.01;
    let mu = lambda_to_mu(lambda).unwrap();
    strategy
        .fleet_tours(horizon)
        .unwrap()
        .iter()
        .enumerate()
        .map(|(r, tour)| {
            let mut ivs =
                OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu).unwrap();
            for iv in &mut ivs {
                iv.robot = r;
            }
            ivs
        })
        .collect()
}

fn bench_interval_extraction(c: &mut Criterion) {
    let strategy = CyclicExponential::optimal(2, 3, 1).unwrap();
    let tours = strategy.fleet_tours(1e6).unwrap();
    let turns: Vec<Vec<f64>> = tours.iter().map(OrcSetting::turns_from_tour).collect();
    c.bench_function("cover/orc_intervals", |b| {
        b.iter(|| {
            let mut n = 0;
            for t in &turns {
                n += OrcSetting::covered_intervals(black_box(t), 2.11)
                    .unwrap()
                    .len();
            }
            black_box(n)
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/profile_build");
    for &hi in &[1e3, 1e5, 1e7] {
        let merged = merge_fleet_intervals(fleet_intervals(hi * 10.0));
        group.bench_with_input(BenchmarkId::from_parameter(hi), &merged, |b, merged| {
            b.iter(|| {
                let p = CoverageProfile::build(black_box(merged), 1.0, hi).unwrap();
                black_box(p.min_coverage())
            })
        });
    }
    group.finish();
}

fn bench_witness_query(c: &mut Criterion) {
    let merged = merge_fleet_intervals(fleet_intervals(1e6));
    let profile = CoverageProfile::build(&merged, 1.0, 1e5).unwrap();
    c.bench_function("cover/first_undercovered", |b| {
        b.iter(|| black_box(profile.first_undercovered(black_box(4))))
    });
    c.bench_function("cover/coverage_at_1k_points", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 1..=1000 {
                acc += profile.coverage_at(black_box(1.0 + f64::from(i) * 90.0));
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_interval_extraction,
    bench_sweep,
    bench_witness_query
);
criterion_main!(benches);
