//! Benchmarks for the discrete-event visit engine (faults/E3 backbone).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use raysearch_faults::CrashAdversary;
use raysearch_sim::{LinePoint, LineTrajectory, VisitEngine};
use raysearch_strategies::{CyclicExponential, LineStrategy};

fn engine(k: u32, f: u32, horizon: f64) -> VisitEngine<LineTrajectory> {
    let strategy = CyclicExponential::optimal(2, k, f)
        .unwrap()
        .to_line()
        .unwrap();
    VisitEngine::new(
        strategy
            .fleet_itineraries(horizon)
            .unwrap()
            .iter()
            .map(LineTrajectory::compile)
            .collect(),
    )
    .unwrap()
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/schedule");
    for &(k, f) in &[(3u32, 1u32), (7, 3)] {
        let eng = engine(k, f, 1e5);
        let adversary = CrashAdversary::new(f as usize);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_f{f}")),
            &eng,
            |b, eng| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for i in 1..=100 {
                        let x = f64::from(i) * 7.3;
                        let sched = eng.schedule(LinePoint::new(x).unwrap());
                        if let Some(t) = adversary.detection_time(&sched) {
                            acc += t.as_f64();
                        }
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_event_stream(c: &mut Criterion) {
    let eng = engine(5, 2, 1e5);
    let points: Vec<LinePoint> = (1..=200)
        .map(|i| LinePoint::new(f64::from(i) * 11.0 * if i % 2 == 0 { 1.0 } else { -1.0 }).unwrap())
        .collect();
    c.bench_function("engine/event_stream_200pts", |b| {
        b.iter(|| black_box(eng.event_stream(black_box(&points)).len()))
    });
}

criterion_group!(benches, bench_schedule, bench_event_stream);
criterion_main!(benches);
