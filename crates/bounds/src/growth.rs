//! Lemmas 4 and 5: the polynomial `x^s (μ*−x)^k` and the potential growth
//! factor `δ`.
//!
//! The heart of the paper's lower-bound proof is the observation that each
//! added assigned interval multiplies the potential `f(P)` by
//! `μ*^s / (x^s (μ*−x)^k)` for some `0 < x < μ*`, which Lemma 5 bounds from
//! below by `δ = (k+s)^(k+s) / (s^s k^k μ^k) > 1` whenever `μ` is below the
//! threshold. This module computes those quantities (in log space) so that
//! the covering machinery in `raysearch-cover` can *measure* the growth on
//! concrete strategies and compare it to theory.

use crate::BoundsError;

#[cfg(test)]
use crate::mu_threshold;

/// Evaluates the Lemma 4 polynomial `x^s (μ*−x)^k` at `x`.
///
/// Returns `0` outside the open interval `(0, μ*)`, matching the boundary
/// values of the polynomial.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `mu_star` is not positive finite.
///
/// # Example
///
/// ```
/// use raysearch_bounds::potential_poly;
/// let v = potential_poly(1.0, 0.5, 1, 1)?; // 0.5 · 0.5
/// assert!((v - 0.25).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn potential_poly(mu_star: f64, x: f64, s: u32, k: u32) -> Result<f64, BoundsError> {
    if !(mu_star.is_finite() && mu_star > 0.0) {
        return Err(BoundsError::OutOfDomain {
            name: "mu_star",
            value: mu_star,
            domain: "mu_star > 0",
        });
    }
    if x <= 0.0 || x >= mu_star {
        return Ok(0.0);
    }
    Ok((f64::from(s) * x.ln() + f64::from(k) * (mu_star - x).ln()).exp())
}

/// **Lemma 4**: the unique maximizer `x = s·μ*/(k+s)` of `x^s (μ*−x)^k` on
/// `(0, μ*)`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `mu_star` is not positive
/// finite, or [`BoundsError::InvalidParameters`] if `s = 0` and `k = 0`.
pub fn lemma4_argmax(mu_star: f64, s: u32, k: u32) -> Result<f64, BoundsError> {
    if !(mu_star.is_finite() && mu_star > 0.0) {
        return Err(BoundsError::OutOfDomain {
            name: "mu_star",
            value: mu_star,
            domain: "mu_star > 0",
        });
    }
    if s == 0 && k == 0 {
        return Err(BoundsError::invalid("need s + k > 0"));
    }
    Ok(f64::from(s) * mu_star / (f64::from(k) + f64::from(s)))
}

/// **Lemma 5, first inequality**: the minimum over `x ∈ (0, μ*)` of
/// `μ*^s / (x^s (μ*−x)^k)`, i.e. `(k+s)^(k+s) / (s^s k^k μ*^k)`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `mu_star` is not positive
/// finite, or [`BoundsError::InvalidParameters`] if `s = 0` or `k = 0`.
pub fn lemma5_min_ratio(mu_star: f64, s: u32, k: u32) -> Result<f64, BoundsError> {
    if !(mu_star.is_finite() && mu_star > 0.0) {
        return Err(BoundsError::OutOfDomain {
            name: "mu_star",
            value: mu_star,
            domain: "mu_star > 0",
        });
    }
    if s == 0 || k == 0 {
        return Err(BoundsError::invalid("lemma 5 needs s >= 1 and k >= 1"));
    }
    let (sf, kf) = (f64::from(s), f64::from(k));
    let n = kf + sf;
    Ok((n * n.ln() - sf * sf.ln() - kf * kf.ln() - kf * mu_star.ln()).exp())
}

/// **Lemma 5, second inequality**: the guaranteed per-step growth factor
/// `δ = (k+s)^(k+s) / (s^s k^k μ^k)` of the potential `f(P)`.
///
/// `δ > 1` exactly when `μ < μ(k+s, k)` (the threshold of
/// [`mu_threshold`](crate::mu_threshold)); equivalently `δ = (μ*/μ)^k` for
/// `μ* = mu_threshold(k, k+s)`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `mu` is not positive finite, or
/// [`BoundsError::InvalidParameters`] if `s = 0` or `k = 0`.
///
/// # Example
///
/// ```
/// use raysearch_bounds::{delta_growth, mu_threshold};
/// let (k, s) = (3, 2);
/// let mu_star = mu_threshold(k, k + s)?;
/// // At the threshold the growth factor degenerates to 1.
/// assert!((delta_growth(mu_star, s, k)? - 1.0).abs() < 1e-9);
/// // Below the threshold it exceeds 1.
/// assert!(delta_growth(0.9 * mu_star, s, k)? > 1.0);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn delta_growth(mu: f64, s: u32, k: u32) -> Result<f64, BoundsError> {
    lemma5_min_ratio(mu, s, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_boundary_values_are_zero() {
        assert_eq!(potential_poly(2.0, 0.0, 2, 3).unwrap(), 0.0);
        assert_eq!(potential_poly(2.0, 2.0, 2, 3).unwrap(), 0.0);
        assert_eq!(potential_poly(2.0, -1.0, 2, 3).unwrap(), 0.0);
        assert_eq!(potential_poly(2.0, 3.0, 2, 3).unwrap(), 0.0);
        assert!(potential_poly(f64::NAN, 1.0, 2, 3).is_err());
    }

    #[test]
    fn lemma4_argmax_is_the_maximizer() {
        // grid-check that no x beats the claimed argmax
        for &(mu_star, s, k) in &[(1.0, 1u32, 1u32), (2.0, 2, 3), (4.0, 1, 3), (0.7, 5, 2)] {
            let xstar = lemma4_argmax(mu_star, s, k).unwrap();
            let best = potential_poly(mu_star, xstar, s, k).unwrap();
            let mut x = mu_star / 1000.0;
            while x < mu_star {
                let v = potential_poly(mu_star, x, s, k).unwrap();
                assert!(
                    v <= best + 1e-12,
                    "poly({x}) = {v} beats argmax value {best} (mu*={mu_star}, s={s}, k={k})"
                );
                x += mu_star / 1000.0;
            }
        }
    }

    #[test]
    fn lemma5_first_inequality_holds_on_grid() {
        let (mu_star, s, k) = (3.0, 2u32, 4u32);
        let min_ratio = lemma5_min_ratio(mu_star, s, k).unwrap();
        let mut x = mu_star / 500.0;
        while x < mu_star {
            let poly = potential_poly(mu_star, x, s, k).unwrap();
            let ratio = (f64::from(s) * mu_star.ln()).exp() / poly;
            assert!(
                ratio >= min_ratio - 1e-9,
                "ratio {ratio} below claimed min {min_ratio} at x={x}"
            );
            x += mu_star / 500.0;
        }
    }

    #[test]
    fn delta_is_power_of_threshold_ratio() {
        // delta(mu) = (mu*/mu)^k
        for &(s, k) in &[(1u32, 1u32), (2, 3), (3, 5)] {
            let mu_star = mu_threshold(k, k + s).unwrap();
            for frac in [0.5, 0.8, 0.99, 1.0, 1.2] {
                let mu = frac * mu_star;
                let delta = delta_growth(mu, s, k).unwrap();
                let expect = (mu_star / mu).powi(k as i32);
                assert!(
                    (delta - expect).abs() / expect < 1e-9,
                    "delta mismatch at s={s}, k={k}, frac={frac}: {delta} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn delta_crosses_one_exactly_at_threshold() {
        let (s, k) = (2u32, 3u32);
        let mu_star = mu_threshold(k, k + s).unwrap();
        assert!(delta_growth(mu_star * (1.0 - 1e-9), s, k).unwrap() > 1.0);
        assert!(delta_growth(mu_star * (1.0 + 1e-9), s, k).unwrap() < 1.0);
        assert!((delta_growth(mu_star, s, k).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(lemma5_min_ratio(1.0, 0, 3).is_err());
        assert!(lemma5_min_ratio(1.0, 3, 0).is_err());
        assert!(lemma4_argmax(0.0, 1, 1).is_err());
        assert!(lemma4_argmax(1.0, 0, 0).is_err());
        // s = 0 argmax is x = 0 (allowed for lemma4, poly degenerates)
        assert_eq!(lemma4_argmax(1.0, 0, 2).unwrap(), 0.0);
    }
}
