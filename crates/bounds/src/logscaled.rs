//! Log-domain scalars for quantities that overflow `f64`.
//!
//! The exact pipeline is dominated by geometric magnitudes `α^i` whose
//! exponents grow linearly with fleet size: a cyclic tour must pad
//! `f + 2` excursions past the horizon *per ray*, each a factor
//! `α^k = q/(q−k)` larger than the last, so the padding tail of a
//! `k = 4096` fleet reaches `≈ 10^13000` — far beyond `f64::MAX`.
//! [`LogScaled`] represents such values as a sign plus the natural log
//! of the magnitude, so products and comparisons stay exact-in-`f64`
//! at any scale, and extraction back to linear `f64` saturates instead
//! of poisoning downstream arithmetic with `inf`.
//!
//! Linear `f64` remains the right representation wherever values are
//! *known* bounded (piece constants within the evaluation range, prefix
//! sums below the horizon); this type is the carrier for everything
//! beyond.

use std::cmp::Ordering;
use std::fmt;

/// A real number stored as `sign · exp(ln_mag)`.
///
/// The invariant is `sign ∈ {-1, 0, +1}` with `ln_mag = -∞` exactly
/// when `sign = 0`. Magnitudes may exceed (or undershoot) anything
/// `f64` can express linearly: `ln_mag` itself is an ordinary finite
/// `f64` (or `±∞` for zero / overflow poles).
///
/// # Example
///
/// ```
/// use raysearch_bounds::LogScaled;
///
/// // 2^10000 is far beyond f64::MAX, but its log-domain form is exact.
/// let huge = LogScaled::from_ln(10_000.0 * 2f64.ln());
/// assert!(huge > LogScaled::from_f64(f64::MAX));
/// assert_eq!(huge.to_f64(), f64::INFINITY); // extraction saturates
///
/// // products are sums of logs: no overflow on the way
/// let sq = huge * huge;
/// assert!((sq.ln_abs() - 20_000.0 * 2f64.ln()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogScaled {
    sign: i8,
    ln_mag: f64,
}

impl LogScaled {
    /// The additive identity.
    pub const ZERO: LogScaled = LogScaled {
        sign: 0,
        ln_mag: f64::NEG_INFINITY,
    };

    /// The multiplicative identity.
    pub const ONE: LogScaled = LogScaled {
        sign: 1,
        ln_mag: 0.0,
    };

    /// The positive value `exp(ln)`.
    ///
    /// This is the lossless entry point for quantities already computed
    /// as logarithms (e.g. `i·ln α`): no rounding beyond the caller's
    /// own happens here.
    #[inline]
    pub fn from_ln(ln: f64) -> LogScaled {
        if ln == f64::NEG_INFINITY {
            LogScaled::ZERO
        } else {
            LogScaled {
                sign: 1,
                ln_mag: ln,
            }
        }
    }

    /// Converts a linear `f64` (must not be NaN; `±0.0` maps to zero).
    #[inline]
    pub fn from_f64(x: f64) -> LogScaled {
        if x == 0.0 {
            LogScaled::ZERO
        } else {
            LogScaled {
                sign: if x < 0.0 { -1 } else { 1 },
                ln_mag: x.abs().ln(),
            }
        }
    }

    /// Extracts the linear value, *saturating*: magnitudes beyond
    /// `f64::MAX` come back as `±∞`, magnitudes below the smallest
    /// subnormal as `±0.0`. This is the only place log-domain state
    /// meets linear arithmetic, so the saturation is explicit and
    /// local rather than smeared through a computation.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.sign) * self.ln_mag.exp()
    }

    /// The natural log of the magnitude (`-∞` for zero).
    #[inline]
    pub fn ln_abs(self) -> f64 {
        self.ln_mag
    }

    /// The sign as `-1`, `0` or `+1`.
    #[inline]
    pub fn signum(self) -> i8 {
        self.sign
    }

    /// Whether this is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.sign == 0
    }

    /// Whether this is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.sign > 0
    }

    /// Whether the magnitude fits a finite linear `f64`, i.e.
    /// [`LogScaled::to_f64`] neither saturates to `±∞` nor is already a
    /// pole.
    #[inline]
    pub fn is_f64_finite(self) -> bool {
        self.ln_mag.exp().is_finite()
    }

    /// The absolute value.
    #[inline]
    pub fn abs(self) -> LogScaled {
        LogScaled {
            sign: self.sign.abs(),
            ln_mag: self.ln_mag,
        }
    }

    /// Integer power: exact in the log domain (`ln` scales by `n`).
    pub fn powi(self, n: i32) -> LogScaled {
        if self.sign == 0 {
            return if n == 0 {
                LogScaled::ONE
            } else {
                LogScaled::ZERO
            };
        }
        let sign = if self.sign < 0 && n % 2 != 0 { -1 } else { 1 };
        LogScaled {
            sign,
            ln_mag: self.ln_mag * f64::from(n),
        }
    }

    /// The reciprocal. The reciprocal of zero is a positive pole
    /// (`ln_mag = +∞`).
    pub fn recip(self) -> LogScaled {
        LogScaled {
            sign: if self.sign == 0 { 1 } else { self.sign },
            ln_mag: -self.ln_mag,
        }
    }

    /// Total order consistent with the represented real numbers
    /// (negatives below zero below positives; NaN magnitudes order via
    /// [`f64::total_cmp`] and should not arise from valid inputs).
    pub fn total_cmp(&self, other: &LogScaled) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {
                let mag = self.ln_mag.total_cmp(&other.ln_mag);
                if self.sign < 0 {
                    mag.reverse()
                } else {
                    mag
                }
            }
            unequal => unequal,
        }
    }
}

impl PartialOrd for LogScaled {
    fn partial_cmp(&self, other: &LogScaled) -> Option<Ordering> {
        if self.ln_mag.is_nan() || other.ln_mag.is_nan() {
            None
        } else {
            Some(self.total_cmp(other))
        }
    }
}

impl std::ops::Mul for LogScaled {
    type Output = LogScaled;
    fn mul(self, rhs: LogScaled) -> LogScaled {
        if self.sign == 0 || rhs.sign == 0 {
            return LogScaled::ZERO;
        }
        LogScaled {
            sign: self.sign * rhs.sign,
            ln_mag: self.ln_mag + rhs.ln_mag,
        }
    }
}

impl std::ops::Div for LogScaled {
    type Output = LogScaled;
    fn div(self, rhs: LogScaled) -> LogScaled {
        if self.sign == 0 {
            return LogScaled::ZERO;
        }
        LogScaled {
            sign: self.sign * if rhs.sign == 0 { 1 } else { rhs.sign },
            ln_mag: self.ln_mag - rhs.ln_mag,
        }
    }
}

impl std::ops::Neg for LogScaled {
    type Output = LogScaled;
    fn neg(self) -> LogScaled {
        LogScaled {
            sign: -self.sign,
            ln_mag: self.ln_mag,
        }
    }
}

impl std::ops::Add for LogScaled {
    type Output = LogScaled;
    /// Log-sum-exp addition: the result's log is taken relative to the
    /// larger magnitude, so no intermediate ever leaves the log domain.
    fn add(self, rhs: LogScaled) -> LogScaled {
        if self.sign == 0 {
            return rhs;
        }
        if rhs.sign == 0 {
            return self;
        }
        let (big, small) = if self.ln_mag >= rhs.ln_mag {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let d = small.ln_mag - big.ln_mag; // ≤ 0
        if self.sign == rhs.sign {
            LogScaled {
                sign: big.sign,
                ln_mag: big.ln_mag + d.exp().ln_1p(),
            }
        } else if small.ln_mag == big.ln_mag {
            LogScaled::ZERO // exact cancellation
        } else {
            LogScaled {
                sign: big.sign,
                ln_mag: big.ln_mag + (-d.exp_m1()).ln(),
            }
        }
    }
}

impl std::ops::Sub for LogScaled {
    type Output = LogScaled;
    fn sub(self, rhs: LogScaled) -> LogScaled {
        self + (-rhs)
    }
}

impl fmt::Display for LogScaled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            0 => write!(f, "0"),
            s => write!(f, "{}exp({})", if s < 0 { "-" } else { "" }, self.ln_mag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(1.0)
    }

    #[test]
    fn round_trips_linear_values() {
        for x in [0.0, 1.0, -1.0, 2.5, -1e300, 1e-300, f64::MAX] {
            let v = LogScaled::from_f64(x);
            assert!(close(v.to_f64(), x), "{x}: {}", v.to_f64());
        }
        assert_eq!(LogScaled::from_f64(-0.0), LogScaled::ZERO);
        assert_eq!(LogScaled::from_ln(f64::NEG_INFINITY), LogScaled::ZERO);
    }

    #[test]
    fn extraction_saturates_instead_of_poisoning() {
        let huge = LogScaled::from_ln(1e6);
        assert_eq!(huge.to_f64(), f64::INFINITY);
        assert!(!huge.is_f64_finite());
        let tiny = LogScaled::from_ln(-1e6);
        assert_eq!(tiny.to_f64(), 0.0);
        assert_eq!((-huge).to_f64(), f64::NEG_INFINITY);
        // but the log-domain state itself stays exact
        assert!(close((huge * tiny).ln_abs(), 0.0));
    }

    #[test]
    fn multiplication_is_log_addition() {
        let a = LogScaled::from_f64(3.0);
        let b = LogScaled::from_f64(-7.0);
        assert!(close((a * b).to_f64(), -21.0));
        assert!(close((a * b * b).to_f64(), 147.0));
        assert_eq!(a * LogScaled::ZERO, LogScaled::ZERO);
        assert!(close((a / b).to_f64(), 3.0 / -7.0));
        // huge exponents never overflow
        let big = LogScaled::from_ln(500.0);
        let sq = big * big;
        assert!(close(sq.ln_abs(), 1000.0));
    }

    #[test]
    fn addition_matches_linear_arithmetic() {
        let cases = [
            (1.0, 2.0),
            (2.0, -1.0),
            (-2.0, 1.0),
            (-2.0, -3.0),
            (1e-200, 1e200),
            (5.0, -5.0),
            (0.0, 3.5),
            (3.5, 0.0),
        ];
        for (x, y) in cases {
            let got = (LogScaled::from_f64(x) + LogScaled::from_f64(y)).to_f64();
            assert!(close(got, x + y), "{x} + {y} = {got}");
        }
        // subtraction delegates to addition
        let got = (LogScaled::from_f64(9.0) - LogScaled::from_f64(2.0)).to_f64();
        assert!(close(got, 7.0));
    }

    #[test]
    fn exact_cancellation_is_zero() {
        let a = LogScaled::from_ln(1234.5);
        assert_eq!(a - a, LogScaled::ZERO);
        assert_eq!((a - a).signum(), 0);
    }

    #[test]
    fn powi_and_recip() {
        let two = LogScaled::from_f64(2.0);
        assert!(close(two.powi(10).to_f64(), 1024.0));
        assert!(close(two.powi(-2).to_f64(), 0.25));
        assert_eq!(two.powi(0), LogScaled::ONE);
        let neg = LogScaled::from_f64(-2.0);
        assert!(close(neg.powi(3).to_f64(), -8.0));
        assert!(close(neg.powi(2).to_f64(), 4.0));
        assert_eq!(LogScaled::ZERO.powi(3), LogScaled::ZERO);
        assert_eq!(LogScaled::ZERO.powi(0), LogScaled::ONE);
        assert!(close(two.recip().to_f64(), 0.5));
        assert_eq!(LogScaled::ZERO.recip().ln_abs(), f64::INFINITY);
    }

    #[test]
    fn ordering_is_the_real_line_order() {
        let mut values = [
            LogScaled::from_f64(-3.0),
            LogScaled::from_ln(900.0), // > f64::MAX
            LogScaled::ZERO,
            LogScaled::from_f64(0.5),
            LogScaled::from_f64(-1e-5),
            LogScaled::ONE,
        ];
        values.sort_by(LogScaled::total_cmp);
        let as_f64: Vec<f64> = values.iter().map(|v| v.to_f64()).collect();
        for (got, want) in as_f64
            .iter()
            .zip([-3.0, -1e-5, 0.0, 0.5, 1.0, f64::INFINITY])
        {
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0) || *got == want,
                "sorted order wrong: {as_f64:?}"
            );
        }
        // deeper negative magnitude sorts *below* shallower negative
        assert!(LogScaled::from_f64(-10.0) < LogScaled::from_f64(-2.0));
        assert!(LogScaled::from_f64(2.0) > LogScaled::ZERO);
        assert!(LogScaled::partial_cmp(
            &LogScaled {
                sign: 1,
                ln_mag: f64::NAN
            },
            &LogScaled::ONE
        )
        .is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(LogScaled::ZERO.to_string(), "0");
        assert_eq!(LogScaled::ONE.to_string(), "exp(0)");
        assert_eq!(LogScaled::from_ln(2.5).to_string(), "exp(2.5)");
        assert!(LogScaled::from_f64(-1.0).to_string().starts_with('-'));
    }

    #[test]
    fn serializes_sign_and_log_magnitude() {
        let v = LogScaled::from_ln(12345.678);
        let json = serde_json::to_value(v).unwrap();
        assert_eq!(json.get("sign").and_then(|s| s.as_i64()), Some(1));
        assert_eq!(json.get("ln_mag").and_then(|l| l.as_f64()), Some(12345.678));
    }
}
