//! Generic numeric routines used as independent cross-checks.
//!
//! The closed forms in this crate all come with calculus proofs; the
//! experiment harness re-derives the optima *numerically* with these
//! routines so a formula transcription error cannot silently survive.

use crate::BoundsError;

/// Golden-section minimization of a unimodal function on `[a, b]`.
///
/// Returns `(argmin, min)` with the bracketing interval narrowed to `tol`.
/// Note the usual caveat: near a smooth minimum the function is flat to
/// machine precision, so the *argument* cannot be located better than about
/// `sqrt(f64::EPSILON) ≈ 1.5e-8` regardless of `tol`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if the interval is empty/invalid
/// or `tol` is not positive.
///
/// # Example
///
/// ```
/// use raysearch_bounds::numeric::golden_section_min;
/// let (x, v) = golden_section_min(|x| (x - 2.0) * (x - 2.0), 0.0, 5.0, 1e-10)?;
/// assert!((x - 2.0).abs() < 1e-6);
/// assert!(v < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn golden_section_min(
    f: impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<(f64, f64), BoundsError> {
    if !(a.is_finite() && b.is_finite() && a < b) {
        return Err(BoundsError::OutOfDomain {
            name: "interval",
            value: b - a,
            domain: "a < b, both finite",
        });
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(BoundsError::OutOfDomain {
            name: "tol",
            value: tol,
            domain: "tol > 0",
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut lo, mut hi) = (a, b);
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    while hi - lo > tol {
        if fc <= fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
    }
    let x = 0.5 * (lo + hi);
    Ok((x, f(x)))
}

/// Bisection root finding for a continuous function with a sign change on
/// `[a, b]`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if the interval is invalid, `tol`
/// is not positive, or `f(a)` and `f(b)` have the same sign.
///
/// # Example
///
/// ```
/// use raysearch_bounds::numeric::bisect_root;
/// let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((r - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn bisect_root(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64, BoundsError> {
    if !(a.is_finite() && b.is_finite() && a < b) {
        return Err(BoundsError::OutOfDomain {
            name: "interval",
            value: b - a,
            domain: "a < b, both finite",
        });
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(BoundsError::OutOfDomain {
            name: "tol",
            value: tol,
            domain: "tol > 0",
        });
    }
    let (mut lo, mut hi) = (a, b);
    let (flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(BoundsError::OutOfDomain {
            name: "sign change",
            value: flo.signum(),
            domain: "f(a) and f(b) must differ in sign",
        });
    }
    let neg_lo = flo < 0.0;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 {
            return Ok(mid);
        }
        if (fm < 0.0) == neg_lo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Supremum of `f` over a geometric grid on `[lo, hi]` with the given
/// number of samples — a blunt instrument used only for *confirming*
/// exact computations, never as a primary result.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] on an invalid range or
/// `samples < 2`.
pub fn grid_sup(
    f: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    samples: usize,
) -> Result<f64, BoundsError> {
    if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
        return Err(BoundsError::OutOfDomain {
            name: "range",
            value: hi - lo,
            domain: "0 < lo < hi",
        });
    }
    if samples < 2 {
        return Err(BoundsError::OutOfDomain {
            name: "samples",
            value: samples as f64,
            domain: "samples >= 2",
        });
    }
    let step = (hi / lo).powf(1.0 / (samples as f64 - 1.0));
    let mut best = f64::NEG_INFINITY;
    let mut x = lo;
    for _ in 0..samples {
        best = best.max(f(x));
        x *= step;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{c_fractional, mu_threshold};
    use crate::strategy_math::{cyclic_ratio, optimal_alpha};

    #[test]
    fn golden_section_finds_parabola_min() {
        let (x, v) = golden_section_min(|x| (x - 3.0).powi(2) + 1.0, -10.0, 10.0, 1e-10).unwrap();
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_rejects_bad_input() {
        assert!(golden_section_min(|x| x, 1.0, 1.0, 1e-8).is_err());
        assert!(golden_section_min(|x| x, 0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn numeric_alpha_matches_closed_form() {
        // Independent re-derivation of alpha* for several (q,k).
        for (q, k) in [(2u32, 1u32), (4, 3), (6, 5), (9, 4)] {
            let (alpha_num, _) = golden_section_min(
                |a| cyclic_ratio(a, q, k).unwrap_or(f64::INFINITY),
                1.0 + 1e-9,
                16.0,
                1e-12,
            )
            .unwrap();
            let alpha_closed = optimal_alpha(q, k).unwrap();
            assert!(
                (alpha_num - alpha_closed).abs() < 1e-6,
                "alpha mismatch at q={q}, k={k}: {alpha_num} vs {alpha_closed}"
            );
        }
    }

    #[test]
    fn numeric_min_ratio_matches_threshold() {
        for (q, k) in [(3u32, 2u32), (4, 3), (5, 2)] {
            let (_, min_ratio) = golden_section_min(
                |a| cyclic_ratio(a, q, k).unwrap_or(f64::INFINITY),
                1.0 + 1e-9,
                16.0,
                1e-12,
            )
            .unwrap();
            let mu = mu_threshold(k, q).unwrap();
            assert!(
                (min_ratio - (2.0 * mu + 1.0)).abs() < 1e-6,
                "ratio mismatch at q={q}, k={k}"
            );
        }
    }

    #[test]
    fn bisect_root_basics() {
        let r = bisect_root(|x| x - 1.5, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - 1.5).abs() < 1e-10);
        // endpoints that are roots
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        // same sign: error
        assert!(bisect_root(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
    }

    #[test]
    fn bisect_inverts_c_fractional() {
        // find eta with C(eta) = 9: should be 2 (the cow path).
        let eta = bisect_root(
            |e| c_fractional(e).unwrap_or(f64::NEG_INFINITY) - 9.0,
            1.0 + 1e-9,
            5.0,
            1e-12,
        )
        .unwrap();
        assert!((eta - 2.0).abs() < 1e-9);
    }

    #[test]
    fn grid_sup_confirms_monotone_function() {
        let sup = grid_sup(|x| 1.0 - 1.0 / x, 1.0, 100.0, 1000).unwrap();
        assert!((sup - 0.99).abs() < 1e-9);
        assert!(grid_sup(|x| x, 0.0, 1.0, 10).is_err());
        assert!(grid_sup(|x| x, 1.0, 2.0, 1).is_err());
    }
}
