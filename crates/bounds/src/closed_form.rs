//! The paper's closed-form competitive ratios.
//!
//! Everything reduces to `Λ(η) = 2·η^η/(η−1)^(η−1) + 1` ([`lambda_big`]),
//! evaluated in log space for numerical stability. The specialized entry
//! points validate their parameter domains exactly as the corresponding
//! theorems state them.

use crate::BoundsError;

/// The master ratio `Λ(η) = 2·η^η/(η−1)^(η−1) + 1`, for `η ≥ 1`.
///
/// At `η = 1` the limit value `3` is returned (the factor
/// `(η−1)^(η−1) → 1` as `η → 1⁺`). The function is strictly increasing on
/// `[1, ∞)`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `eta < 1`, is NaN or infinite.
///
/// # Example
///
/// ```
/// use raysearch_bounds::lambda_big;
/// // η = 2 is the classic cow path: 2·4/1 + 1 = 9.
/// assert!((lambda_big(2.0)? - 9.0).abs() < 1e-12);
/// // η → 1⁺ tends to 3.
/// assert!((lambda_big(1.0)? - 3.0).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn lambda_big(eta: f64) -> Result<f64, BoundsError> {
    if !eta.is_finite() || eta < 1.0 {
        return Err(BoundsError::OutOfDomain {
            name: "eta",
            value: eta,
            domain: "eta >= 1",
        });
    }
    Ok(2.0 * eta_power_factor(eta) + 1.0)
}

/// The factor `η^η/(η−1)^(η−1)` in log space; `η = 1` maps to `1`.
fn eta_power_factor(eta: f64) -> f64 {
    let e1 = eta - 1.0;
    let log_num = eta * eta.ln();
    // x·ln x → 0 as x → 0⁺; define the η = 1 case by the limit.
    let log_den = if e1 <= 0.0 { 0.0 } else { e1 * e1.ln() };
    (log_num - log_den).exp()
}

/// Converts a competitive ratio `λ` to the paper's `μ = (λ−1)/2`.
///
/// `μ` is the natural scale of the covering arguments: a robot λ-covers `x`
/// iff the relevant turning-point prefix sum is at most `μ·x`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `lambda <= 1` or not finite.
pub fn lambda_to_mu(lambda: f64) -> Result<f64, BoundsError> {
    if !lambda.is_finite() || lambda <= 1.0 {
        return Err(BoundsError::OutOfDomain {
            name: "lambda",
            value: lambda,
            domain: "lambda > 1",
        });
    }
    Ok((lambda - 1.0) / 2.0)
}

/// Converts `μ` back to the competitive ratio `λ = 2μ + 1`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `mu <= 0` or not finite.
pub fn mu_to_lambda(mu: f64) -> Result<f64, BoundsError> {
    if !mu.is_finite() || mu <= 0.0 {
        return Err(BoundsError::OutOfDomain {
            name: "mu",
            value: mu,
            domain: "mu > 0",
        });
    }
    Ok(2.0 * mu + 1.0)
}

/// The threshold `μ(q,k) = (q^q / ((q−k)^(q−k)·k^k))^(1/k)`, the root on the
/// right-hand side of inequality (12).
///
/// A `q`-fold λ-cover in the ORC setting requires `μ = (λ−1)/2 ≥ μ(q,k)`;
/// specialized to `q = 2(f+1)` (so `s = q−k`), this is also the ±-cover
/// threshold of Theorem 3. Scale invariance `μ(cq,ck) = μ(q,k)` holds for
/// any `c > 0`.
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] unless `0 < k < q`.
///
/// # Example
///
/// ```
/// use raysearch_bounds::mu_threshold;
/// // k = 1, q = 2: (2²/1)¹ = 4 — the cow-path μ.
/// assert!((mu_threshold(1, 2)? - 4.0).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn mu_threshold(k: u32, q: u32) -> Result<f64, BoundsError> {
    if k == 0 || q <= k {
        return Err(BoundsError::invalid(format!(
            "mu_threshold requires 0 < k < q, got k={k}, q={q}"
        )));
    }
    let (kf, qf) = (f64::from(k), f64::from(q));
    let sf = qf - kf;
    let log = (qf * qf.ln() - sf * if sf > 0.0 { sf.ln() } else { 0.0 } - kf * kf.ln()) / kf;
    Ok(log.exp())
}

/// **Theorem 1 / Eq. (1)**: the optimal competitive ratio `A(k,f)` for `k`
/// robots on the line, `f` of them crash-faulty, in the nontrivial regime
/// `0 < s ≤ k` with `s = 2(f+1) − k`.
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] outside the regime: use
/// [`LineInstance::regime`](crate::LineInstance::regime) for full regime
/// classification (`s ≤ 0` gives ratio 1, `k = f` is impossible).
///
/// # Example
///
/// ```
/// use raysearch_bounds::a_line;
/// // k = 3, f = 1: ρ = 4/3, the value the paper reports for
/// // B(3,1) ≥ (8/3)·4^(1/3) + 1 ≈ 5.2326.
/// let v = a_line(3, 1)?;
/// assert!((v - (8.0 / 3.0 * 4f64.powf(1.0 / 3.0) + 1.0)).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn a_line(k: u32, f: u32) -> Result<f64, BoundsError> {
    if k == 0 {
        return Err(BoundsError::invalid("need at least one robot"));
    }
    if f >= k {
        return Err(BoundsError::invalid(format!(
            "A(k,f) needs f < k (search impossible otherwise), got k={k}, f={f}"
        )));
    }
    let q = 2 * (f + 1);
    if q <= k {
        return Err(BoundsError::invalid(format!(
            "A(k,f) formula needs s = 2(f+1)-k > 0, got k={k}, f={f}; \
             the ratio is 1 in this regime"
        )));
    }
    lambda_big(f64::from(q) / f64::from(k))
}

/// **Theorem 6 / Eq. (9)**: the optimal competitive ratio `A(m,k,f)` for
/// `k` robots on `m` rays, `f` of them crash-faulty, valid for
/// `f < k < q = m(f+1)`.
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] outside `f < k < m(f+1)`.
///
/// # Example
///
/// ```
/// use raysearch_bounds::{a_line, a_rays};
/// // Substituting m = 2 recovers Theorem 1 (the paper notes this).
/// assert!((a_rays(2, 3, 1)? - a_line(3, 1)?).abs() < 1e-12);
/// // f = 0, k = 1: the classic m-ray constant 1 + 2·m^m/(m-1)^(m-1).
/// let v = a_rays(3, 1, 0)?;
/// assert!((v - (1.0 + 2.0 * 27.0 / 4.0)).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn a_rays(m: u32, k: u32, f: u32) -> Result<f64, BoundsError> {
    if m == 0 {
        return Err(BoundsError::invalid("need at least one ray"));
    }
    if k <= f {
        return Err(BoundsError::invalid(format!(
            "A(m,k,f) needs f < k, got k={k}, f={f}"
        )));
    }
    let q = m
        .checked_mul(f + 1)
        .ok_or_else(|| BoundsError::invalid("m(f+1) overflows u32"))?;
    if k >= q {
        return Err(BoundsError::invalid(format!(
            "A(m,k,f) formula needs k < m(f+1), got k={k}, q={q}; \
             the ratio is 1 in this regime"
        )));
    }
    lambda_big(f64::from(q) / f64::from(k))
}

/// **Eq. (10)**, tight by Theorem 6: the optimal ratio `C(k,q)` for a
/// `q`-fold λ-cover of `R≥1` by `k` robots in the one-ray-cover-with-returns
/// (ORC) setting.
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] unless `0 < k < q`.
pub fn c_orc(k: u32, q: u32) -> Result<f64, BoundsError> {
    if k == 0 || q <= k {
        return Err(BoundsError::invalid(format!(
            "C(k,q) requires 0 < k < q, got k={k}, q={q}"
        )));
    }
    lambda_big(f64::from(q) / f64::from(k))
}

/// **Eq. (11)**: the fractional one-ray-retrieval ratio
/// `C(η) = 2·η^η/(η−1)^(η−1) + 1` for real weight requirement `η > 1`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `eta <= 1` or not finite.
pub fn c_fractional(eta: f64) -> Result<f64, BoundsError> {
    if !eta.is_finite() || eta <= 1.0 {
        return Err(BoundsError::OutOfDomain {
            name: "eta",
            value: eta,
            domain: "eta > 1",
        });
    }
    lambda_big(eta)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn lambda_big_known_values() {
        // cow path
        assert!((lambda_big(2.0).unwrap() - 9.0).abs() < TOL);
        // limit at 1
        assert!((lambda_big(1.0).unwrap() - 3.0).abs() < TOL);
        // eta = 3/2: 2·(1.5^1.5/0.5^0.5) + 1
        let expect = 2.0 * (1.5f64.powf(1.5) / 0.5f64.powf(0.5)) + 1.0;
        assert!((lambda_big(1.5).unwrap() - expect).abs() < TOL);
    }

    #[test]
    fn lambda_big_monotone_increasing() {
        let mut prev = lambda_big(1.0).unwrap();
        let mut eta = 1.001;
        while eta < 6.0 {
            let v = lambda_big(eta).unwrap();
            assert!(v > prev, "not increasing at eta={eta}");
            prev = v;
            eta += 0.01;
        }
    }

    #[test]
    fn lambda_big_domain() {
        assert!(lambda_big(0.99).is_err());
        assert!(lambda_big(f64::NAN).is_err());
        assert!(lambda_big(f64::INFINITY).is_err());
    }

    #[test]
    fn mu_lambda_round_trip() {
        for lambda in [1.5, 3.0, 9.0, 100.0] {
            let mu = lambda_to_mu(lambda).unwrap();
            assert!((mu_to_lambda(mu).unwrap() - lambda).abs() < TOL);
        }
        assert!(lambda_to_mu(1.0).is_err());
        assert!(mu_to_lambda(0.0).is_err());
    }

    #[test]
    fn mu_threshold_matches_explicit_formula() {
        // k = 2, q = 3, s = 1: (3³/(1·2²))^{1/2} = (27/4)^{1/2}
        let v = mu_threshold(2, 3).unwrap();
        assert!((v - (27.0f64 / 4.0).sqrt()).abs() < TOL);
        // k = 1, q = 2: 4
        assert!((mu_threshold(1, 2).unwrap() - 4.0).abs() < TOL);
    }

    #[test]
    fn mu_threshold_scale_invariance() {
        for (k, q) in [(2u32, 3u32), (3, 4), (4, 7)] {
            let a = mu_threshold(k, q).unwrap();
            for c in [2u32, 3, 5] {
                let b = mu_threshold(c * k, c * q).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "scale invariance broken: mu({k},{q})={a} vs mu({},{})={b}",
                    c * k,
                    c * q
                );
            }
        }
    }

    #[test]
    fn mu_threshold_strictly_decreasing_along_diagonal() {
        // mu(q,k) < mu(q-1,k-1) for q > k > 1 (used in the induction).
        for (k, q) in [(2u32, 4u32), (3, 5), (5, 8), (7, 12)] {
            let big = mu_threshold(k - 1, q - 1).unwrap();
            let small = mu_threshold(k, q).unwrap();
            assert!(small < big, "mu({k},{q}) !< mu({},{})", k - 1, q - 1);
        }
    }

    #[test]
    fn a_line_equals_both_printed_forms() {
        // Eq. (1) prints the same value two ways; check they agree.
        for (k, f) in [(1u32, 0u32), (2, 1), (3, 1), (4, 2), (5, 3), (7, 4)] {
            let s = 2 * (f + 1) - k;
            let (kf, sf) = (f64::from(k), f64::from(s));
            let root = ((kf + sf) * (kf + sf).ln() - sf * sf.ln() - kf * kf.ln()) / kf;
            let explicit = 2.0 * root.exp() + 1.0;
            let v = a_line(k, f).unwrap();
            assert!(
                (v - explicit).abs() < 1e-9,
                "mismatch at k={k}, f={f}: {v} vs {explicit}"
            );
        }
    }

    #[test]
    fn a_line_classic_and_byzantine_values() {
        assert!((a_line(1, 0).unwrap() - 9.0).abs() < TOL);
        let b31 = 8.0 / 3.0 * 4f64.powf(1.0 / 3.0) + 1.0;
        assert!((a_line(3, 1).unwrap() - b31).abs() < TOL);
        assert!((b31 - 5.2326).abs() < 1e-3, "paper quotes approx 5.23");
    }

    #[test]
    fn a_line_rejects_out_of_regime() {
        assert!(a_line(0, 0).is_err());
        assert!(a_line(2, 2).is_err()); // f = k
        assert!(a_line(2, 3).is_err()); // f > k
        assert!(a_line(4, 1).is_err()); // s = 0: trivial regime
        assert!(a_line(5, 1).is_err()); // s < 0
    }

    #[test]
    fn a_rays_reduces_to_line_at_m2() {
        for (k, f) in [(1u32, 0u32), (3, 1), (5, 2), (7, 5)] {
            let line = a_line(k, f).unwrap();
            let rays = a_rays(2, k, f).unwrap();
            assert!((line - rays).abs() < TOL);
        }
    }

    #[test]
    fn a_rays_f0_classic_values() {
        // single robot on m rays: 1 + 2 m^m/(m-1)^{m-1}
        for m in 2u32..=8 {
            let mf = f64::from(m);
            let classic = 1.0 + 2.0 * mf.powf(mf) / (mf - 1.0).powf(mf - 1.0);
            let v = a_rays(m, 1, 0).unwrap();
            assert!((v - classic).abs() < 1e-9, "m={m}: {v} vs {classic}");
        }
    }

    #[test]
    fn a_rays_domain() {
        assert!(a_rays(0, 1, 0).is_err());
        assert!(a_rays(3, 1, 1).is_err()); // k <= f
        assert!(a_rays(3, 3, 0).is_err()); // k = q
        assert!(a_rays(3, 7, 1).is_err()); // k > q = 6
        assert!(a_rays(3, 5, 1).is_ok()); // f=1 < k=5 < q=6
    }

    #[test]
    fn c_orc_equals_a_rays_through_q() {
        // C(k, m(f+1)) = A(m,k,f) — the reduction is an equality of values.
        let v1 = c_orc(3, 4).unwrap(); // q = 4 = 2(1+1): line with k=3,f=1
        let v2 = a_line(3, 1).unwrap();
        assert!((v1 - v2).abs() < TOL);
        assert!(c_orc(3, 3).is_err());
        assert!(c_orc(0, 3).is_err());
    }

    #[test]
    fn c_fractional_limits_and_domain() {
        assert!(c_fractional(1.0).is_err());
        assert!(c_fractional(0.5).is_err());
        // approaches 3 from above as eta -> 1+
        let near = c_fractional(1.0 + 1e-9).unwrap();
        assert!((near - 3.0).abs() < 1e-6);
        // matches rational specializations: eta = q/k
        let v = c_fractional(4.0 / 3.0).unwrap();
        assert!((v - c_orc(3, 4).unwrap()).abs() < TOL);
    }
}
