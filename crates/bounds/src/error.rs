use std::fmt;

/// Error raised by bound computations on invalid parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoundsError {
    /// A structural parameter (robot count, ray count, fault count) was
    /// inconsistent.
    InvalidParameters {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A real-valued argument was outside the domain of the requested
    /// formula.
    OutOfDomain {
        /// Name of the offending argument.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Description of the valid domain.
        domain: &'static str,
    },
}

impl BoundsError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        BoundsError::InvalidParameters {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsError::InvalidParameters { reason } => {
                write!(f, "invalid parameters: {reason}")
            }
            BoundsError::OutOfDomain {
                name,
                value,
                domain,
            } => write!(f, "argument {name}={value} outside domain {domain}"),
        }
    }
}

impl std::error::Error for BoundsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BoundsError::invalid("k must exceed f");
        assert!(e.to_string().contains("k must exceed f"));
        let e = BoundsError::OutOfDomain {
            name: "eta",
            value: 0.5,
            domain: "eta > 1",
        };
        let s = e.to_string();
        assert!(s.contains("eta") && s.contains("0.5"));
    }
}
