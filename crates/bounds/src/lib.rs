//! Closed-form competitive ratios and numeric cross-checks for faulty-robot
//! search, after Kupavskii & Welzl, *Lower Bounds for Searching Robots, some
//! Faulty*, PODC 2018.
//!
//! The paper's quantitative content is concentrated in a single function of
//! one variable: for `η > 1`,
//!
//! ```text
//! Λ(η) = 2 · η^η / (η-1)^(η-1) + 1
//! ```
//!
//! * **Theorem 1** (line, crash faults): `A(k,f) = Λ(ρ)` with
//!   `ρ = 2(f+1)/k`, valid when `1 < ρ ≤ 2`;
//! * **Theorem 6** (`m` rays): `A(m,k,f) = Λ(q/k)` with `q = m(f+1)`,
//!   valid when `f < k < q`;
//! * **Eq. (10)** (ORC relaxation): `C(k,q) ≥ Λ(q/k)`, tight;
//! * **Eq. (11)** (fractional relaxation): `C(η) = Λ(η)` exactly.
//!
//! This crate computes these quantities exactly (up to `f64`), classifies
//! parameter regimes, provides the potential-function growth factors of
//! Lemmas 4–5, the optimal base `α*` of the exponential upper-bound
//! strategy, independent numeric optimizers used as cross-checks, and the
//! prior literature constants the paper improves on.
//!
//! # Example
//!
//! ```
//! use raysearch_bounds::{LineInstance, Regime};
//!
//! // One healthy robot, no faults: the classic cow-path constant 9.
//! let inst = LineInstance::new(1, 0)?;
//! match inst.regime() {
//!     Regime::Searchable { ratio } => assert!((ratio - 9.0).abs() < 1e-12),
//!     _ => unreachable!(),
//! }
//!
//! // Plenty of robots: ratio 1 by sending f+1 each way.
//! assert_eq!(LineInstance::new(4, 1)?.regime(), Regime::Trivial);
//!
//! // All robots faulty: hopeless.
//! assert_eq!(LineInstance::new(2, 2)?.regime(), Regime::Impossible);
//! # Ok::<(), raysearch_bounds::BoundsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod closed_form;
pub mod growth;
pub mod instance;
pub mod literature;
pub mod logscaled;
pub mod numeric;
pub mod strategy_math;

pub use closed_form::{
    a_line, a_rays, c_fractional, c_orc, lambda_big, lambda_to_mu, mu_threshold, mu_to_lambda,
};
pub use error::BoundsError;
pub use growth::{delta_growth, lemma4_argmax, lemma5_min_ratio, potential_poly};
pub use instance::{LineInstance, RayInstance, Regime};
pub use logscaled::LogScaled;
pub use strategy_math::{cyclic_ratio, gamma_factor, optimal_alpha};
