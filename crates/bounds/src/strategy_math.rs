//! The appendix's exponential upper-bound strategy, quantitatively.
//!
//! The cyclic strategy with geometric base `α > 1` achieves competitive
//! ratio `2γ(α) + 1` with `γ(α) = α^q / (α^k − 1)`, where `q = m(f+1)` and
//! `k` is the number of robots. The paper minimizes `γ` at
//! `α* = (q/(q−k))^(1/k)`, recovering exactly the lower-bound threshold —
//! that coincidence *is* the tightness of Theorems 1 and 6. This module
//! provides the pieces separately so the benches can sweep `α` and exhibit
//! the minimum (experiment E5).

use crate::BoundsError;

/// The delay factor `γ(α) = α^q / (α^k − 1)` of the cyclic exponential
/// strategy (appendix, proof of the upper bound in (10)).
///
/// The competitive ratio of the strategy is `2γ(α) + 1`.
///
/// # Errors
///
/// Returns [`BoundsError::OutOfDomain`] if `alpha <= 1` (the geometric
/// progression must grow) or not finite, and
/// [`BoundsError::InvalidParameters`] unless `0 < k < q`.
pub fn gamma_factor(alpha: f64, q: u32, k: u32) -> Result<f64, BoundsError> {
    if k == 0 || q <= k {
        return Err(BoundsError::invalid(format!(
            "gamma requires 0 < k < q, got k={k}, q={q}"
        )));
    }
    if !(alpha.is_finite() && alpha > 1.0) {
        return Err(BoundsError::OutOfDomain {
            name: "alpha",
            value: alpha,
            domain: "alpha > 1",
        });
    }
    let log_num = f64::from(q) * alpha.ln();
    let den = alpha.powi(k as i32) - 1.0;
    Ok(log_num.exp() / den)
}

/// The optimal geometric base `α* = (q/(q−k))^(1/k)` minimizing
/// [`gamma_factor`].
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] unless `0 < k < q`.
///
/// # Example
///
/// ```
/// use raysearch_bounds::optimal_alpha;
/// // Cow path (q = 2, k = 1): alpha* = 2, the doubling strategy.
/// assert!((optimal_alpha(2, 1)? - 2.0).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn optimal_alpha(q: u32, k: u32) -> Result<f64, BoundsError> {
    if k == 0 || q <= k {
        return Err(BoundsError::invalid(format!(
            "optimal_alpha requires 0 < k < q, got k={k}, q={q}"
        )));
    }
    let (qf, kf) = (f64::from(q), f64::from(k));
    Ok((qf / (qf - kf)).powf(1.0 / kf))
}

/// The competitive ratio `2γ(α) + 1` of the cyclic exponential strategy
/// with base `α`.
///
/// At `α = α*` this equals the tight bound `Λ(q/k)`; at any other `α` it is
/// strictly larger.
///
/// # Errors
///
/// Propagates the errors of [`gamma_factor`].
///
/// # Example
///
/// ```
/// use raysearch_bounds::{c_orc, cyclic_ratio, optimal_alpha};
/// let (q, k) = (4, 3);
/// let at_opt = cyclic_ratio(optimal_alpha(q, k)?, q, k)?;
/// assert!((at_opt - c_orc(k, q)?).abs() < 1e-9);
/// assert!(cyclic_ratio(1.5, q, k)? > at_opt);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn cyclic_ratio(alpha: f64, q: u32, k: u32) -> Result<f64, BoundsError> {
    Ok(2.0 * gamma_factor(alpha, q, k)? + 1.0)
}

/// The minimized delay factor `γ(α*) = μ(q,k)`, for cross-checking against
/// [`mu_threshold`](crate::mu_threshold). Exposed mostly to make the upper = lower coincidence a
/// named, testable fact.
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] unless `0 < k < q`.
pub fn min_gamma(q: u32, k: u32) -> Result<f64, BoundsError> {
    gamma_factor(optimal_alpha(q, k)?, q, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{c_orc, mu_threshold, mu_to_lambda};

    #[test]
    fn gamma_domain() {
        assert!(gamma_factor(2.0, 2, 2).is_err());
        assert!(gamma_factor(2.0, 2, 0).is_err());
        assert!(gamma_factor(1.0, 3, 1).is_err());
        assert!(gamma_factor(f64::NAN, 3, 1).is_err());
    }

    #[test]
    fn cow_path_doubling() {
        // q=2, k=1: gamma(2) = 4/(2-1) = 4, ratio 9.
        assert!((gamma_factor(2.0, 2, 1).unwrap() - 4.0).abs() < 1e-12);
        assert!((cyclic_ratio(2.0, 2, 1).unwrap() - 9.0).abs() < 1e-12);
        assert!((optimal_alpha(2, 1).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_gamma_equals_mu_threshold() {
        for (q, k) in [
            (2u32, 1u32),
            (3, 1),
            (3, 2),
            (4, 3),
            (6, 5),
            (9, 4),
            (12, 7),
        ] {
            let g = min_gamma(q, k).unwrap();
            let mu = mu_threshold(k, q).unwrap();
            assert!(
                (g - mu).abs() / mu < 1e-12,
                "min gamma {g} != mu threshold {mu} at q={q}, k={k}"
            );
            // ...and hence 2*gamma+1 = C(k,q)
            let lam = mu_to_lambda(g).unwrap();
            assert!((lam - c_orc(k, q).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn optimum_is_a_minimum_on_a_grid() {
        for (q, k) in [(2u32, 1u32), (4, 3), (6, 5), (10, 3)] {
            let astar = optimal_alpha(q, k).unwrap();
            let best = gamma_factor(astar, q, k).unwrap();
            for i in 1..200 {
                let a = 1.0 + f64::from(i) * 0.02;
                if (a - astar).abs() < 1e-9 {
                    continue;
                }
                let g = gamma_factor(a, q, k).unwrap();
                assert!(
                    g >= best - 1e-12,
                    "gamma({a}) = {g} beats gamma(alpha*) = {best} at q={q}, k={k}"
                );
            }
        }
    }

    #[test]
    fn ratio_grows_away_from_optimum() {
        let (q, k) = (6u32, 5u32);
        let astar = optimal_alpha(q, k).unwrap();
        let base = cyclic_ratio(astar, q, k).unwrap();
        assert!(cyclic_ratio(astar * 1.3, q, k).unwrap() > base);
        assert!(cyclic_ratio(1.0 + (astar - 1.0) * 0.5, q, k).unwrap() > base);
    }
}
