//! Prior results from the literature that the paper compares against.
//!
//! Kept in one place so the experiment tables can print "previous bound"
//! columns with citations. Only bounds actually quoted by Kupavskii–Welzl
//! (or classical constants they reference) appear here.

use crate::{a_line, BoundsError};

/// The classical single-robot cow-path constant, `9`
/// (Beck–Newman 1970; Baeza-Yates–Culberson–Rawlins 1988).
pub const COW_PATH_RATIO: f64 = 9.0;

/// The prior lower bound `B(3,1) ≥ 3.93` for Byzantine search on the line
/// with `k = 3`, `f = 1`, from Czyzowitz et al., ISAAC 2016 (the paper's
/// reference \[13\]).
pub const PRIOR_BYZANTINE_LB_3_1: f64 = 3.93;

/// The classical optimal ratio for a single robot on `m ≥ 2` rays,
/// `1 + 2·m^m/(m−1)^(m−1)` (Baeza-Yates–Culberson–Rawlins).
///
/// # Errors
///
/// Returns [`BoundsError::InvalidParameters`] if `m < 2`.
///
/// # Example
///
/// ```
/// use raysearch_bounds::literature::single_robot_m_rays;
/// assert!((single_robot_m_rays(2)? - 9.0).abs() < 1e-12);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn single_robot_m_rays(m: u32) -> Result<f64, BoundsError> {
    if m < 2 {
        return Err(BoundsError::invalid(
            "single-robot ray search needs m >= 2 (m = 1 is trivial)",
        ));
    }
    let mf = f64::from(m);
    Ok(1.0 + 2.0 * (mf * mf.ln() - (mf - 1.0) * (mf - 1.0).ln()).exp())
}

/// A lower bound on the Byzantine competitive ratio `B(k,f)` implied by the
/// paper: every crash-fault lower bound applies verbatim to Byzantine
/// faults, so `B(k,f) ≥ A(k,f)`.
///
/// # Errors
///
/// Propagates [`a_line`]'s domain errors (`f < k` and `2(f+1) > k`
/// required).
///
/// # Example
///
/// ```
/// use raysearch_bounds::literature::{byzantine_lower_bound, PRIOR_BYZANTINE_LB_3_1};
/// let new = byzantine_lower_bound(3, 1)?;
/// assert!(new > PRIOR_BYZANTINE_LB_3_1); // 5.2326... > 3.93
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
pub fn byzantine_lower_bound(k: u32, f: u32) -> Result<f64, BoundsError> {
    a_line(k, f)
}

/// The best previously published Byzantine lower bound quoted by the
/// paper for `(k, f)`, if any — the single source for "prior bound"
/// columns (currently only `(3, 1)` from ISAAC 2016).
pub fn prior_byzantine_lower_bound(k: u32, f: u32) -> Option<f64> {
    ((k, f) == (3, 1)).then_some(PRIOR_BYZANTINE_LB_3_1)
}

/// One row of the Byzantine-improvement table (experiment E3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ByzantineRow {
    /// Number of robots.
    pub k: u32,
    /// Number of Byzantine robots.
    pub f: u32,
    /// Best previously published lower bound, if one is quoted in the
    /// paper.
    pub prior_lower_bound: Option<f64>,
    /// The new lower bound `A(k,f)` from Theorem 1.
    pub new_lower_bound: f64,
}

/// Builds the Byzantine comparison table for all `(k,f)` in the nontrivial
/// regime with `k ≤ max_k`.
///
/// # Errors
///
/// Propagates formula errors (none occur for in-regime parameters).
pub fn byzantine_table(max_k: u32) -> Result<Vec<ByzantineRow>, BoundsError> {
    let mut rows = Vec::new();
    for k in 1..=max_k {
        for f in 0..k {
            let s = 2 * (i64::from(f) + 1) - i64::from(k);
            if s <= 0 || s > i64::from(k) {
                continue;
            }
            rows.push(ByzantineRow {
                k,
                f,
                prior_lower_bound: prior_byzantine_lower_bound(k, f),
                new_lower_bound: byzantine_lower_bound(k, f)?,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_path_consistency() {
        // the m = 2 classical constant equals the cow-path 9
        assert!((single_robot_m_rays(2).unwrap() - COW_PATH_RATIO).abs() < 1e-12);
        assert!(single_robot_m_rays(1).is_err());
    }

    #[test]
    fn classic_three_ray_value() {
        // 1 + 2·27/4 = 14.5
        assert!((single_robot_m_rays(3).unwrap() - 14.5).abs() < 1e-12);
    }

    #[test]
    fn byzantine_improvement_is_strict() {
        let new = byzantine_lower_bound(3, 1).unwrap();
        assert!(new > PRIOR_BYZANTINE_LB_3_1 + 1.0);
        assert!((new - 5.2326).abs() < 1e-3);
    }

    #[test]
    fn byzantine_table_covers_regime() {
        let rows = byzantine_table(6).unwrap();
        assert!(rows.iter().any(|r| (r.k, r.f) == (1, 0)));
        assert!(rows.iter().any(|r| (r.k, r.f) == (3, 1)));
        // trivial-regime pairs excluded
        assert!(!rows.iter().any(|r| (r.k, r.f) == (4, 1)));
        // impossible pairs excluded
        assert!(!rows.iter().any(|r| r.k == r.f));
        // prior bound only on (3,1)
        for r in &rows {
            if (r.k, r.f) == (3, 1) {
                assert!(r.prior_lower_bound.is_some());
            } else {
                assert!(r.prior_lower_bound.is_none());
            }
        }
    }
}
