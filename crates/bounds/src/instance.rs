//! Problem-instance parameter sets and regime classification.
//!
//! Theorem 1 and Theorem 6 each carve the parameter space into three
//! regimes; [`Regime`] makes the case analysis explicit so callers cannot
//! accidentally apply a formula outside its domain.

use crate::{a_line, a_rays, BoundsError};

/// Which of the paper's three parameter regimes an instance falls in.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Regime {
    /// All robots may be faulty (`k = f`): no strategy can ever confirm the
    /// target, the competitive ratio is unbounded.
    Impossible,
    /// Enough robots to saturate every direction (`k ≥ 2(f+1)` on the line,
    /// `k ≥ m(f+1)` on rays): competitive ratio `1` by sending `f+1` robots
    /// straight out along each direction/ray.
    Trivial,
    /// The interesting regime where the paper's formula is tight.
    Searchable {
        /// The optimal competitive ratio `Λ(q/k)`.
        ratio: f64,
    },
}

impl Regime {
    /// The competitive ratio of this regime, if search is possible.
    ///
    /// `Trivial` maps to `1.0`; `Impossible` maps to `None`.
    pub fn ratio(self) -> Option<f64> {
        match self {
            Regime::Impossible => None,
            Regime::Trivial => Some(1.0),
            Regime::Searchable { ratio } => Some(ratio),
        }
    }
}

/// Parameters of the line problem: `k` robots, `f` of them crash-faulty.
///
/// # Example
///
/// ```
/// use raysearch_bounds::LineInstance;
/// let inst = LineInstance::new(3, 1)?;
/// assert_eq!(inst.s(), 1);                 // 2(f+1) - k
/// assert!((inst.rho() - 4.0 / 3.0).abs() < 1e-12);
/// assert!(inst.regime().ratio().unwrap() > 5.0);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct LineInstance {
    k: u32,
    f: u32,
}

impl LineInstance {
    /// Creates a line instance with `k ≥ 1` robots of which `f ≤ k` are
    /// faulty.
    ///
    /// # Errors
    ///
    /// Returns [`BoundsError::InvalidParameters`] if `k = 0` or `f > k`.
    pub fn new(k: u32, f: u32) -> Result<Self, BoundsError> {
        if k == 0 {
            return Err(BoundsError::invalid("need at least one robot"));
        }
        if f > k {
            return Err(BoundsError::invalid(format!(
                "cannot have more faulty robots than robots: k={k}, f={f}"
            )));
        }
        Ok(LineInstance { k, f })
    }

    /// Total number of robots.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of crash-faulty robots.
    #[inline]
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Number of robots that must visit a point before it is confirmed,
    /// `f + 1`.
    #[inline]
    pub fn visits_required(&self) -> u32 {
        self.f + 1
    }

    /// The paper's `s = 2(f+1) − k` (may be negative in the trivial
    /// regime).
    #[inline]
    pub fn s(&self) -> i64 {
        2 * (i64::from(self.f) + 1) - i64::from(self.k)
    }

    /// The paper's `ρ = 2(f+1)/k`.
    #[inline]
    pub fn rho(&self) -> f64 {
        2.0 * (f64::from(self.f) + 1.0) / f64::from(self.k)
    }

    /// The coverage multiplicity `q = 2(f+1)` when the line is viewed as
    /// two rays in the ORC relaxation.
    #[inline]
    pub fn q(&self) -> u32 {
        2 * (self.f + 1)
    }

    /// Classifies the instance into the paper's three regimes.
    pub fn regime(&self) -> Regime {
        if self.f == self.k {
            Regime::Impossible
        } else if self.s() <= 0 {
            Regime::Trivial
        } else {
            Regime::Searchable {
                ratio: a_line(self.k, self.f).expect("regime checked"),
            }
        }
    }

    /// Views this instance as the equivalent two-ray instance.
    pub fn as_ray_instance(&self) -> RayInstance {
        RayInstance {
            m: 2,
            k: self.k,
            f: self.f,
        }
    }
}

impl std::fmt::Display for LineInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line(k={}, f={})", self.k, self.f)
    }
}

/// Parameters of the `m`-ray problem: `k` robots on `m` rays, `f` faulty.
///
/// # Example
///
/// ```
/// use raysearch_bounds::{RayInstance, Regime};
/// let inst = RayInstance::new(3, 2, 0)?;
/// assert_eq!(inst.q(), 3);
/// assert!(matches!(inst.regime(), Regime::Searchable { .. }));
/// // k = m(f+1): trivial
/// assert_eq!(RayInstance::new(3, 3, 0)?.regime(), Regime::Trivial);
/// # Ok::<(), raysearch_bounds::BoundsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct RayInstance {
    m: u32,
    k: u32,
    f: u32,
}

impl RayInstance {
    /// Creates an `m`-ray instance.
    ///
    /// # Errors
    ///
    /// Returns [`BoundsError::InvalidParameters`] if `m = 0`, `k = 0`,
    /// `f > k`, or `m(f+1)` overflows.
    pub fn new(m: u32, k: u32, f: u32) -> Result<Self, BoundsError> {
        if m == 0 {
            return Err(BoundsError::invalid("need at least one ray"));
        }
        if k == 0 {
            return Err(BoundsError::invalid("need at least one robot"));
        }
        if f > k {
            return Err(BoundsError::invalid(format!(
                "cannot have more faulty robots than robots: k={k}, f={f}"
            )));
        }
        m.checked_mul(f + 1)
            .ok_or_else(|| BoundsError::invalid("m(f+1) overflows u32"))?;
        Ok(RayInstance { m, k, f })
    }

    /// Number of rays.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Total number of robots.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of crash-faulty robots.
    #[inline]
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Number of robots that must visit a point before it is confirmed,
    /// `f + 1`.
    #[inline]
    pub fn visits_required(&self) -> u32 {
        self.f + 1
    }

    /// The covering multiplicity `q = m(f+1)`.
    #[inline]
    pub fn q(&self) -> u32 {
        self.m * (self.f + 1)
    }

    /// The ratio argument `η = q/k`.
    #[inline]
    pub fn eta(&self) -> f64 {
        f64::from(self.q()) / f64::from(self.k)
    }

    /// Classifies the instance into the paper's three regimes.
    pub fn regime(&self) -> Regime {
        if self.f == self.k {
            Regime::Impossible
        } else if self.k >= self.q() {
            Regime::Trivial
        } else {
            Regime::Searchable {
                ratio: a_rays(self.m, self.k, self.f).expect("regime checked"),
            }
        }
    }
}

impl std::fmt::Display for RayInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rays(m={}, k={}, f={})", self.m, self.k, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_instance_validation() {
        assert!(LineInstance::new(0, 0).is_err());
        assert!(LineInstance::new(2, 3).is_err());
        assert!(LineInstance::new(2, 2).is_ok()); // valid params, Impossible regime
    }

    #[test]
    fn line_regimes_match_paper_case_analysis() {
        // k = f: impossible
        assert_eq!(
            LineInstance::new(3, 3).unwrap().regime(),
            Regime::Impossible
        );
        // k >= 2(f+1): trivial
        assert_eq!(LineInstance::new(4, 1).unwrap().regime(), Regime::Trivial);
        assert_eq!(LineInstance::new(9, 2).unwrap().regime(), Regime::Trivial);
        // 0 < s <= k: searchable with the formula value
        match LineInstance::new(3, 1).unwrap().regime() {
            Regime::Searchable { ratio } => {
                assert!((ratio - a_line(3, 1).unwrap()).abs() < 1e-12)
            }
            other => panic!("expected searchable, got {other:?}"),
        }
    }

    #[test]
    fn line_derived_quantities() {
        let i = LineInstance::new(3, 1).unwrap();
        assert_eq!(i.s(), 1);
        assert_eq!(i.q(), 4);
        assert_eq!(i.visits_required(), 2);
        assert!((i.rho() - 4.0 / 3.0).abs() < 1e-12);
        // s can be negative
        assert_eq!(LineInstance::new(10, 1).unwrap().s(), -6);
    }

    #[test]
    fn regime_ratio_projection() {
        assert_eq!(Regime::Impossible.ratio(), None);
        assert_eq!(Regime::Trivial.ratio(), Some(1.0));
        assert_eq!(Regime::Searchable { ratio: 9.0 }.ratio(), Some(9.0));
    }

    #[test]
    fn ray_instance_validation_and_regimes() {
        assert!(RayInstance::new(0, 1, 0).is_err());
        assert!(RayInstance::new(3, 0, 0).is_err());
        assert!(RayInstance::new(3, 1, 2).is_err());
        assert_eq!(
            RayInstance::new(3, 2, 2).unwrap().regime(),
            Regime::Impossible
        );
        assert_eq!(RayInstance::new(3, 6, 1).unwrap().regime(), Regime::Trivial);
        assert_eq!(RayInstance::new(1, 1, 0).unwrap().regime(), Regime::Trivial);
        match RayInstance::new(3, 5, 1).unwrap().regime() {
            Regime::Searchable { ratio } => {
                assert!((ratio - a_rays(3, 5, 1).unwrap()).abs() < 1e-12)
            }
            other => panic!("expected searchable, got {other:?}"),
        }
    }

    #[test]
    fn line_as_two_rays_same_regime_and_ratio() {
        for (k, f) in [(1u32, 0u32), (3, 1), (4, 1), (5, 5)] {
            let line = LineInstance::new(k, f).unwrap();
            let rays = line.as_ray_instance();
            assert_eq!(line.q(), rays.q());
            match (line.regime(), rays.regime()) {
                (Regime::Searchable { ratio: a }, Regime::Searchable { ratio: b }) => {
                    assert!((a - b).abs() < 1e-12)
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            LineInstance::new(3, 1).unwrap().to_string(),
            "line(k=3, f=1)"
        );
        assert_eq!(
            RayInstance::new(4, 3, 1).unwrap().to_string(),
            "rays(m=4, k=3, f=1)"
        );
    }
}
