use std::fmt;

/// Error raised when constructing fault models or simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The fault assignment does not fit the fleet.
    InvalidAssignment {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A simulation input was inconsistent.
    InvalidSimulation {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl FaultError {
    pub(crate) fn assignment(reason: impl Into<String>) -> Self {
        FaultError::InvalidAssignment {
            reason: reason.into(),
        }
    }

    pub(crate) fn simulation(reason: impl Into<String>) -> Self {
        FaultError::InvalidSimulation {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidAssignment { reason } => {
                write!(f, "invalid fault assignment: {reason}")
            }
            FaultError::InvalidSimulation { reason } => {
                write!(f, "invalid simulation: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FaultError::assignment("too many")
            .to_string()
            .contains("too many"));
        assert!(FaultError::simulation("no target")
            .to_string()
            .contains("no target"));
    }
}
