//! Concrete fault assignments: which robots are faulty, and how.

use raysearch_sim::RobotId;

use crate::FaultError;

/// The kind of misbehaviour a faulty robot exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Crash-type: visits the target but never reports it.
    Crash,
    /// Byzantine: may stay silent *and* may claim targets that do not
    /// exist.
    Byzantine,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Byzantine => write!(f, "byzantine"),
        }
    }
}

/// A concrete choice of faulty robots within a fleet of `k`.
///
/// # Example
///
/// ```
/// use raysearch_faults::{FaultAssignment, FaultKind};
/// use raysearch_sim::RobotId;
///
/// let a = FaultAssignment::new(4, FaultKind::Crash, [RobotId(1), RobotId(3)])?;
/// assert!(a.is_faulty(RobotId(1)));
/// assert!(!a.is_faulty(RobotId(0)));
/// assert_eq!(a.num_faulty(), 2);
/// # Ok::<(), raysearch_faults::FaultError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultAssignment {
    k: usize,
    kind: FaultKind,
    faulty: Vec<bool>,
}

impl FaultAssignment {
    /// Creates an assignment marking the given robots faulty.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidAssignment`] if `k = 0` or any robot
    /// index is out of range. Duplicate ids are tolerated (idempotent).
    pub fn new(
        k: usize,
        kind: FaultKind,
        faulty_robots: impl IntoIterator<Item = RobotId>,
    ) -> Result<Self, FaultError> {
        if k == 0 {
            return Err(FaultError::assignment("fleet must have at least one robot"));
        }
        let mut faulty = vec![false; k];
        for r in faulty_robots {
            if r.index() >= k {
                return Err(FaultError::assignment(format!(
                    "robot index {} out of range for k = {k}",
                    r.index()
                )));
            }
            faulty[r.index()] = true;
        }
        Ok(FaultAssignment { k, kind, faulty })
    }

    /// An assignment with no faulty robots.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidAssignment`] if `k = 0`.
    pub fn none(k: usize) -> Result<Self, FaultError> {
        Self::new(k, FaultKind::Crash, std::iter::empty())
    }

    /// Fleet size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The fault kind of this assignment.
    #[inline]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Whether `robot` is faulty. Out-of-range ids report `false`.
    #[inline]
    pub fn is_faulty(&self, robot: RobotId) -> bool {
        self.faulty.get(robot.index()).copied().unwrap_or(false)
    }

    /// Number of faulty robots.
    pub fn num_faulty(&self) -> usize {
        self.faulty.iter().filter(|&&b| b).count()
    }

    /// Iterates over the faulty robot ids in increasing order.
    pub fn faulty_robots(&self) -> impl Iterator<Item = RobotId> + '_ {
        self.faulty
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| RobotId(i))
    }

    /// Enumerates *all* assignments of exactly `f` faulty robots among `k`
    /// — exhaustive adversary search for small fleets (tests use this to
    /// prove the first-f-visitors adversary is worst-case).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidAssignment`] if `f > k` or `k = 0`, or
    /// if `k > 20` (the enumeration would be astronomically large).
    pub fn enumerate_all(k: usize, f: usize, kind: FaultKind) -> Result<Vec<Self>, FaultError> {
        if k == 0 {
            return Err(FaultError::assignment("fleet must have at least one robot"));
        }
        if f > k {
            return Err(FaultError::assignment(format!(
                "cannot mark {f} of {k} robots faulty"
            )));
        }
        if k > 20 {
            return Err(FaultError::assignment(
                "exhaustive enumeration is limited to k <= 20",
            ));
        }
        let mut out = Vec::new();
        // iterate bitmasks with popcount f
        for mask in 0u32..(1u32 << k) {
            if mask.count_ones() as usize != f {
                continue;
            }
            let faulty = (0..k).map(|i| mask & (1 << i) != 0).collect();
            out.push(FaultAssignment { k, kind, faulty });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let a = FaultAssignment::new(3, FaultKind::Crash, [RobotId(2)]).unwrap();
        assert_eq!(a.k(), 3);
        assert_eq!(a.kind(), FaultKind::Crash);
        assert!(a.is_faulty(RobotId(2)));
        assert!(!a.is_faulty(RobotId(0)));
        assert!(!a.is_faulty(RobotId(99)));
        assert_eq!(a.num_faulty(), 1);
        let ids: Vec<usize> = a.faulty_robots().map(RobotId::index).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn validation() {
        assert!(FaultAssignment::new(0, FaultKind::Crash, []).is_err());
        assert!(FaultAssignment::new(2, FaultKind::Crash, [RobotId(2)]).is_err());
        // duplicates are fine
        let a = FaultAssignment::new(2, FaultKind::Crash, [RobotId(0), RobotId(0)]).unwrap();
        assert_eq!(a.num_faulty(), 1);
    }

    #[test]
    fn none_has_no_faults() {
        let a = FaultAssignment::none(5).unwrap();
        assert_eq!(a.num_faulty(), 0);
    }

    #[test]
    fn enumerate_all_is_binomial() {
        let all = FaultAssignment::enumerate_all(5, 2, FaultKind::Crash).unwrap();
        assert_eq!(all.len(), 10); // C(5,2)
        for a in &all {
            assert_eq!(a.num_faulty(), 2);
        }
        assert!(FaultAssignment::enumerate_all(3, 4, FaultKind::Crash).is_err());
        assert!(FaultAssignment::enumerate_all(21, 1, FaultKind::Crash).is_err());
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Crash.to_string(), "crash");
        assert_eq!(FaultKind::Byzantine.to_string(), "byzantine");
    }
}
