//! Byzantine faults: silent *and* lying robots, and a sound verifier.
//!
//! In the ISAAC'16 model a Byzantine robot "may stay silent even when it
//! detects or visits the target, or may claim that it has found the target
//! when, in fact, it has not found it". Two consequences drive this
//! module:
//!
//! * every crash-fault lower bound is a Byzantine lower bound (silence is
//!   a Byzantine option) — this is how the paper improves `B(3,1) ≥ 3.93`
//!   to `≥ 5.2326`;
//! * a searcher that waits for `f+1` *distinct robots to corroborate the
//!   same location* is never fooled: among any `f+1` claimants at least one
//!   is honest. The price is waiting for up to `2f+1` distinct visitors in
//!   the worst case (`f` silent faulty visitors first, then `f+1` honest
//!   ones).
//!
//! [`ByzantineSimulation`] plays the game on concrete trajectories:
//! honest robots claim the target whenever they pass it; faulty robots
//! stay silent there and (optionally) file false claims at decoy points.
//! [`ConservativeVerifier`] implements the corroboration rule; the tests
//! machine-check soundness and the `2f+1` completeness bound.

use raysearch_sim::{trajectory::Track, RobotId, Time, VisitEngine};

use crate::{FaultAssignment, FaultError};

/// How a Byzantine robot misbehaves in a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ByzantineBehavior {
    /// Stay silent at the target; never lie. (Exactly crash behaviour —
    /// the reduction behind the paper's Byzantine corollary.)
    SilentOnly,
    /// Stay silent at the target *and* claim "target here" at every decoy
    /// visit.
    LieAtDecoys,
}

/// A claim "the target is at this point" filed by a robot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Claim {
    /// When the claim was filed (the moment of the visit).
    pub time: Time,
    /// The claiming robot.
    pub robot: RobotId,
    /// Index of the claimed point in the simulation's point table
    /// (`0` is the true target).
    pub point_index: usize,
    /// Whether the claim is true (for analysis only — the verifier never
    /// sees this field).
    pub truthful: bool,
}

/// The verifier's final decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Verdict {
    /// When the decision became certain.
    pub time: Time,
    /// Index of the confirmed point in the simulation's point table.
    pub point_index: usize,
}

/// A claim-level simulation of Byzantine search on concrete trajectories.
///
/// The point table is `[target, decoy₁, decoy₂, …]`; index `0` is the true
/// target throughout.
///
/// # Example
///
/// ```
/// use raysearch_faults::{
///     ByzantineBehavior, ByzantineSimulation, ConservativeVerifier, FaultAssignment, FaultKind,
/// };
/// use raysearch_sim::{Direction, LineItinerary, LinePoint, LineTrajectory, RobotId, VisitEngine};
///
/// let fleet: Vec<LineTrajectory> = [8.0, 8.0, 8.0]
///     .iter()
///     .map(|&t| LineTrajectory::compile(&LineItinerary::new(Direction::Positive, vec![t]).unwrap()))
///     .collect();
/// let engine = VisitEngine::new(fleet)?;
/// let faults = FaultAssignment::new(3, FaultKind::Byzantine, [RobotId(1)])?;
/// let sim = ByzantineSimulation::new(
///     engine,
///     LinePoint::new(2.0)?,
///     vec![LinePoint::new(5.0)?],
///     faults,
///     ByzantineBehavior::LieAtDecoys,
/// )?;
/// let claims = sim.run();
/// let verdict = ConservativeVerifier::new(1).decide(&claims).expect("confirmed");
/// assert_eq!(verdict.point_index, 0); // never fooled
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ByzantineSimulation<T: Track> {
    engine: VisitEngine<T>,
    points: Vec<T::Point>,
    faults: FaultAssignment,
    behavior: ByzantineBehavior,
}

impl<T: Track> ByzantineSimulation<T> {
    /// Creates a simulation with the given true target and decoys.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidSimulation`] if the fault assignment's
    /// fleet size differs from the engine's.
    pub fn new(
        engine: VisitEngine<T>,
        target: T::Point,
        decoys: Vec<T::Point>,
        faults: FaultAssignment,
        behavior: ByzantineBehavior,
    ) -> Result<Self, FaultError> {
        if faults.k() != engine.num_robots() {
            return Err(FaultError::simulation(format!(
                "fault assignment is for {} robots but the fleet has {}",
                faults.k(),
                engine.num_robots()
            )));
        }
        let mut points = Vec::with_capacity(decoys.len() + 1);
        points.push(target);
        points.extend(decoys);
        Ok(ByzantineSimulation {
            engine,
            points,
            faults,
            behavior,
        })
    }

    /// The number of points in the table (target + decoys).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Runs the simulation, producing all claims in time order.
    ///
    /// Honest robots claim at every visit to the target (index 0) and stay
    /// silent elsewhere; faulty robots are silent at the target and lie at
    /// decoys according to the configured behaviour.
    pub fn run(&self) -> Vec<Claim> {
        let events = self.engine.event_stream(&self.points);
        let mut claims = Vec::new();
        for ev in events {
            let faulty = self.faults.is_faulty(ev.robot);
            let at_target = ev.point_index == 0;
            let claim = match (faulty, at_target, self.behavior) {
                (false, true, _) => Some(true),
                (false, false, _) => None,
                (true, true, _) => None, // silent at the target
                (true, false, ByzantineBehavior::LieAtDecoys) => Some(false),
                (true, false, ByzantineBehavior::SilentOnly) => None,
            };
            if let Some(truthful) = claim {
                claims.push(Claim {
                    time: ev.time,
                    robot: ev.robot,
                    point_index: ev.point_index,
                    truthful,
                });
            }
        }
        claims
    }

    /// The time of the `n`-th distinct-robot visit to the true target
    /// (used by the completeness tests).
    pub fn nth_distinct_target_visit(&self, n: usize) -> Option<Time> {
        self.engine
            .schedule(self.points[0])
            .nth_distinct_robot_visit(n)
    }
}

/// The sound corroboration verifier: confirm a location once `f+1`
/// distinct robots have claimed it.
///
/// With at most `f` Byzantine robots, any `f+1` distinct claimants include
/// an honest robot, so a confirmed location is always the true target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ConservativeVerifier {
    f: usize,
}

impl ConservativeVerifier {
    /// Creates a verifier tolerating `f` Byzantine robots.
    pub fn new(f: usize) -> Self {
        ConservativeVerifier { f }
    }

    /// The corroboration threshold, `f + 1` distinct claimants.
    #[inline]
    pub fn claims_required(&self) -> usize {
        self.f + 1
    }

    /// Scans claims in time order and returns the first confirmation, if
    /// any.
    pub fn decide(&self, claims: &[Claim]) -> Option<Verdict> {
        // per-point distinct claimant lists (tiny cardinalities: linear scan)
        let mut claimants: Vec<(usize, Vec<RobotId>)> = Vec::new();
        for c in claims {
            let entry = match claimants.iter_mut().find(|(p, _)| *p == c.point_index) {
                Some(e) => e,
                None => {
                    claimants.push((c.point_index, Vec::new()));
                    claimants.last_mut().expect("just pushed")
                }
            };
            if !entry.1.contains(&c.robot) {
                entry.1.push(c.robot);
                if entry.1.len() >= self.claims_required() {
                    return Some(Verdict {
                        time: c.time,
                        point_index: c.point_index,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use raysearch_sim::{Direction, LineItinerary, LinePoint, LineTrajectory};

    fn fleet(specs: &[&[f64]]) -> VisitEngine<LineTrajectory> {
        VisitEngine::new(
            specs
                .iter()
                .map(|turns| {
                    LineTrajectory::compile(
                        &LineItinerary::new(Direction::Positive, turns.to_vec()).unwrap(),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    fn lp(x: f64) -> LinePoint {
        LinePoint::new(x).unwrap()
    }

    fn sim(
        specs: &[&[f64]],
        target: f64,
        decoys: &[f64],
        faulty: &[usize],
        behavior: ByzantineBehavior,
    ) -> ByzantineSimulation<LineTrajectory> {
        let engine = fleet(specs);
        let k = engine.num_robots();
        let faults =
            FaultAssignment::new(k, FaultKind::Byzantine, faulty.iter().map(|&i| RobotId(i)))
                .unwrap();
        ByzantineSimulation::new(
            engine,
            lp(target),
            decoys.iter().map(|&x| lp(x)).collect(),
            faults,
            behavior,
        )
        .unwrap()
    }

    #[test]
    fn fleet_size_mismatch_rejected() {
        let engine = fleet(&[&[4.0], &[4.0]]);
        let faults = FaultAssignment::none(3).unwrap();
        assert!(ByzantineSimulation::new(
            engine,
            lp(1.0),
            vec![],
            faults,
            ByzantineBehavior::SilentOnly
        )
        .is_err());
    }

    #[test]
    fn honest_robots_claim_only_at_target() {
        let s = sim(
            &[&[8.0], &[8.0]],
            2.0,
            &[5.0],
            &[],
            ByzantineBehavior::LieAtDecoys,
        );
        let claims = s.run();
        assert!(!claims.is_empty());
        assert!(claims.iter().all(|c| c.point_index == 0 && c.truthful));
    }

    #[test]
    fn liars_file_false_claims_at_decoys() {
        let s = sim(
            &[&[8.0], &[8.0], &[8.0]],
            5.0,
            &[2.0],
            &[1],
            ByzantineBehavior::LieAtDecoys,
        );
        let claims = s.run();
        // robot 1 lies at the decoy (x=2, earlier than the target at 5)
        let lies: Vec<&Claim> = claims.iter().filter(|c| !c.truthful).collect();
        assert!(!lies.is_empty());
        assert!(lies
            .iter()
            .all(|c| c.robot == RobotId(1) && c.point_index == 1));
        // and stays silent at the target
        assert!(!claims
            .iter()
            .any(|c| c.robot == RobotId(1) && c.point_index == 0));
    }

    #[test]
    fn verifier_is_never_fooled() {
        // the lying robot reaches the decoy first, but a single claim
        // cannot confirm with f = 1
        let s = sim(
            &[&[8.0], &[8.0], &[1.0, 8.0]],
            5.0,
            &[0.5, 2.0],
            &[2],
            ByzantineBehavior::LieAtDecoys,
        );
        let claims = s.run();
        let verdict = ConservativeVerifier::new(1).decide(&claims).unwrap();
        assert_eq!(verdict.point_index, 0);
    }

    #[test]
    fn soundness_over_all_single_fault_assignments() {
        for bad in 0..3usize {
            for behavior in [
                ByzantineBehavior::SilentOnly,
                ByzantineBehavior::LieAtDecoys,
            ] {
                let s = sim(
                    &[&[0.5, 8.0], &[2.0, 8.0], &[8.0]],
                    3.0,
                    &[1.5, 6.0],
                    &[bad],
                    behavior,
                );
                let claims = s.run();
                if let Some(v) = ConservativeVerifier::new(1).decide(&claims) {
                    assert_eq!(v.point_index, 0, "fooled by robot {bad} with {behavior:?}");
                }
            }
        }
    }

    #[test]
    fn completeness_within_2f_plus_1_distinct_visits() {
        // 3 robots, f = 1: confirmation must come by the 3rd distinct visit
        let s = sim(
            &[&[8.0], &[1.0, 0.5, 8.0], &[2.0, 0.5, 8.0]],
            3.0,
            &[],
            &[0],
            ByzantineBehavior::SilentOnly,
        );
        let claims = s.run();
        let verdict = ConservativeVerifier::new(1).decide(&claims).unwrap();
        let bound = s.nth_distinct_target_visit(3).unwrap();
        assert!(verdict.time <= bound);
    }

    #[test]
    fn silent_byzantine_equals_crash_detection_when_honest_quorum_first() {
        // If the first f+1 distinct visitors are honest, the verifier
        // confirms exactly at the crash detection time.
        let s = sim(
            &[&[8.0], &[1.0, 0.5, 8.0], &[2.0, 0.5, 8.0]],
            3.0,
            &[],
            &[2], // the *last* visitor is faulty
            ByzantineBehavior::SilentOnly,
        );
        let claims = s.run();
        let verdict = ConservativeVerifier::new(1).decide(&claims).unwrap();
        let crash_time = s.nth_distinct_target_visit(2).unwrap();
        assert_eq!(verdict.time, crash_time);
    }

    #[test]
    fn no_verdict_without_quorum() {
        // 2 robots, f = 1, but only one robot ever reaches the target
        let s = sim(
            &[&[8.0], &[1.0, 1.0]],
            3.0,
            &[],
            &[],
            ByzantineBehavior::SilentOnly,
        );
        let claims = s.run();
        assert!(ConservativeVerifier::new(1).decide(&claims).is_none());
    }
}
