//! The crash-fault adversary and its optimality.
//!
//! Section 2 of the paper opens with the reduction this module implements:
//! *"the point x has to be visited by at least f + 1 robots in time
//! (otherwise the adversary will place the target there and choose the
//! first f robots arriving at x to be faulty and stay silent)"*. Hence the
//! worst-case detection time at a point is exactly the time of the
//! `(f+1)`-st distinct-robot visit, and the witnessing fault assignment
//! marks the first `f` distinct visitors faulty.

use raysearch_sim::{RobotId, Time, VisitSchedule};

use crate::{FaultAssignment, FaultError, FaultKind};

/// The worst-case crash-fault adversary for a given fault budget `f`.
///
/// # Example
///
/// ```
/// use raysearch_faults::CrashAdversary;
/// let adv = CrashAdversary::new(2);
/// assert_eq!(adv.f(), 2);
/// assert_eq!(adv.visits_required(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CrashAdversary {
    f: usize,
}

impl CrashAdversary {
    /// Creates an adversary controlling `f` crash-faulty robots.
    pub fn new(f: usize) -> Self {
        CrashAdversary { f }
    }

    /// The fault budget.
    #[inline]
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of distinct robot visits needed to confirm a target,
    /// `f + 1`.
    #[inline]
    pub fn visits_required(&self) -> usize {
        self.f + 1
    }

    /// Worst-case detection time at a point with the given visit schedule:
    /// the `(f+1)`-st distinct-robot visit time, or `None` if fewer than
    /// `f+1` robots ever visit (the adversary wins outright).
    pub fn detection_time(&self, schedule: &VisitSchedule) -> Option<Time> {
        schedule.nth_distinct_robot_visit(self.visits_required())
    }

    /// The fault assignment realizing the worst case: the first `f`
    /// distinct visitors are faulty.
    ///
    /// If fewer than `f` robots ever visit, all visitors (plus arbitrary
    /// non-visitors, lowest ids first) are marked faulty.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidAssignment`] if `f > k` or `k = 0`.
    pub fn worst_assignment(
        &self,
        schedule: &VisitSchedule,
        k: usize,
    ) -> Result<FaultAssignment, FaultError> {
        if self.f > k {
            return Err(FaultError::assignment(format!(
                "fault budget {} exceeds fleet size {k}",
                self.f
            )));
        }
        let mut faulty: Vec<RobotId> = schedule
            .distinct_visitors()
            .into_iter()
            .take(self.f)
            .collect();
        // pad with non-visitors if the point is visited by fewer than f
        let mut next = 0usize;
        while faulty.len() < self.f {
            let candidate = RobotId(next);
            if !faulty.contains(&candidate) {
                faulty.push(candidate);
            }
            next += 1;
        }
        FaultAssignment::new(k, FaultKind::Crash, faulty)
    }

    /// Detection time under a *specific* fault assignment: the first visit
    /// by a non-faulty robot.
    ///
    /// Guaranteed to be at most [`CrashAdversary::detection_time`] when the
    /// assignment has at most `f` faulty robots — the property that makes
    /// the first-f-visitors assignment worst-case.
    pub fn detection_with_assignment(
        schedule: &VisitSchedule,
        assignment: &FaultAssignment,
    ) -> Option<Time> {
        schedule
            .events()
            .iter()
            .find(|ev| !assignment.is_faulty(ev.robot))
            .map(|ev| ev.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_sim::{Direction, LineItinerary, LinePoint, LineTrajectory, VisitEngine};

    fn engine(specs: &[&[f64]]) -> VisitEngine<LineTrajectory> {
        VisitEngine::new(
            specs
                .iter()
                .map(|turns| {
                    LineTrajectory::compile(
                        &LineItinerary::new(Direction::Positive, turns.to_vec()).unwrap(),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    fn lp(x: f64) -> LinePoint {
        LinePoint::new(x).unwrap()
    }

    #[test]
    fn detection_is_f_plus_first_distinct_visit() {
        // robot 0 arrives at +3 at t=3; robot 1 at t = 2*(1+0.5) + 3 = 6;
        // robot 2 at t = 2*(2+0.5) + 3 = 8.
        let eng = engine(&[&[8.0], &[1.0, 0.5, 8.0], &[2.0, 0.5, 8.0]]);
        let sched = eng.schedule(lp(3.0));
        assert_eq!(
            CrashAdversary::new(0)
                .detection_time(&sched)
                .unwrap()
                .as_f64(),
            3.0
        );
        assert_eq!(
            CrashAdversary::new(1)
                .detection_time(&sched)
                .unwrap()
                .as_f64(),
            6.0
        );
        assert_eq!(
            CrashAdversary::new(2)
                .detection_time(&sched)
                .unwrap()
                .as_f64(),
            8.0
        );
        assert!(CrashAdversary::new(3).detection_time(&sched).is_none());
    }

    #[test]
    fn worst_assignment_marks_first_visitors() {
        let eng = engine(&[&[8.0], &[1.0, 0.5, 8.0], &[2.0, 0.5, 8.0]]);
        let sched = eng.schedule(lp(3.0));
        let a = CrashAdversary::new(2).worst_assignment(&sched, 3).unwrap();
        assert!(a.is_faulty(RobotId(0)));
        assert!(a.is_faulty(RobotId(1)));
        assert!(!a.is_faulty(RobotId(2)));
    }

    #[test]
    fn worst_assignment_pads_when_few_visitors() {
        // only robot 0 ever reaches +3
        let eng = engine(&[&[8.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let sched = eng.schedule(lp(3.0));
        let a = CrashAdversary::new(2).worst_assignment(&sched, 3).unwrap();
        assert_eq!(a.num_faulty(), 2);
        assert!(a.is_faulty(RobotId(0)), "the sole visitor must be faulty");
        assert!(CrashAdversary::new(4).worst_assignment(&sched, 3).is_err());
    }

    #[test]
    fn first_visitors_assignment_is_worst_case_exhaustively() {
        // For every assignment of f faulty robots, detection is no later
        // than under the adversary's choice — checked exhaustively.
        let eng = engine(&[&[8.0], &[2.0, 8.0], &[1.0, 1.5, 8.0], &[0.5, 6.0, 8.0]]);
        for x in [0.75, 1.5, 3.0, 5.5] {
            let sched = eng.schedule(lp(x));
            for f in 0..=3usize {
                let adv = CrashAdversary::new(f);
                let worst = adv.detection_time(&sched);
                for a in FaultAssignment::enumerate_all(4, f, FaultKind::Crash).unwrap() {
                    let t = CrashAdversary::detection_with_assignment(&sched, &a);
                    match (t, worst) {
                        (Some(t), Some(w)) => assert!(
                            t <= w,
                            "assignment {a:?} detects later ({t}) than adversary ({w}) at x={x}, f={f}"
                        ),
                        (None, None) => {}
                        (None, Some(_)) => {
                            panic!("specific assignment blocks detection but adversary does not")
                        }
                        (Some(_), None) => {} // adversary blocks entirely: fine
                    }
                }
                // and the worst assignment achieves the bound
                if let Some(w) = worst {
                    let wa = adv.worst_assignment(&sched, 4).unwrap();
                    let t = CrashAdversary::detection_with_assignment(&sched, &wa).unwrap();
                    assert_eq!(t, w);
                }
            }
        }
    }

    #[test]
    fn zero_faults_is_plain_first_visit() {
        let eng = engine(&[&[4.0], &[1.0, 4.0]]);
        let sched = eng.schedule(lp(2.0));
        let adv = CrashAdversary::new(0);
        assert_eq!(
            adv.detection_time(&sched).unwrap(),
            sched.first_visit().unwrap()
        );
    }
}
