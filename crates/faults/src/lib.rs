//! Fault models and adversaries for robot search.
//!
//! Two fault models appear in the literature this paper builds on:
//!
//! * **Crash-type** (Czyzowitz et al. PODC'16, and this paper's Theorem 1):
//!   a faulty robot moves as instructed but *silently fails to report* the
//!   target when passing it. The worst-case adversary places the target and
//!   declares the first `f` distinct robots to reach it faulty, so the
//!   detection time is exactly the `(f+1)`-st distinct-robot visit time —
//!   implemented by [`CrashAdversary`].
//! * **Byzantine** (Czyzowitz et al. ISAAC'16): a faulty robot may stay
//!   silent *or claim a target where there is none*. Lower bounds for crash
//!   faults carry over verbatim (silent behaviour is available to Byzantine
//!   robots); [`ByzantineSimulation`] plus [`ConservativeVerifier`]
//!   simulate the claim/verification game and exhibit the sound
//!   `(f+1)`-corroboration rule, whose detection time is bounded by the
//!   `(2f+1)`-st distinct visit.
//!
//! # Example
//!
//! ```
//! use raysearch_faults::CrashAdversary;
//! use raysearch_sim::{Direction, LineItinerary, LinePoint, LineTrajectory, VisitEngine};
//!
//! // Two robots sweep outwards; one may be faulty.
//! let t0 = LineTrajectory::compile(&LineItinerary::new(Direction::Positive, vec![8.0])?);
//! let t1 = LineTrajectory::compile(&LineItinerary::new(Direction::Positive, vec![2.0, 8.0])?);
//! let engine = VisitEngine::new(vec![t0, t1])?;
//!
//! let adversary = CrashAdversary::new(1);
//! let sched = engine.schedule(LinePoint::new(1.0)?);
//! // robot 0 passes +1 at t=1, robot 1 at t=1 too; the 2nd distinct visit
//! // is at t=1, so even with one fault the target is confirmed then.
//! assert_eq!(adversary.detection_time(&sched).unwrap().as_f64(), 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod assignment;
pub mod byzantine;
pub mod crash;

pub use assignment::{FaultAssignment, FaultKind};
pub use byzantine::{ByzantineBehavior, ByzantineSimulation, Claim, ConservativeVerifier, Verdict};
pub use crash::CrashAdversary;
pub use error::FaultError;
