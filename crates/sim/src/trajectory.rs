//! Compiled piecewise-linear robot motions with exact visit queries.
//!
//! Trajectories are the time-resolved form of [itineraries](crate::itinerary).
//! Because robots move at unit speed along straight legs, every visit time
//! is available in closed form; no time-stepping is involved anywhere in the
//! workspace.

use crate::{Excursion, LineItinerary, LinePoint, RayId, RayPoint, Time, TourItinerary};

/// A single recorded visit of a trajectory to a query point.
///
/// The `leg` index identifies the leg (line) or excursion (rays) during
/// which the visit happened; the ORC covering rules need this to count at
/// most one covering per excursion.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Visit {
    /// When the visit happened.
    pub time: Time,
    /// Index of the leg or excursion during which it happened.
    pub leg: usize,
}

/// Common interface of compiled trajectories, used by the
/// [`VisitEngine`](crate::VisitEngine).
///
/// This trait is sealed in spirit: it is implemented by
/// [`LineTrajectory`] and [`RayTrajectory`] and downstream crates are not
/// expected to implement it, though they may for exotic motion models
/// (e.g. robots with different speeds in future extensions).
pub trait Track {
    /// The type of points this track moves over.
    type Point: Copy;

    /// Time of the first visit to `p`, if the trajectory ever reaches it.
    fn first_visit(&self, p: Self::Point) -> Option<Time>;

    /// All visits to `p` in time order.
    fn visits(&self, p: Self::Point) -> Vec<Visit>;

    /// The time at which the trajectory ends (the robot then halts).
    fn end_time(&self) -> Time;
}

/// A compiled line trajectory: a unit-speed polyline through signed
/// coordinates, starting at the origin at time `0`.
///
/// # Example
///
/// ```
/// use raysearch_sim::{Direction, LineItinerary, LineTrajectory};
///
/// let plan = LineItinerary::new(Direction::Positive, vec![1.0, 2.0])?;
/// let traj = LineTrajectory::compile(&plan);
/// // +0.5 is reached on the way out at t = 0.5
/// assert_eq!(traj.first_visit(0.5).unwrap().as_f64(), 0.5);
/// // -1.0 requires walking to +1, back to the origin, then on to -1:
/// // 1 + 1 + 1 = 3.
/// assert_eq!(traj.first_visit(-1.0).unwrap().as_f64(), 3.0);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineTrajectory {
    /// `(time, position)` waypoints; consecutive pairs delimit unit-speed
    /// legs. Always starts with `(0, 0)`.
    waypoints: Vec<(f64, f64)>,
}

impl LineTrajectory {
    /// Compiles an itinerary into a trajectory.
    ///
    /// Waypoint `i ≥ 1` is the `i`-th turning point; the elapsed time
    /// accumulates leg lengths exactly.
    pub fn compile(itinerary: &LineItinerary) -> Self {
        let mut waypoints = Vec::with_capacity(itinerary.len() + 1);
        waypoints.push((0.0, 0.0));
        let mut now = 0.0;
        let mut pos = 0.0;
        for target in itinerary.signed_turns() {
            now += (target - pos).abs();
            pos = target;
            waypoints.push((now, pos));
        }
        LineTrajectory { waypoints }
    }

    /// The waypoints `(time, position)` of this trajectory.
    #[inline]
    pub fn waypoints(&self) -> &[(f64, f64)] {
        &self.waypoints
    }

    /// Position at time `t`; after the last waypoint the robot halts.
    pub fn position_at(&self, t: Time) -> LinePoint {
        let t = t.as_f64();
        match self
            .waypoints
            .windows(2)
            .find(|w| t >= w[0].0 && t <= w[1].0)
        {
            Some(w) => {
                let (t0, p0) = w[0];
                let (_, p1) = w[1];
                let dir = if p1 >= p0 { 1.0 } else { -1.0 };
                LinePoint::new(p0 + dir * (t - t0)).expect("interpolation stays finite")
            }
            None => {
                let (_, p) = *self.waypoints.last().expect("never empty");
                LinePoint::new(p).expect("waypoints are finite")
            }
        }
    }

    /// The furthest signed coordinate reached in the given direction
    /// (`0.0` if the robot never went that way).
    pub fn max_reach(&self, dir: crate::Direction) -> f64 {
        let s = dir.sign();
        self.waypoints
            .iter()
            .map(|&(_, p)| p * s)
            .fold(0.0, f64::max)
    }

    /// First visit to signed coordinate `x`, in closed form.
    pub fn first_visit_coord(&self, x: f64) -> Option<Time> {
        if x == 0.0 {
            return Some(Time::ZERO);
        }
        for w in self.waypoints.windows(2) {
            let (t0, p0) = w[0];
            let (_, p1) = w[1];
            let (lo, hi) = if p0 <= p1 { (p0, p1) } else { (p1, p0) };
            if x >= lo && x <= hi {
                return Some(Time::new_unchecked(t0 + (x - p0).abs()));
            }
        }
        None
    }

    /// All visits to signed coordinate `x`, one per crossing leg.
    ///
    /// A position exactly at a turning point is reported once, at the
    /// moment of the turn (legs are half-open at their start).
    pub fn visits_coord(&self, x: f64) -> Vec<Visit> {
        let mut out = Vec::new();
        if x == 0.0 {
            out.push(Visit {
                time: Time::ZERO,
                leg: 0,
            });
        }
        for (leg, w) in self.waypoints.windows(2).enumerate() {
            let (t0, p0) = w[0];
            let (_, p1) = w[1];
            // Half-open at the start: x == p0 was recorded by the previous
            // leg's arrival (or by the origin special case above).
            let crossed = if p0 < p1 {
                x > p0 && x <= p1
            } else {
                x < p0 && x >= p1
            };
            if crossed {
                out.push(Visit {
                    time: Time::new_unchecked(t0 + (x - p0).abs()),
                    leg,
                });
            }
        }
        out
    }

    /// Convenience wrapper over [`LineTrajectory::first_visit_coord`].
    pub fn first_visit(&self, x: f64) -> Option<Time> {
        self.first_visit_coord(x)
    }

    /// Time at which both `+x` and `-x` have been visited, i.e. the paper's
    /// symmetric line-cover visit time (Definition 2, ±-cover setting).
    ///
    /// Returns `None` if either side is never reached.
    pub fn both_sides_visited(&self, x: f64) -> Option<Time> {
        let a = self.first_visit_coord(x)?;
        let b = self.first_visit_coord(-x)?;
        Some(a.max(b))
    }
}

impl Track for LineTrajectory {
    type Point = LinePoint;

    fn first_visit(&self, p: LinePoint) -> Option<Time> {
        self.first_visit_coord(p.coordinate())
    }

    fn visits(&self, p: LinePoint) -> Vec<Visit> {
        self.visits_coord(p.coordinate())
    }

    fn end_time(&self) -> Time {
        Time::new_unchecked(self.waypoints.last().expect("never empty").0)
    }
}

/// A compiled excursion trajectory on a star of rays.
///
/// The robot performs the tour's excursions back to back: each excursion on
/// ray `i` with turning distance `t` occupies a time window of length `2t`,
/// going out at unit speed and straight back to the origin.
///
/// # Example
///
/// ```
/// use raysearch_sim::{Excursion, RayId, RayPoint, RayTrajectory, TourItinerary};
///
/// let m = 2;
/// let tour = TourItinerary::new(
///     m,
///     vec![
///         Excursion::new(RayId::new(0, m)?, 1.0)?,
///         Excursion::new(RayId::new(1, m)?, 2.0)?,
///     ],
/// )?;
/// let traj = RayTrajectory::compile(&tour);
/// let p = RayPoint::new(RayId::new(1, m)?, 1.5)?;
/// // excursion 0 takes 2 time units; then 1.5 further on ray 1.
/// assert_eq!(traj.first_visit_at(p).unwrap().as_f64(), 3.5);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RayTrajectory {
    num_rays: usize,
    /// `(start_time, excursion)` pairs in tour order.
    excursions: Vec<(f64, Excursion)>,
}

impl RayTrajectory {
    /// Compiles a tour into a trajectory.
    pub fn compile(tour: &TourItinerary) -> Self {
        let mut excursions = Vec::with_capacity(tour.len());
        let mut now = 0.0;
        for &e in tour.excursions() {
            excursions.push((now, e));
            now += e.round_trip_length();
        }
        RayTrajectory {
            num_rays: tour.num_rays(),
            excursions,
        }
    }

    /// Number of rays of the underlying star.
    #[inline]
    pub fn num_rays(&self) -> usize {
        self.num_rays
    }

    /// The `(start_time, excursion)` pairs in tour order.
    #[inline]
    pub fn timed_excursions(&self) -> &[(f64, Excursion)] {
        &self.excursions
    }

    /// Position at time `t`; after the tour the robot halts at the origin.
    pub fn position_at(&self, t: Time) -> RayPoint {
        let t = t.as_f64();
        for &(start, e) in &self.excursions {
            let end = start + e.round_trip_length();
            if t >= start && t <= end {
                let within = t - start;
                let dist = if within <= e.turn {
                    within
                } else {
                    2.0 * e.turn - within
                };
                return RayPoint::new(e.ray, dist).expect("interpolation stays finite");
            }
        }
        RayPoint::new(RayId::new_unvalidated(0), 0.0).expect("origin is valid")
    }

    /// First visit to `p`, in closed form.
    ///
    /// A point at distance `0` is considered visited at time `0`.
    pub fn first_visit_at(&self, p: RayPoint) -> Option<Time> {
        if p.distance() == 0.0 {
            return Some(Time::ZERO);
        }
        for &(start, e) in &self.excursions {
            if e.ray == p.ray() && e.turn >= p.distance() {
                return Some(Time::new_unchecked(start + p.distance()));
            }
        }
        None
    }

    /// All visits to `p`: up to two per excursion (outbound and inbound),
    /// merged when the point is exactly the turning point.
    pub fn visits_at(&self, p: RayPoint) -> Vec<Visit> {
        let mut out = Vec::new();
        if p.distance() == 0.0 {
            out.push(Visit {
                time: Time::ZERO,
                leg: 0,
            });
            return out;
        }
        for (leg, &(start, e)) in self.excursions.iter().enumerate() {
            if e.ray == p.ray() && e.turn >= p.distance() {
                let outbound = start + p.distance();
                out.push(Visit {
                    time: Time::new_unchecked(outbound),
                    leg,
                });
                let inbound = start + 2.0 * e.turn - p.distance();
                if inbound > outbound {
                    out.push(Visit {
                        time: Time::new_unchecked(inbound),
                        leg,
                    });
                }
            }
        }
        out
    }

    /// First visit per excursion — the ORC covering events for `p`.
    ///
    /// Each entry is `(excursion index, first visit time within it)`. In the
    /// ORC setting coverings of the same robot only count once per return
    /// to the origin, which is exactly once per excursion.
    pub fn excursion_visits(&self, p: RayPoint) -> Vec<(usize, Time)> {
        if p.distance() == 0.0 {
            return vec![(0, Time::ZERO)];
        }
        self.excursions
            .iter()
            .enumerate()
            .filter(|(_, (_, e))| e.ray == p.ray() && e.turn >= p.distance())
            .map(|(i, &(start, _))| (i, Time::new_unchecked(start + p.distance())))
            .collect()
    }
}

impl Track for RayTrajectory {
    type Point = RayPoint;

    fn first_visit(&self, p: RayPoint) -> Option<Time> {
        self.first_visit_at(p)
    }

    fn visits(&self, p: RayPoint) -> Vec<Visit> {
        self.visits_at(p)
    }

    fn end_time(&self) -> Time {
        match self.excursions.last() {
            Some(&(start, e)) => Time::new_unchecked(start + e.round_trip_length()),
            None => Time::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    fn line(turns: &[f64]) -> LineTrajectory {
        LineTrajectory::compile(&LineItinerary::new(Direction::Positive, turns.to_vec()).unwrap())
    }

    #[test]
    fn compile_doubling_waypoints() {
        let traj = line(&[1.0, 2.0, 4.0]);
        assert_eq!(
            traj.waypoints(),
            &[(0.0, 0.0), (1.0, 1.0), (4.0, -2.0), (10.0, 4.0)]
        );
    }

    #[test]
    fn first_visit_closed_form_matches_paper_formula() {
        // For t_{i-1} < x <= t_i (same-sign turning points), the first visit
        // of +x happens at 2(t1+...+t_{i-1}) + x... for odd i; verify on the
        // doubling strategy.
        let traj = line(&[1.0, 2.0, 4.0, 8.0]);
        // x = 3 on the positive side: first covered by turn t3 = 4 (legs
        // 1: +1, 2: -2, 3: +4). Time = 2*(1+2) + 3 = 9.
        assert_eq!(traj.first_visit(3.0).unwrap().as_f64(), 9.0);
        // x = -5: covered by t4 = 8: time = 2*(1+2+4) + 5 = 19.
        assert_eq!(traj.first_visit(-5.0).unwrap().as_f64(), 19.0);
    }

    #[test]
    fn first_visit_unreached_is_none() {
        let traj = line(&[1.0, 2.0]);
        assert!(traj.first_visit(1.5).is_none());
        assert!(traj.first_visit(-3.0).is_none());
    }

    #[test]
    fn visits_count_each_crossing_once() {
        let traj = line(&[1.0, 2.0, 4.0]);
        // +0.5 is crossed on leg 0 (out), leg 1 (down through), leg 2 (up).
        let v = traj.visits_coord(0.5);
        assert_eq!(v.len(), 3);
        let times: Vec<f64> = v.iter().map(|v| v.time.as_f64()).collect();
        assert_eq!(times, vec![0.5, 1.5, 6.5]);
        // exactly at a turning point: single visit at the turn
        let v = traj.visits_coord(1.0);
        assert_eq!(v.len(), 2); // arrival at turn (leg 0) + pass on leg 2
        assert_eq!(v[0].time.as_f64(), 1.0);
        assert_eq!(v[1].time.as_f64(), 7.0);
    }

    #[test]
    fn origin_visited_at_time_zero() {
        let traj = line(&[1.0]);
        assert_eq!(traj.first_visit(0.0).unwrap(), Time::ZERO);
        let v = traj.visits_coord(0.0);
        assert_eq!(v[0].time, Time::ZERO);
    }

    #[test]
    fn position_interpolation() {
        let traj = line(&[1.0, 2.0]);
        assert_eq!(traj.position_at(Time::new(0.5).unwrap()).coordinate(), 0.5);
        assert_eq!(traj.position_at(Time::new(1.0).unwrap()).coordinate(), 1.0);
        assert_eq!(traj.position_at(Time::new(2.0).unwrap()).coordinate(), 0.0);
        assert_eq!(traj.position_at(Time::new(4.0).unwrap()).coordinate(), -2.0);
        // after the plan: halted
        assert_eq!(
            traj.position_at(Time::new(99.0).unwrap()).coordinate(),
            -2.0
        );
    }

    #[test]
    fn both_sides_visited_is_symmetric_cover_time() {
        let traj = line(&[1.0, 2.0, 4.0]);
        // x = 1: +1 at t=1, -1 at t=3 => 3. Formula: 2(t1)+x with i=... the
        // paper's 2(t1+...+ti)+x for t_{i-1} < x <= t_i uses the *covering*
        // index; for x=1, both sides visited at t=3 = 2*1 + 1.
        assert_eq!(traj.both_sides_visited(1.0).unwrap().as_f64(), 3.0);
        // x = 2: +2 reached only on leg 3 at 2*(1+2)+2 = 8; -2 at t=4; => 8.
        assert_eq!(traj.both_sides_visited(2.0).unwrap().as_f64(), 8.0);
        assert!(traj.both_sides_visited(4.0).is_none()); // -4 never reached
    }

    #[test]
    fn max_reach() {
        let traj = line(&[1.0, 2.0, 4.0]);
        assert_eq!(traj.max_reach(Direction::Positive), 4.0);
        assert_eq!(traj.max_reach(Direction::Negative), 2.0);
    }

    fn ray_traj(m: usize, spec: &[(usize, f64)]) -> RayTrajectory {
        let tour = TourItinerary::new(
            m,
            spec.iter()
                .map(|&(r, t)| Excursion::new(RayId::new(r, m).unwrap(), t).unwrap())
                .collect(),
        )
        .unwrap();
        RayTrajectory::compile(&tour)
    }

    fn rp(r: usize, m: usize, d: f64) -> RayPoint {
        RayPoint::new(RayId::new(r, m).unwrap(), d).unwrap()
    }

    #[test]
    fn ray_first_visit_accumulates_round_trips() {
        let traj = ray_traj(3, &[(0, 1.0), (1, 2.0), (2, 4.0), (0, 8.0)]);
        // ray 2 at distance 3: excursions 0,1 take 2+4=6; then 3 more.
        assert_eq!(traj.first_visit_at(rp(2, 3, 3.0)).unwrap().as_f64(), 9.0);
        // ray 0 at distance 2: first excursion only reaches 1; excursion 3
        // starts at 2+4+8=14, so t = 16.
        assert_eq!(traj.first_visit_at(rp(0, 3, 2.0)).unwrap().as_f64(), 16.0);
        // never reached
        assert!(traj.first_visit_at(rp(1, 3, 3.0)).is_none());
    }

    #[test]
    fn ray_visits_outbound_and_inbound() {
        let traj = ray_traj(2, &[(0, 2.0)]);
        let v = traj.visits_at(rp(0, 2, 1.0));
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].time.as_f64(), 1.0);
        assert_eq!(v[1].time.as_f64(), 3.0);
        // exactly at the turning point: merged single visit
        let v = traj.visits_at(rp(0, 2, 2.0));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].time.as_f64(), 2.0);
    }

    #[test]
    fn ray_excursion_visits_count_once_per_excursion() {
        let traj = ray_traj(2, &[(0, 2.0), (1, 1.0), (0, 3.0)]);
        let cov = traj.excursion_visits(rp(0, 2, 1.5));
        assert_eq!(cov.len(), 2);
        assert_eq!(cov[0], (0, Time::new(1.5).unwrap()));
        // excursion 2 starts at 4+2=6
        assert_eq!(cov[1], (2, Time::new(7.5).unwrap()));
    }

    #[test]
    fn ray_position_at() {
        let traj = ray_traj(2, &[(0, 2.0), (1, 1.0)]);
        let p = traj.position_at(Time::new(1.0).unwrap());
        assert_eq!((p.ray().index(), p.distance()), (0, 1.0));
        let p = traj.position_at(Time::new(3.0).unwrap());
        assert_eq!((p.ray().index(), p.distance()), (0, 1.0));
        let p = traj.position_at(Time::new(4.5).unwrap());
        assert_eq!((p.ray().index(), p.distance()), (1, 0.5));
        // after the tour: origin
        let p = traj.position_at(Time::new(100.0).unwrap());
        assert_eq!(p.distance(), 0.0);
    }

    #[test]
    fn ray_end_time() {
        let traj = ray_traj(2, &[(0, 2.0), (1, 1.0)]);
        assert_eq!(Track::end_time(&traj).as_f64(), 6.0);
        let empty = ray_traj(2, &[]);
        assert_eq!(Track::end_time(&empty), Time::ZERO);
    }
}
