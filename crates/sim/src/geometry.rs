//! Points on the search domain: the real line and `m` rays from the origin.
//!
//! The paper's two settings share one geometry: the real line is exactly the
//! `m = 2` instance of the star of rays, with the positive half-line as ray
//! `0` and the negative half-line as ray `1`. The conversions
//! [`LinePoint::to_ray_point`] and [`RayPoint::to_line_point`] realize that
//! identification and are used by the cross-setting consistency tests.

use crate::SimError;

/// Direction of travel on the line.
///
/// # Example
///
/// ```
/// use raysearch_sim::Direction;
/// assert_eq!(Direction::Positive.sign(), 1.0);
/// assert_eq!(Direction::Positive.opposite(), Direction::Negative);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Towards `+∞`.
    Positive,
    /// Towards `-∞`.
    Negative,
}

impl Direction {
    /// Returns the sign of this direction as `±1.0`.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Positive => 1.0,
            Direction::Negative => -1.0,
        }
    }

    /// Returns the opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Positive => Direction::Negative,
            Direction::Negative => Direction::Positive,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Positive => write!(f, "+"),
            Direction::Negative => write!(f, "-"),
        }
    }
}

/// Index of a ray in a star of `m` rays emanating from the origin.
///
/// # Example
///
/// ```
/// use raysearch_sim::RayId;
/// let r = RayId::new(2, 5)?;
/// assert_eq!(r.index(), 2);
/// assert!(RayId::new(5, 5).is_err());
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct RayId(usize);

impl RayId {
    /// Creates a ray id, validated against the number of rays `num_rays`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RayOutOfRange`] if `ray >= num_rays`.
    pub fn new(ray: usize, num_rays: usize) -> Result<Self, SimError> {
        if ray < num_rays {
            Ok(RayId(ray))
        } else {
            Err(SimError::RayOutOfRange { ray, num_rays })
        }
    }

    /// Creates a ray id without range validation.
    ///
    /// Use only where the instance's ray count is enforced elsewhere.
    #[inline]
    pub fn new_unvalidated(ray: usize) -> Self {
        RayId(ray)
    }

    /// Returns the dense ray index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for RayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ray#{}", self.0)
    }
}

/// A point on the real line, identified by its signed coordinate.
///
/// The coordinate must be finite; the origin (`0.0`) is allowed so that
/// trajectories can start there, but search targets are always at
/// `|x| ≥ 1` in the paper's normalization.
///
/// # Example
///
/// ```
/// use raysearch_sim::LinePoint;
/// let p = LinePoint::new(-3.0)?;
/// assert_eq!(p.distance(), 3.0);
/// assert_eq!(p.coordinate(), -3.0);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct LinePoint(f64);

impl LinePoint {
    /// The origin of the line.
    pub const ORIGIN: LinePoint = LinePoint(0.0);

    /// Creates a line point from a signed coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if `x` is NaN or infinite.
    pub fn new(x: f64) -> Result<Self, SimError> {
        if x.is_finite() {
            Ok(LinePoint(x))
        } else {
            Err(SimError::InvalidDistance { value: x })
        }
    }

    /// Returns the signed coordinate.
    #[inline]
    pub fn coordinate(self) -> f64 {
        self.0
    }

    /// Returns the distance to the origin, `|x|`.
    #[inline]
    pub fn distance(self) -> f64 {
        self.0.abs()
    }

    /// Returns the side of the origin this point lies on, or `None` at the
    /// origin itself.
    #[inline]
    pub fn side(self) -> Option<Direction> {
        if self.0 > 0.0 {
            Some(Direction::Positive)
        } else if self.0 < 0.0 {
            Some(Direction::Negative)
        } else {
            None
        }
    }

    /// Returns the mirror image `-x`.
    #[inline]
    pub fn mirrored(self) -> LinePoint {
        LinePoint(-self.0)
    }

    /// Maps this point to the canonical two-ray representation of the line:
    /// the positive half-line is ray `0`, the negative half-line is ray `1`.
    ///
    /// The origin maps to distance `0` on ray `0` by convention.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_sim::LinePoint;
    /// let p = LinePoint::new(-2.5)?;
    /// let rp = p.to_ray_point();
    /// assert_eq!(rp.ray().index(), 1);
    /// assert_eq!(rp.distance(), 2.5);
    /// # Ok::<(), raysearch_sim::SimError>(())
    /// ```
    pub fn to_ray_point(self) -> RayPoint {
        if self.0 >= 0.0 {
            RayPoint {
                ray: RayId(0),
                dist: self.0,
            }
        } else {
            RayPoint {
                ray: RayId(1),
                dist: -self.0,
            }
        }
    }
}

impl std::fmt::Display for LinePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x={}", self.0)
    }
}

impl TryFrom<f64> for LinePoint {
    type Error = SimError;
    fn try_from(x: f64) -> Result<Self, Self::Error> {
        LinePoint::new(x)
    }
}

impl From<LinePoint> for f64 {
    fn from(p: LinePoint) -> f64 {
        p.0
    }
}

/// A point on a star of rays: a ray index and a non-negative distance from
/// the common origin.
///
/// # Example
///
/// ```
/// use raysearch_sim::{RayId, RayPoint};
/// let p = RayPoint::new(RayId::new(1, 3)?, 4.0)?;
/// assert_eq!(p.distance(), 4.0);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RayPoint {
    ray: RayId,
    dist: f64,
}

impl RayPoint {
    /// Creates a ray point at distance `dist` on ray `ray`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if `dist` is negative, NaN or
    /// infinite.
    pub fn new(ray: RayId, dist: f64) -> Result<Self, SimError> {
        if dist.is_finite() && dist >= 0.0 {
            Ok(RayPoint { ray, dist })
        } else {
            Err(SimError::InvalidDistance { value: dist })
        }
    }

    /// Returns the ray this point lies on.
    #[inline]
    pub fn ray(self) -> RayId {
        self.ray
    }

    /// Returns the distance from the origin.
    #[inline]
    pub fn distance(self) -> f64 {
        self.dist
    }

    /// Interprets this point on the two-ray star as a signed line
    /// coordinate (ray `0` positive, ray `1` negative).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RayOutOfRange`] if the ray index is not `0` or
    /// `1`.
    pub fn to_line_point(self) -> Result<LinePoint, SimError> {
        match self.ray.index() {
            0 => Ok(LinePoint(self.dist)),
            1 => Ok(LinePoint(-self.dist)),
            r => Err(SimError::RayOutOfRange {
                ray: r,
                num_rays: 2,
            }),
        }
    }
}

impl std::fmt::Display for RayPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.ray, self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_sign_and_opposite() {
        assert_eq!(Direction::Positive.sign(), 1.0);
        assert_eq!(Direction::Negative.sign(), -1.0);
        assert_eq!(Direction::Negative.opposite(), Direction::Positive);
        assert_eq!(Direction::Positive.to_string(), "+");
    }

    #[test]
    fn ray_id_validation() {
        assert!(RayId::new(0, 1).is_ok());
        assert!(RayId::new(1, 1).is_err());
        assert_eq!(RayId::new_unvalidated(7).index(), 7);
    }

    #[test]
    fn line_point_basics() {
        let p = LinePoint::new(-3.5).unwrap();
        assert_eq!(p.distance(), 3.5);
        assert_eq!(p.side(), Some(Direction::Negative));
        assert_eq!(p.mirrored().coordinate(), 3.5);
        assert_eq!(LinePoint::ORIGIN.side(), None);
        assert!(LinePoint::new(f64::NAN).is_err());
    }

    #[test]
    fn line_to_two_rays_round_trip() {
        for x in [-5.0, -1.0, 0.5, 2.0] {
            let p = LinePoint::new(x).unwrap();
            let rp = p.to_ray_point();
            let back = rp.to_line_point().unwrap();
            assert_eq!(back.coordinate(), x);
        }
        // origin convention: ray 0
        assert_eq!(LinePoint::ORIGIN.to_ray_point().ray().index(), 0);
    }

    #[test]
    fn ray_point_validation() {
        let ray = RayId::new(2, 4).unwrap();
        assert!(RayPoint::new(ray, -1.0).is_err());
        assert!(RayPoint::new(ray, f64::INFINITY).is_err());
        let p = RayPoint::new(ray, 0.0).unwrap();
        assert_eq!(p.distance(), 0.0);
        // a ray-2 point has no line interpretation
        assert!(p.to_line_point().is_err());
    }

    #[test]
    fn display_formats() {
        let ray = RayId::new(1, 2).unwrap();
        let p = RayPoint::new(ray, 2.0).unwrap();
        assert_eq!(p.to_string(), "ray#1@2");
        assert_eq!(LinePoint::new(1.5).unwrap().to_string(), "x=1.5");
    }
}
