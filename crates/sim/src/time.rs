use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::SimError;

/// A validated, totally ordered point in simulation time.
///
/// `Time` wraps a finite, non-negative `f64`. Because all robots move at
/// unit speed, times and distances share the same scale; the wrapper exists
/// so that the two cannot be confused and so that ordering is total (no
/// NaNs can enter).
///
/// # Example
///
/// ```
/// use raysearch_sim::Time;
///
/// let a = Time::new(1.5)?;
/// let b = Time::new(2.5)?;
/// assert!(a < b);
/// assert_eq!((a + b).as_f64(), 4.0);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Time(f64);

impl Time {
    /// The time origin.
    pub const ZERO: Time = Time(0.0);

    /// Creates a new `Time`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTime`] if `value` is negative, NaN or
    /// infinite.
    pub fn new(value: f64) -> Result<Self, SimError> {
        if value.is_finite() && value >= 0.0 {
            Ok(Time(value))
        } else {
            Err(SimError::InvalidTime { value })
        }
    }

    /// Creates a new `Time` without validation.
    ///
    /// Intended for internal arithmetic where the invariant is maintained
    /// structurally. Debug builds still assert validity.
    #[inline]
    pub(crate) fn new_unchecked(value: f64) -> Self {
        debug_assert!(value.is_finite() && value >= 0.0, "invalid time {value}");
        Time(value)
    }

    /// Returns the raw `f64` value.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns `true` if this time equals `other` within `tol`.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_sim::Time;
    /// let a = Time::new(1.0)?;
    /// let b = Time::new(1.0 + 1e-13)?;
    /// assert!(a.approx_eq(b, 1e-9));
    /// # Ok::<(), raysearch_sim::SimError>(())
    /// ```
    #[inline]
    pub fn approx_eq(self, other: Time, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are validated finite, so total_cmp agrees with the usual
        // order; it additionally makes the impl auditable as total.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Default for Time {
    fn default() -> Self {
        Time::ZERO
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::new_unchecked(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Saturating subtraction: times cannot go negative.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::new_unchecked((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::new_unchecked(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::new_unchecked(self.0 / rhs)
    }
}

impl TryFrom<f64> for Time {
    type Error = SimError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Time::new(value)
    }
}

impl From<Time> for f64 {
    fn from(t: Time) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_nan_inf() {
        assert!(Time::new(-0.5).is_err());
        assert!(Time::new(f64::NAN).is_err());
        assert!(Time::new(f64::INFINITY).is_err());
        assert!(Time::new(0.0).is_ok());
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut v = vec![
            Time::new(3.0).unwrap(),
            Time::new(1.0).unwrap(),
            Time::new(2.0).unwrap(),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(Time::as_f64).collect();
        assert_eq!(raw, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Time::new(2.0).unwrap();
        let b = Time::new(0.5).unwrap();
        assert_eq!((a + b).as_f64(), 2.5);
        assert_eq!((a - b).as_f64(), 1.5);
        // saturating subtraction
        assert_eq!((b - a).as_f64(), 0.0);
        assert_eq!((a * 3.0).as_f64(), 6.0);
        assert_eq!((a / 4.0).as_f64(), 0.5);
    }

    #[test]
    fn min_max() {
        let a = Time::new(2.0).unwrap();
        let b = Time::new(0.5).unwrap();
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn conversions() {
        let t: Time = 1.25f64.try_into().unwrap();
        let back: f64 = t.into();
        assert_eq!(back, 1.25);
        assert!(Time::try_from(-1.0).is_err());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Time::default(), Time::ZERO);
    }
}
