//! Discrete-event visit engine for robot fleets.
//!
//! [`VisitEngine`] owns one compiled trajectory per robot and answers
//! fleet-level questions: the globally time-ordered schedule of visits to a
//! point, the time of the `n`-th visit by distinct robots (the crash-fault
//! adversary's quantity of interest), and merged event streams over many
//! query points for the claim-level simulations in `raysearch-faults`.

use std::collections::BinaryHeap;

use crate::trajectory::Track;
use crate::{RobotId, SimError, Time};

/// A visit of one robot to one query point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VisitEvent {
    /// When the visit happened.
    pub time: Time,
    /// Which robot visited.
    pub robot: RobotId,
    /// Index of the query point in the batch that produced this event.
    pub point_index: usize,
    /// Leg/excursion of the robot's trajectory during which it happened.
    pub leg: usize,
}

/// The time-ordered visit schedule of a fleet at a single point.
///
/// Constructed by [`VisitEngine::schedule`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VisitSchedule {
    events: Vec<VisitEvent>,
}

impl VisitSchedule {
    /// All events in non-decreasing time order.
    #[inline]
    pub fn events(&self) -> &[VisitEvent] {
        &self.events
    }

    /// Returns `true` if the point is never visited.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of visit events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Time at which `n` *distinct* robots have visited the point.
    ///
    /// This is the detection time against a crash-fault adversary that
    /// silences the first `n - 1` visitors: the target is known to be found
    /// only once the `n`-th distinct robot has passed over it.
    ///
    /// Returns `None` if fewer than `n` distinct robots ever visit.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_sim::{Direction, LineItinerary, LineTrajectory, LinePoint, VisitEngine};
    ///
    /// let a = LineTrajectory::compile(&LineItinerary::new(Direction::Positive, vec![4.0])?);
    /// let b = LineTrajectory::compile(&LineItinerary::new(Direction::Positive, vec![2.0, 8.0])?);
    /// let engine = VisitEngine::new(vec![a, b])?;
    /// let sched = engine.schedule(LinePoint::new(1.0)?);
    /// // both robots pass +1 at t=1; second *distinct* robot is also at t=1
    /// assert_eq!(sched.nth_distinct_robot_visit(2).unwrap().as_f64(), 1.0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn nth_distinct_robot_visit(&self, n: usize) -> Option<Time> {
        if n == 0 {
            return Some(Time::ZERO);
        }
        let mut seen: Vec<RobotId> = Vec::with_capacity(n);
        for ev in &self.events {
            if !seen.contains(&ev.robot) {
                seen.push(ev.robot);
                if seen.len() == n {
                    return Some(ev.time);
                }
            }
        }
        None
    }

    /// Time of the first visit by any robot.
    pub fn first_visit(&self) -> Option<Time> {
        self.events.first().map(|e| e.time)
    }

    /// The distinct robots that ever visit, in order of first visit.
    pub fn distinct_visitors(&self) -> Vec<RobotId> {
        let mut seen = Vec::new();
        for ev in &self.events {
            if !seen.contains(&ev.robot) {
                seen.push(ev.robot);
            }
        }
        seen
    }
}

/// A fleet of compiled trajectories with fleet-level visit queries.
///
/// Generic over the [`Track`] implementation so the same engine drives both
/// line fleets ([`LineTrajectory`](crate::LineTrajectory)) and ray fleets
/// ([`RayTrajectory`](crate::RayTrajectory)).
#[derive(Debug, Clone)]
pub struct VisitEngine<T: Track> {
    tracks: Vec<T>,
}

impl<T: Track> VisitEngine<T> {
    /// Creates an engine over one trajectory per robot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFleet`] if `tracks` is empty.
    pub fn new(tracks: Vec<T>) -> Result<Self, SimError> {
        if tracks.is_empty() {
            return Err(SimError::InvalidFleet {
                reason: "a fleet must contain at least one robot".to_owned(),
            });
        }
        Ok(VisitEngine { tracks })
    }

    /// Number of robots.
    #[inline]
    pub fn num_robots(&self) -> usize {
        self.tracks.len()
    }

    /// The underlying trajectories, indexed by robot.
    #[inline]
    pub fn tracks(&self) -> &[T] {
        &self.tracks
    }

    /// The time at which the last robot halts.
    pub fn end_time(&self) -> Time {
        self.tracks
            .iter()
            .map(Track::end_time)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The time-ordered schedule of all visits to `p`.
    pub fn schedule(&self, p: T::Point) -> VisitSchedule {
        let mut events: Vec<VisitEvent> = Vec::new();
        for (r, track) in self.tracks.iter().enumerate() {
            for v in track.visits(p) {
                events.push(VisitEvent {
                    time: v.time,
                    robot: RobotId(r),
                    point_index: 0,
                    leg: v.leg,
                });
            }
        }
        events.sort_by(|a, b| a.time.cmp(&b.time).then(a.robot.cmp(&b.robot)));
        VisitSchedule { events }
    }

    /// First visit to `p` by any robot.
    pub fn first_visit(&self, p: T::Point) -> Option<Time> {
        self.tracks.iter().filter_map(|t| t.first_visit(p)).min()
    }

    /// Merges the visit events of a batch of query points into one global,
    /// time-ordered stream.
    ///
    /// Events carry the index of the originating point in `points`. This is
    /// the event feed consumed by the Byzantine claim simulator and the
    /// application examples.
    pub fn event_stream(&self, points: &[T::Point]) -> Vec<VisitEvent> {
        // Build per-(robot, point) sorted event lists, then k-way merge via
        // a heap keyed on (time, robot, point).
        #[derive(PartialEq, Eq)]
        struct HeapItem {
            time: Time,
            robot: RobotId,
            point_index: usize,
            leg: usize,
        }
        impl Ord for HeapItem {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // BinaryHeap is a max-heap; invert for earliest-first.
                other
                    .time
                    .cmp(&self.time)
                    .then(other.robot.cmp(&self.robot))
                    .then(other.point_index.cmp(&self.point_index))
            }
        }
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap = BinaryHeap::new();
        for (r, track) in self.tracks.iter().enumerate() {
            for (pi, &p) in points.iter().enumerate() {
                for v in track.visits(p) {
                    heap.push(HeapItem {
                        time: v.time,
                        robot: RobotId(r),
                        point_index: pi,
                        leg: v.leg,
                    });
                }
            }
        }
        let mut out = Vec::with_capacity(heap.len());
        while let Some(item) = heap.pop() {
            out.push(VisitEvent {
                time: item.time,
                robot: item.robot,
                point_index: item.point_index,
                leg: item.leg,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, LineItinerary, LinePoint, LineTrajectory};

    fn fleet(specs: &[&[f64]]) -> VisitEngine<LineTrajectory> {
        let tracks = specs
            .iter()
            .map(|turns| {
                LineTrajectory::compile(
                    &LineItinerary::new(Direction::Positive, turns.to_vec()).unwrap(),
                )
            })
            .collect();
        VisitEngine::new(tracks).unwrap()
    }

    fn lp(x: f64) -> LinePoint {
        LinePoint::new(x).unwrap()
    }

    #[test]
    fn empty_fleet_rejected() {
        assert!(VisitEngine::<LineTrajectory>::new(vec![]).is_err());
    }

    #[test]
    fn schedule_is_time_ordered() {
        let engine = fleet(&[&[1.0, 2.0, 4.0], &[3.0]]);
        let sched = engine.schedule(lp(0.5));
        let times: Vec<f64> = sched.events().iter().map(|e| e.time.as_f64()).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted);
        assert!(sched.len() >= 4);
    }

    #[test]
    fn nth_distinct_robot_visit_ignores_repeat_visits() {
        // robot 0 oscillates over +0.5 many times before robot 1 arrives.
        let engine = fleet(&[&[1.0, 1.0, 1.0, 1.0], &[20.0]]);
        let sched = engine.schedule(lp(0.5));
        // first distinct visit: robot 0 at t = 0.5
        assert_eq!(sched.nth_distinct_robot_visit(1).unwrap().as_f64(), 0.5);
        // second distinct robot: robot 1 at t = 0.5 as well (goes straight out)
        assert_eq!(sched.nth_distinct_robot_visit(2).unwrap().as_f64(), 0.5);
        // no third robot
        assert!(sched.nth_distinct_robot_visit(3).is_none());
        assert_eq!(sched.nth_distinct_robot_visit(0), Some(Time::ZERO));
    }

    #[test]
    fn distinct_visitors_in_first_visit_order() {
        let engine = fleet(&[&[0.25, 1.0], &[0.1, 0.05, 0.5], &[10.0]]);
        let sched = engine.schedule(lp(0.2));
        let visitors = sched.distinct_visitors();
        assert_eq!(visitors, vec![RobotId(0), RobotId(2), RobotId(1)]);
    }

    #[test]
    fn first_visit_fleet_minimum() {
        let engine = fleet(&[&[1.0, 4.0], &[2.0]]);
        assert_eq!(engine.first_visit(lp(1.5)).unwrap().as_f64(), 1.5);
        assert_eq!(engine.first_visit(lp(-3.0)).unwrap().as_f64(), 5.0);
        assert!(engine.first_visit(lp(-5.0)).is_none());
    }

    #[test]
    fn event_stream_merges_points_in_time_order() {
        let engine = fleet(&[&[1.0, 2.0], &[4.0]]);
        let events = engine.event_stream(&[lp(0.5), lp(-1.0), lp(3.5)]);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // point 2 (= +3.5) is only reached by robot 1 at t = 3.5
        let p2: Vec<&VisitEvent> = events.iter().filter(|e| e.point_index == 2).collect();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].robot, RobotId(1));
        assert_eq!(p2[0].time.as_f64(), 3.5);
    }

    #[test]
    fn end_time_is_fleet_maximum() {
        let engine = fleet(&[&[1.0, 2.0], &[4.0]]);
        // robot 0: 1 + 3 = 4; robot 1: 4.
        assert_eq!(engine.end_time().as_f64(), 4.0);
        let engine = fleet(&[&[1.0, 2.0, 4.0], &[4.0]]);
        // robot 0: 1 + 3 + 6 = 10
        assert_eq!(engine.end_time().as_f64(), 10.0);
    }
}
