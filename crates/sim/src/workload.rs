//! Deterministic target workload generators.
//!
//! The evaluation engine computes suprema exactly from breakpoints, but
//! tests, examples and benchmarks also need concrete target positions:
//! geometric grids, log-uniform random draws and adversarial positions just
//! past a strategy's turning points. All randomness is seeded, so every
//! workload is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SimError;

/// A geometric grid of distances `x₀, x₀·r, x₀·r², …` clipped to `[x0, max]`.
///
/// Geometric grids match the scale-invariance of competitive analysis: the
/// worst-case ratio of a geometric strategy is (asymptotically) periodic in
/// `log x`, so a geometric grid probes each period evenly.
///
/// # Errors
///
/// Returns [`SimError::InvalidDistance`] if `x0` is not positive finite or
/// `ratio <= 1` or `max < x0`.
///
/// # Example
///
/// ```
/// use raysearch_sim::workload::geometric_grid;
/// let xs = geometric_grid(1.0, 2.0, 10.0)?;
/// assert_eq!(xs, vec![1.0, 2.0, 4.0, 8.0]);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
pub fn geometric_grid(x0: f64, ratio: f64, max: f64) -> Result<Vec<f64>, SimError> {
    if !(x0.is_finite() && x0 > 0.0) {
        return Err(SimError::InvalidDistance { value: x0 });
    }
    if !(ratio.is_finite() && ratio > 1.0) {
        return Err(SimError::InvalidDistance { value: ratio });
    }
    if !(max.is_finite() && max >= x0) {
        return Err(SimError::InvalidDistance { value: max });
    }
    let mut out = Vec::new();
    let mut x = x0;
    while x <= max {
        out.push(x);
        x *= ratio;
    }
    Ok(out)
}

/// `n` random distances log-uniform in `[lo, hi]`, deterministic in `seed`.
///
/// Log-uniform sampling gives every distance scale equal weight, matching
/// how competitive ratios weight targets.
///
/// # Errors
///
/// Returns [`SimError::InvalidDistance`] if the range is empty or invalid.
///
/// # Example
///
/// ```
/// use raysearch_sim::workload::log_uniform;
/// let xs = log_uniform(42, 1.0, 100.0, 5)?;
/// assert_eq!(xs.len(), 5);
/// assert!(xs.iter().all(|&x| (1.0..=100.0).contains(&x)));
/// // deterministic
/// assert_eq!(xs, log_uniform(42, 1.0, 100.0, 5)?);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
pub fn log_uniform(seed: u64, lo: f64, hi: f64, n: usize) -> Result<Vec<f64>, SimError> {
    if !(lo.is_finite() && lo > 0.0) {
        return Err(SimError::InvalidDistance { value: lo });
    }
    if !(hi.is_finite() && hi >= lo) {
        return Err(SimError::InvalidDistance { value: hi });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let (llo, lhi) = (lo.ln(), hi.ln());
    Ok((0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(llo..=lhi);
            u.exp().clamp(lo, hi)
        })
        .collect())
}

/// Adversarial distances just past each breakpoint.
///
/// For strategies built from turning points, the worst target positions sit
/// immediately *past* a turning magnitude (the robot just missed them).
/// Given the breakpoints, this returns `b·(1+eps)` for each `b ≥ min_x`,
/// deduplicated and sorted.
///
/// # Errors
///
/// Returns [`SimError::InvalidDistance`] if `eps` is not positive finite.
///
/// # Example
///
/// ```
/// use raysearch_sim::workload::past_breakpoints;
/// let xs = past_breakpoints(&[1.0, 2.0, 2.0, 4.0], 1.0, 1e-9)?;
/// assert_eq!(xs.len(), 3);
/// assert!(xs[0] > 1.0 && xs[0] < 1.0 + 1e-6);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
pub fn past_breakpoints(breakpoints: &[f64], min_x: f64, eps: f64) -> Result<Vec<f64>, SimError> {
    if !(eps.is_finite() && eps > 0.0) {
        return Err(SimError::InvalidDistance { value: eps });
    }
    let mut bs: Vec<f64> = breakpoints
        .iter()
        .copied()
        .filter(|&b| b.is_finite() && b >= min_x)
        .collect();
    bs.sort_by(f64::total_cmp);
    bs.dedup();
    Ok(bs.into_iter().map(|b| b * (1.0 + eps)).collect())
}

/// Mixed workload: a geometric backbone plus seeded random fill-in, the
/// default target set for simulation-based cross-checks.
///
/// # Errors
///
/// Propagates errors from [`geometric_grid`] and [`log_uniform`].
pub fn standard_workload(seed: u64, max: f64, n_random: usize) -> Result<Vec<f64>, SimError> {
    let mut xs = geometric_grid(1.0, 1.1, max)?;
    xs.extend(log_uniform(seed, 1.0, max, n_random)?);
    xs.sort_by(f64::total_cmp);
    Ok(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_grid_validation() {
        assert!(geometric_grid(0.0, 2.0, 8.0).is_err());
        assert!(geometric_grid(1.0, 1.0, 8.0).is_err());
        assert!(geometric_grid(1.0, 2.0, 0.5).is_err());
    }

    #[test]
    fn geometric_grid_spans_range() {
        let xs = geometric_grid(1.0, 3.0, 100.0).unwrap();
        assert_eq!(xs, vec![1.0, 3.0, 9.0, 27.0, 81.0]);
    }

    #[test]
    fn log_uniform_is_deterministic_and_in_range() {
        let a = log_uniform(7, 2.0, 50.0, 100).unwrap();
        let b = log_uniform(7, 2.0, 50.0, 100).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (2.0..=50.0).contains(&x)));
        let c = log_uniform(8, 2.0, 50.0, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn log_uniform_rejects_bad_range() {
        assert!(log_uniform(1, -1.0, 5.0, 3).is_err());
        assert!(log_uniform(1, 5.0, 4.0, 3).is_err());
    }

    #[test]
    fn past_breakpoints_dedups_and_filters() {
        let xs = past_breakpoints(&[4.0, 1.0, 0.5, 1.0], 1.0, 1e-9).unwrap();
        assert_eq!(xs.len(), 2);
        assert!(xs[0] > 1.0);
        assert!(xs[1] > 4.0);
        assert!(past_breakpoints(&[1.0], 1.0, 0.0).is_err());
    }

    #[test]
    fn standard_workload_is_sorted() {
        let xs = standard_workload(3, 50.0, 20).unwrap();
        assert!(!xs.is_empty());
        for w in xs.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
