//! Kinematic substrate for robot search on the real line and on `m` rays.
//!
//! This crate provides the deterministic mechanics on top of which the
//! `raysearch` workspace builds search strategies, fault adversaries,
//! covering arguments and competitive-ratio evaluation:
//!
//! * [`Time`] — a validated, totally ordered wrapper for simulation time;
//! * [`geometry`] — points on the line ([`LinePoint`]) and on `m` rays
//!   ([`RayPoint`]), plus the classic identification of the line with two
//!   rays;
//! * [`itinerary`] — symbolic robot plans: alternating turning sequences on
//!   the line ([`LineItinerary`]) and excursion tours on rays
//!   ([`TourItinerary`]);
//! * [`trajectory`] — compiled piecewise-linear motions with exact
//!   first-visit and all-visits queries ([`LineTrajectory`],
//!   [`RayTrajectory`]);
//! * [`engine`] — a discrete-event engine merging per-robot visit events
//!   into a global, time-ordered schedule ([`VisitEngine`]);
//! * [`workload`] — deterministic target workload generators used by tests
//!   and benchmarks.
//!
//! Everything is exact up to `f64` arithmetic: trajectories are
//! piecewise-linear with unit speed, so visit times are computed in closed
//! form rather than by time-stepping.
//!
//! # Example
//!
//! ```
//! use raysearch_sim::{LineItinerary, LineTrajectory, Direction};
//!
//! // The classic doubling cow-path plan: +1, -2, +4, -8, ...
//! let plan = LineItinerary::new(Direction::Positive, vec![1.0, 2.0, 4.0, 8.0])?;
//! let traj = LineTrajectory::compile(&plan);
//!
//! // Visiting -2 requires walking 1 right, back, and 2 left: time 1+1+2 = 4.
//! let t = traj.first_visit(-2.0).expect("visited");
//! assert!((t.as_f64() - 4.0).abs() < 1e-12);
//! # Ok::<(), raysearch_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod time;

pub mod engine;
pub mod geometry;
pub mod itinerary;
pub mod trajectory;
pub mod workload;

pub use engine::{VisitEngine, VisitEvent, VisitSchedule};
pub use error::SimError;
pub use geometry::{Direction, LinePoint, RayId, RayPoint};
pub use itinerary::{Excursion, LineItinerary, LogExcursion, LogTourItinerary, TourItinerary};
pub use time::Time;
pub use trajectory::{LineTrajectory, RayTrajectory, Visit};

/// Identifier of a robot within a fleet, dense from `0`.
///
/// A `RobotId` is only meaningful relative to the fleet it was issued for;
/// the workspace uses dense ids `0..k` throughout.
///
/// # Example
///
/// ```
/// use raysearch_sim::RobotId;
/// let r = RobotId(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(format!("{r}"), "robot#3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct RobotId(pub usize);

impl RobotId {
    /// Returns the dense index of this robot.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for RobotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "robot#{}", self.0)
    }
}

impl From<usize> for RobotId {
    fn from(i: usize) -> Self {
        RobotId(i)
    }
}
