//! Symbolic robot plans.
//!
//! An *itinerary* describes a robot's intended motion without reference to
//! time: on the line, an alternating sequence of turning points
//! ([`LineItinerary`]); on a star of rays, a sequence of excursions from the
//! origin ([`TourItinerary`]). Itineraries are compiled into queryable
//! [`trajectories`](crate::trajectory) by
//! [`LineTrajectory::compile`](crate::LineTrajectory::compile) and
//! [`RayTrajectory::compile`](crate::RayTrajectory::compile).
//!
//! The paper's standardization arguments (Section 2) justify restricting
//! attention to exactly these plan shapes: any line strategy can be replaced
//! by an alternating turning-point strategy that λ-covers at least as much,
//! and any ORC-setting strategy by rounds with a single turn each.

use raysearch_bounds::LogScaled;

use crate::{Direction, RayId, SimError};

/// An alternating turning-point plan on the real line.
///
/// The robot starts at the origin, walks to `start · t₁`, turns, walks to
/// `-start · t₂`, turns, walks to `start · t₃`, and so on. All turning
/// magnitudes are positive and finite; monotonicity is *not* required here
/// (the covering machinery normalizes arbitrary plans).
///
/// # Example
///
/// ```
/// use raysearch_sim::{Direction, LineItinerary};
///
/// let zigzag = LineItinerary::new(Direction::Positive, vec![1.0, 2.0, 4.0])?;
/// assert_eq!(zigzag.len(), 3);
/// let signed: Vec<f64> = zigzag.signed_turns().collect();
/// assert_eq!(signed, vec![1.0, -2.0, 4.0]);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineItinerary {
    start: Direction,
    turns: Vec<f64>,
}

impl LineItinerary {
    /// Creates an itinerary from a starting direction and turning
    /// magnitudes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if any magnitude is not a
    /// positive finite number. An empty list is allowed and describes a
    /// robot that never leaves the origin.
    pub fn new(start: Direction, turns: Vec<f64>) -> Result<Self, SimError> {
        for &t in &turns {
            if !(t.is_finite() && t > 0.0) {
                return Err(SimError::InvalidDistance { value: t });
            }
        }
        Ok(LineItinerary { start, turns })
    }

    /// The starting direction.
    #[inline]
    pub fn start(&self) -> Direction {
        self.start
    }

    /// The turning magnitudes `t₁, t₂, …`.
    #[inline]
    pub fn turns(&self) -> &[f64] {
        &self.turns
    }

    /// Number of turning points.
    #[inline]
    pub fn len(&self) -> usize {
        self.turns.len()
    }

    /// Returns `true` if the robot never leaves the origin.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.turns.is_empty()
    }

    /// Iterates over the signed turning coordinates
    /// `start·t₁, -start·t₂, start·t₃, …`.
    pub fn signed_turns(&self) -> impl Iterator<Item = f64> + '_ {
        let s0 = self.start.sign();
        self.turns
            .iter()
            .enumerate()
            .map(move |(i, &t)| if i % 2 == 0 { s0 * t } else { -s0 * t })
    }

    /// Returns the prefix sums `t₁, t₁+t₂, …` of the turning magnitudes.
    ///
    /// These drive both trajectory compilation (the robot reaches turning
    /// point `i` at time `2·Σ_{j<i} t_j + t_i`) and the paper's fruitful-turn
    /// condition (Eq. (2)).
    pub fn prefix_sums(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.turns
            .iter()
            .map(|&t| {
                acc += t;
                acc
            })
            .collect()
    }

    /// Total of all turning magnitudes.
    pub fn total_turn_sum(&self) -> f64 {
        self.turns.iter().sum()
    }

    /// Returns a copy extended with one more turning magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if `turn` is not positive
    /// finite.
    pub fn extended(&self, turn: f64) -> Result<Self, SimError> {
        if !(turn.is_finite() && turn > 0.0) {
            return Err(SimError::InvalidDistance { value: turn });
        }
        let mut turns = self.turns.clone();
        turns.push(turn);
        Ok(LineItinerary {
            start: self.start,
            turns,
        })
    }

    /// Interprets this line plan as a two-ray tour: odd legs become
    /// excursions on ray `0`/`1` according to the starting direction.
    ///
    /// Note this is a *relaxation*: the two-ray tour returns to the origin
    /// between legs, while the line robot swings through. The tour therefore
    /// reaches each turning point no earlier than the line robot reaches the
    /// *opposite* extreme — exactly the relaxation used when passing from
    /// the ±-cover to the ORC setting in the paper.
    pub fn to_two_ray_tour(&self) -> TourItinerary {
        let excursions = self
            .signed_turns()
            .map(|x| Excursion {
                ray: if x >= 0.0 {
                    RayId::new_unvalidated(0)
                } else {
                    RayId::new_unvalidated(1)
                },
                turn: x.abs(),
            })
            .collect();
        TourItinerary {
            num_rays: 2,
            excursions,
        }
    }
}

/// One excursion of a ray tour: out to distance `turn` on ray `ray`, then
/// back to the origin.
///
/// # Example
///
/// ```
/// use raysearch_sim::{Excursion, RayId};
/// let e = Excursion::new(RayId::new(0, 3)?, 2.0)?;
/// assert_eq!(e.round_trip_length(), 4.0);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Excursion {
    /// The ray explored by this excursion.
    pub ray: RayId,
    /// The distance at which the robot turns back.
    pub turn: f64,
}

impl Excursion {
    /// Creates an excursion, validating the turning distance.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if `turn` is not positive
    /// finite.
    pub fn new(ray: RayId, turn: f64) -> Result<Self, SimError> {
        if turn.is_finite() && turn > 0.0 {
            Ok(Excursion { ray, turn })
        } else {
            Err(SimError::InvalidDistance { value: turn })
        }
    }

    /// Length of the full round trip (out and back), which is also its
    /// duration at unit speed.
    #[inline]
    pub fn round_trip_length(&self) -> f64 {
        2.0 * self.turn
    }
}

/// A plan on a star of `m` rays: a sequence of excursions from the origin.
///
/// Between excursions the robot is at the origin, which is what makes this
/// the natural plan shape for the paper's *one-ray cover with returns*
/// (ORC) relaxation: a point is covered once per excursion that reaches it,
/// because the robot returns to `0` in between.
///
/// # Example
///
/// ```
/// use raysearch_sim::{Excursion, RayId, TourItinerary};
///
/// let m = 3;
/// let tour = TourItinerary::new(
///     m,
///     vec![
///         Excursion::new(RayId::new(0, m)?, 1.0)?,
///         Excursion::new(RayId::new(1, m)?, 2.0)?,
///         Excursion::new(RayId::new(2, m)?, 4.0)?,
///     ],
/// )?;
/// assert_eq!(tour.len(), 3);
/// assert_eq!(tour.total_tour_length(), 14.0);
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TourItinerary {
    num_rays: usize,
    excursions: Vec<Excursion>,
}

impl TourItinerary {
    /// Creates a tour over `num_rays` rays.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFleet`] if `num_rays == 0`,
    /// [`SimError::RayOutOfRange`] if an excursion names a ray `≥ num_rays`,
    /// and [`SimError::InvalidDistance`] if a turning distance is invalid.
    pub fn new(num_rays: usize, excursions: Vec<Excursion>) -> Result<Self, SimError> {
        if num_rays == 0 {
            return Err(SimError::InvalidFleet {
                reason: "a ray star must have at least one ray".to_owned(),
            });
        }
        for e in &excursions {
            if e.ray.index() >= num_rays {
                return Err(SimError::RayOutOfRange {
                    ray: e.ray.index(),
                    num_rays,
                });
            }
            if !(e.turn.is_finite() && e.turn > 0.0) {
                return Err(SimError::InvalidDistance { value: e.turn });
            }
        }
        Ok(TourItinerary {
            num_rays,
            excursions,
        })
    }

    /// Number of rays in the star this tour lives on.
    #[inline]
    pub fn num_rays(&self) -> usize {
        self.num_rays
    }

    /// The excursions in order.
    #[inline]
    pub fn excursions(&self) -> &[Excursion] {
        &self.excursions
    }

    /// Number of excursions.
    #[inline]
    pub fn len(&self) -> usize {
        self.excursions.len()
    }

    /// Returns `true` if the tour has no excursions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.excursions.is_empty()
    }

    /// Total length (and duration) of the whole tour.
    pub fn total_tour_length(&self) -> f64 {
        self.excursions
            .iter()
            .map(Excursion::round_trip_length)
            .sum()
    }

    /// Returns the prefix sums `t₁, t₁+t₂, …` of the turning distances.
    ///
    /// Excursion `i` starts at time `2·Σ_{j<i} t_j`, so these sums are the
    /// backbone of both trajectory compilation and the ORC fruitfulness
    /// condition.
    pub fn prefix_sums(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.excursions
            .iter()
            .map(|e| {
                acc += e.turn;
                acc
            })
            .collect()
    }

    /// Iterates over the excursions on a given ray, with their tour index.
    pub fn excursions_on_ray(&self, ray: RayId) -> impl Iterator<Item = (usize, &Excursion)> + '_ {
        self.excursions
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.ray == ray)
    }

    /// Returns a copy extended with one more excursion.
    ///
    /// # Errors
    ///
    /// Same validation as [`TourItinerary::new`] applied to the new
    /// excursion.
    pub fn extended(&self, excursion: Excursion) -> Result<Self, SimError> {
        if excursion.ray.index() >= self.num_rays {
            return Err(SimError::RayOutOfRange {
                ray: excursion.ray.index(),
                num_rays: self.num_rays,
            });
        }
        if !(excursion.turn.is_finite() && excursion.turn > 0.0) {
            return Err(SimError::InvalidDistance {
                value: excursion.turn,
            });
        }
        let mut excursions = self.excursions.clone();
        excursions.push(excursion);
        Ok(TourItinerary {
            num_rays: self.num_rays,
            excursions,
        })
    }
}

/// One excursion whose turning distance lives in the log domain.
///
/// The magnitude is a [`LogScaled`], so plans whose turning points
/// exceed `f64::MAX` (the padding tail of large cyclic fleets) remain
/// representable exactly. A log excursion is valid when its turn is
/// strictly positive with a finite log-magnitude — the log-domain
/// mirror of [`Excursion`]'s "finite and positive".
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogExcursion {
    /// The ray explored by this excursion.
    pub ray: RayId,
    /// The turning distance, as sign + log-magnitude.
    pub turn: LogScaled,
}

impl LogExcursion {
    /// Creates a log-domain excursion, validating the turning distance.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] unless the turn is strictly
    /// positive with a finite log-magnitude (the reported raw value is
    /// the saturating linear extraction).
    pub fn new(ray: RayId, turn: LogScaled) -> Result<Self, SimError> {
        if turn.is_positive() && turn.ln_abs().is_finite() {
            Ok(LogExcursion { ray, turn })
        } else {
            Err(SimError::InvalidDistance {
                value: turn.to_f64(),
            })
        }
    }

    /// Converts to a linear-space [`Excursion`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if the magnitude saturates
    /// linear `f64` (to `inf` above, to `0` below) — exactly the error a
    /// linear pipeline would have hit constructing the same excursion.
    pub fn to_linear(&self) -> Result<Excursion, SimError> {
        Excursion::new(self.ray, self.turn.to_f64())
    }
}

/// A ray-star plan whose turning distances live in the log domain.
///
/// This is the overflow-proof mirror of [`TourItinerary`]: the cyclic
/// exponential strategy's turn points are `α^(kn + mr)`, and the tour
/// contract requires padding excursions far past the horizon whose
/// magnitudes overflow linear `f64` for fleets of a few hundred robots.
/// A `LogTourItinerary` carries those exponents exactly; consumers
/// extract to linear `f64` only for the bounded, in-range prefix.
///
/// # Example
///
/// ```
/// use raysearch_bounds::LogScaled;
/// use raysearch_sim::{LogExcursion, LogTourItinerary, RayId};
///
/// // a tour whose second turn is e^1000 — far beyond f64::MAX
/// let tour = LogTourItinerary::new(
///     2,
///     vec![
///         LogExcursion::new(RayId::new(0, 2)?, LogScaled::from_ln(0.0))?,
///         LogExcursion::new(RayId::new(1, 2)?, LogScaled::from_ln(1000.0))?,
///     ],
/// )?;
/// assert_eq!(tour.len(), 2);
/// assert!(tour.to_linear().is_err()); // linear extraction overflows
/// # Ok::<(), raysearch_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogTourItinerary {
    num_rays: usize,
    excursions: Vec<LogExcursion>,
}

impl LogTourItinerary {
    /// Creates a log-domain tour over `num_rays` rays.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFleet`] if `num_rays == 0`,
    /// [`SimError::RayOutOfRange`] if an excursion names a ray
    /// `≥ num_rays`, and [`SimError::InvalidDistance`] if a turn is not
    /// strictly positive with finite log-magnitude.
    pub fn new(num_rays: usize, excursions: Vec<LogExcursion>) -> Result<Self, SimError> {
        if num_rays == 0 {
            return Err(SimError::InvalidFleet {
                reason: "a ray star must have at least one ray".to_owned(),
            });
        }
        for e in &excursions {
            if e.ray.index() >= num_rays {
                return Err(SimError::RayOutOfRange {
                    ray: e.ray.index(),
                    num_rays,
                });
            }
            if !(e.turn.is_positive() && e.turn.ln_abs().is_finite()) {
                return Err(SimError::InvalidDistance {
                    value: e.turn.to_f64(),
                });
            }
        }
        Ok(LogTourItinerary {
            num_rays,
            excursions,
        })
    }

    /// Lifts a linear tour into the log domain (lossless: each turn
    /// becomes `ln(turn)`).
    pub fn from_linear(tour: &TourItinerary) -> LogTourItinerary {
        LogTourItinerary {
            num_rays: tour.num_rays(),
            excursions: tour
                .excursions()
                .iter()
                .map(|e| LogExcursion {
                    ray: e.ray,
                    turn: LogScaled::from_f64(e.turn),
                })
                .collect(),
        }
    }

    /// Lowers the tour to linear space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDistance`] if any turn saturates
    /// linear `f64` — the same failure a linear construction of this
    /// plan would have produced.
    pub fn to_linear(&self) -> Result<TourItinerary, SimError> {
        let excursions = self
            .excursions
            .iter()
            .map(LogExcursion::to_linear)
            .collect::<Result<Vec<_>, _>>()?;
        TourItinerary::new(self.num_rays, excursions)
    }

    /// Number of rays in the star this tour lives on.
    #[inline]
    pub fn num_rays(&self) -> usize {
        self.num_rays
    }

    /// The excursions in order.
    #[inline]
    pub fn excursions(&self) -> &[LogExcursion] {
        &self.excursions
    }

    /// Number of excursions.
    #[inline]
    pub fn len(&self) -> usize {
        self.excursions.len()
    }

    /// Returns `true` if the tour has no excursions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.excursions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray(i: usize, m: usize) -> RayId {
        RayId::new(i, m).unwrap()
    }

    #[test]
    fn line_itinerary_validation() {
        assert!(LineItinerary::new(Direction::Positive, vec![1.0, -2.0]).is_err());
        assert!(LineItinerary::new(Direction::Positive, vec![1.0, 0.0]).is_err());
        assert!(LineItinerary::new(Direction::Positive, vec![]).is_ok());
    }

    #[test]
    fn signed_turns_alternate() {
        let it = LineItinerary::new(Direction::Negative, vec![1.0, 2.0, 3.0]).unwrap();
        let signed: Vec<f64> = it.signed_turns().collect();
        assert_eq!(signed, vec![-1.0, 2.0, -3.0]);
    }

    #[test]
    fn prefix_sums_and_total() {
        let it = LineItinerary::new(Direction::Positive, vec![1.0, 2.0, 4.0]).unwrap();
        assert_eq!(it.prefix_sums(), vec![1.0, 3.0, 7.0]);
        assert_eq!(it.total_turn_sum(), 7.0);
    }

    #[test]
    fn extended_preserves_original() {
        let it = LineItinerary::new(Direction::Positive, vec![1.0]).unwrap();
        let it2 = it.extended(2.0).unwrap();
        assert_eq!(it.len(), 1);
        assert_eq!(it2.len(), 2);
        assert!(it.extended(-1.0).is_err());
    }

    #[test]
    fn two_ray_tour_conversion() {
        let it = LineItinerary::new(Direction::Positive, vec![1.0, 2.0, 4.0]).unwrap();
        let tour = it.to_two_ray_tour();
        assert_eq!(tour.num_rays(), 2);
        let rays: Vec<usize> = tour.excursions().iter().map(|e| e.ray.index()).collect();
        assert_eq!(rays, vec![0, 1, 0]);
        let turns: Vec<f64> = tour.excursions().iter().map(|e| e.turn).collect();
        assert_eq!(turns, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn tour_validation() {
        let m = 2;
        assert!(TourItinerary::new(0, vec![]).is_err());
        let bad_ray = Excursion {
            ray: RayId::new_unvalidated(5),
            turn: 1.0,
        };
        assert!(TourItinerary::new(m, vec![bad_ray]).is_err());
        let bad_turn = Excursion {
            ray: ray(0, m),
            turn: f64::NAN,
        };
        assert!(TourItinerary::new(m, vec![bad_turn]).is_err());
    }

    #[test]
    fn log_tour_validation() {
        let ok = LogExcursion::new(ray(0, 2), LogScaled::from_ln(3.0)).unwrap();
        assert!(LogTourItinerary::new(2, vec![ok]).is_ok());
        assert!(LogTourItinerary::new(0, vec![]).is_err());
        // zero and negative turns are rejected
        assert!(LogExcursion::new(ray(0, 2), LogScaled::ZERO).is_err());
        assert!(LogExcursion::new(ray(0, 2), LogScaled::from_f64(-2.0)).is_err());
        // infinite log-magnitude (a pole) is rejected
        assert!(LogExcursion::new(ray(0, 2), LogScaled::ZERO.recip()).is_err());
        // out-of-range ray is rejected at the tour level
        let stray = LogExcursion {
            ray: RayId::new_unvalidated(7),
            turn: LogScaled::ONE,
        };
        assert!(LogTourItinerary::new(2, vec![stray]).is_err());
    }

    #[test]
    fn log_tour_round_trips_linear_tours() {
        let m = 3;
        let tour = TourItinerary::new(
            m,
            vec![
                Excursion::new(ray(0, m), 1.5).unwrap(),
                Excursion::new(ray(1, m), 2.0).unwrap(),
                Excursion::new(ray(2, m), 8.0).unwrap(),
            ],
        )
        .unwrap();
        let log = LogTourItinerary::from_linear(&tour);
        assert_eq!(log.num_rays(), m);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        let back = log.to_linear().unwrap();
        // ln→exp round trips are exact for these magnitudes? not in
        // general — but ray structure and near-equality must hold
        assert_eq!(back.num_rays(), m);
        for (a, b) in tour.excursions().iter().zip(back.excursions()) {
            assert_eq!(a.ray, b.ray);
            assert!((a.turn - b.turn).abs() <= 1e-15 * a.turn);
        }
    }

    #[test]
    fn log_tour_carries_magnitudes_beyond_f64() {
        let excursions: Vec<LogExcursion> = (0..40)
            .map(|i| {
                LogExcursion::new(
                    RayId::new_unvalidated(i % 2),
                    LogScaled::from_ln(f64::from(i as u16) * 50.0),
                )
                .unwrap()
            })
            .collect();
        let tour = LogTourItinerary::new(2, excursions).unwrap();
        // turn 39 has ln = 1950 ≈ 10^847: inexpressible linearly…
        assert!(tour.to_linear().is_err());
        // …but exactly ordered in the log domain
        let turns: Vec<LogScaled> = tour.excursions().iter().map(|e| e.turn).collect();
        assert!(turns.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tour_queries() {
        let m = 3;
        let tour = TourItinerary::new(
            m,
            vec![
                Excursion::new(ray(0, m), 1.0).unwrap(),
                Excursion::new(ray(1, m), 2.0).unwrap(),
                Excursion::new(ray(0, m), 4.0).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(tour.prefix_sums(), vec![1.0, 3.0, 7.0]);
        assert_eq!(tour.total_tour_length(), 14.0);
        let on_zero: Vec<usize> = tour.excursions_on_ray(ray(0, m)).map(|(i, _)| i).collect();
        assert_eq!(on_zero, vec![0, 2]);
        let e = Excursion::new(ray(2, m), 8.0).unwrap();
        let tour2 = tour.extended(e).unwrap();
        assert_eq!(tour2.len(), 4);
        assert_eq!(tour.len(), 3);
    }
}
