use std::fmt;

/// Error raised when constructing or operating on simulation primitives.
///
/// All validation in this crate reports failures through `SimError`; see
/// the individual variants for the invariant that was violated.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A time value was negative, NaN or infinite.
    InvalidTime {
        /// The offending raw value.
        value: f64,
    },
    /// A distance or turning point was not a positive finite number.
    InvalidDistance {
        /// The offending raw value.
        value: f64,
    },
    /// A ray index was out of range for the configured number of rays.
    RayOutOfRange {
        /// The offending ray index.
        ray: usize,
        /// The number of rays in the instance.
        num_rays: usize,
    },
    /// An itinerary was structurally invalid (e.g. empty where forbidden).
    InvalidItinerary {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A fleet-level parameter was inconsistent (e.g. zero robots).
    InvalidFleet {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTime { value } => {
                write!(
                    f,
                    "invalid time value {value}: must be finite and non-negative"
                )
            }
            SimError::InvalidDistance { value } => {
                write!(f, "invalid distance {value}: must be finite and positive")
            }
            SimError::RayOutOfRange { ray, num_rays } => {
                write!(f, "ray index {ray} out of range for {num_rays} rays")
            }
            SimError::InvalidItinerary { reason } => {
                write!(f, "invalid itinerary: {reason}")
            }
            SimError::InvalidFleet { reason } => {
                write!(f, "invalid fleet: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_value() {
        let e = SimError::InvalidTime { value: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = SimError::InvalidDistance { value: 0.0 };
        assert!(e.to_string().contains('0'));
        let e = SimError::RayOutOfRange {
            ray: 5,
            num_rays: 3,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
