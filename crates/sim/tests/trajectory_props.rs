//! Property tests for the kinematic substrate.

use proptest::prelude::*;
use raysearch_sim::{
    trajectory::Track, Direction, Excursion, LineItinerary, LineTrajectory, RayId, RayPoint,
    RayTrajectory, TourItinerary,
};

fn tour_strategy() -> impl Strategy<Value = TourItinerary> {
    prop::collection::vec((0usize..3, 0.1f64..50.0), 1..15).prop_map(|spec| {
        TourItinerary::new(
            3,
            spec.into_iter()
                .map(|(r, t)| Excursion::new(RayId::new(r, 3).unwrap(), t).unwrap())
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A line trajectory's end time is twice the turn total minus the
    /// last magnitude (out-and-back for every leg except the final stay).
    #[test]
    fn line_end_time_identity(turns in prop::collection::vec(0.1f64..40.0, 1..12)) {
        let it = LineItinerary::new(Direction::Positive, turns.clone()).unwrap();
        let traj = LineTrajectory::compile(&it);
        let expect = 2.0 * it.total_turn_sum() - turns.last().unwrap();
        prop_assert!((Track::end_time(&traj).as_f64() - expect).abs() < 1e-9);
    }

    /// First visit is the minimum of all visits, and visits are strictly
    /// increasing in time.
    #[test]
    fn line_visits_ordered_and_min(
        turns in prop::collection::vec(0.1f64..40.0, 1..12),
        x in -30.0f64..30.0,
    ) {
        prop_assume!(x != 0.0);
        let it = LineItinerary::new(Direction::Positive, turns).unwrap();
        let traj = LineTrajectory::compile(&it);
        let visits = traj.visits_coord(x);
        for w in visits.windows(2) {
            prop_assert!(w[0].time < w[1].time, "visits not strictly ordered");
        }
        match (traj.first_visit(x), visits.first()) {
            (Some(t), Some(v)) => prop_assert_eq!(t, v.time),
            (None, None) => {}
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }

    /// Ray trajectories: per-excursion ORC visits are a subset of raw
    /// visits, one per covering excursion, at the outbound time.
    #[test]
    fn ray_excursion_visits_consistent(tour in tour_strategy(), ray in 0usize..3, d in 0.1f64..60.0) {
        let traj = RayTrajectory::compile(&tour);
        let p = RayPoint::new(RayId::new(ray, 3).unwrap(), d).unwrap();
        let raw = traj.visits_at(p);
        let per_exc = traj.excursion_visits(p);
        // each ORC event corresponds to a raw visit with the same time
        for (leg, t) in &per_exc {
            prop_assert!(
                raw.iter().any(|v| v.leg == *leg && v.time == *t),
                "ORC event (leg {leg}) missing from raw visits"
            );
        }
        // the number of covering excursions matches the tour structure
        let expected = tour
            .excursions()
            .iter()
            .filter(|e| e.ray.index() == ray && e.turn >= d)
            .count();
        prop_assert_eq!(per_exc.len(), expected);
        // first visit agrees
        match (traj.first_visit_at(p), per_exc.first()) {
            (Some(t), Some((_, t0))) => prop_assert_eq!(t, *t0),
            (None, None) => {}
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }

    /// Position queries stay on the stated ray and within the turn
    /// distance.
    #[test]
    fn ray_position_in_bounds(tour in tour_strategy(), frac in 0.0f64..1.0) {
        let traj = RayTrajectory::compile(&tour);
        let end = Track::end_time(&traj).as_f64();
        let t = raysearch_sim::Time::new(end * frac).unwrap();
        let p = traj.position_at(t);
        let max_turn = tour
            .excursions()
            .iter()
            .map(|e| e.turn)
            .fold(0.0f64, f64::max);
        prop_assert!(p.distance() <= max_turn + 1e-9);
    }
}
