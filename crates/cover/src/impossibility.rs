//! An explicit finite-horizon impossibility certificate — the paper's
//! Section 3.1 made concrete.
//!
//! Inequality (12) asserts: for every `ε > 0` there is an `N`,
//! *independent of the strategy*, such that no `q`-fold λ-cover of
//! `[1, N]` by `k` robots exists when `λ` is below the bound by `ε`. The
//! proof is an induction on `k` with two cases:
//!
//! * **Case 1** — all consecutive assigned starts of every robot stay
//!   within a factor `C`: then the potential `f(P)` is bounded by
//!   `C^{qk}·μ^{(q−k)k}` while growing by `δ = (μ*/μ)^k > 1` per step, so
//!   only `T` steps fit, and the frontier grows by at most `C` per step —
//!   a concrete horizon `C^{T+O(1)}`.
//! * **Case 2** — some robot jumps by more than `C`: the interval
//!   `[μt′, Ct′]` is covered at most once by that robot, so the remaining
//!   `k−1` robots `(q−1)`-fold cover it, and choosing `C ≥ μ·N(k−1, q−1)`
//!   invokes the inductive hypothesis after rescaling.
//!
//! [`impossibility_horizon_log`] instantiates this recursion with
//! explicit (deliberately generous, *unoptimized*) constants, returning
//! `ln N`. The resulting horizons are astronomical — exponential towers,
//! exactly as the proof's structure implies — which is why they are
//! returned in log space. The measured witnesses of experiment E7 are
//! *vastly* smaller; the value of this function is that it is a concrete,
//! strategy-independent certificate with the same shape as the paper's.

use raysearch_bounds::{delta_growth, mu_threshold};

use crate::CoverError;

/// `ln N` for a strategy-independent impossibility horizon: no `q`-fold
/// λ-cover of `[1, N]` by `k` robots exists (with `λ` strictly below the
/// `C(k,q)` bound).
///
/// Implements the Case 1 / Case 2 recursion with the explicit constants
/// described in the module docs. The returned horizon is valid but very
/// loose; see experiment E7 for measured failure distances.
///
/// # Errors
///
/// Returns [`CoverError::OutOfDomain`] unless `0 < k < q` and
/// `1 < λ < C(k,q)` (and similarly below every inductive level's
/// threshold, which holds automatically since `μ(q−i, k−i)` increases
/// along the induction).
pub fn impossibility_horizon_log(k: u32, q: u32, lambda: f64) -> Result<f64, CoverError> {
    if k == 0 || q <= k {
        return Err(CoverError::OutOfDomain {
            name: "k,q",
            value: f64::from(k),
            domain: "0 < k < q",
        });
    }
    if !(lambda.is_finite() && lambda > 1.0) {
        return Err(CoverError::OutOfDomain {
            name: "lambda",
            value: lambda,
            domain: "lambda > 1",
        });
    }
    let mu = (lambda - 1.0) / 2.0;
    let mu_star = mu_threshold(k, q).map_err(|_| CoverError::OutOfDomain {
        name: "k,q",
        value: f64::from(q),
        domain: "0 < k < q",
    })?;
    if mu >= mu_star {
        return Err(CoverError::OutOfDomain {
            name: "lambda",
            value: lambda,
            domain: "lambda strictly below the covering bound 2*mu(q,k)+1",
        });
    }

    // The induction walks (k, q) -> (k-1, q-1) down to (1, q-k+1). We
    // compute ln N bottom-up.
    //
    // Base level (k = 1): Case 2 is vacuous with zero remaining robots,
    // so any C > mu works; take ln C = ln(2 mu) (and at least ln 2 for
    // tiny mu).
    //
    // Level step: with C = mu * N_prev (so C / mu >= N_prev as Case 2
    // needs), Case 1 permits at most
    //     T = [2 q_i k_i ln C + (q_i - k_i) k_i ln mu^+] / ln delta_i
    // assigned intervals (potential cap C^{q k} mu^{(q-k) k}, initial
    // potential at least C^{-q k}), each extending the frontier by at
    // most a factor C, giving ln N_i = (T + 2) ln C.
    let mut ln_n: f64 = 0.0;
    for level in (0..k).rev() {
        // level i has k_i = k - i robots ... walk from the base upward:
        let k_i = k - level; // 1, 2, ..., k
        let q_i = q - level; // q-k+1, ..., q
        let delta = delta_growth(mu, q_i - k_i, k_i).map_err(|_| CoverError::OutOfDomain {
            name: "delta",
            value: mu,
            domain: "parameters admit a growth factor",
        })?;
        debug_assert!(delta > 1.0, "diagonal monotonicity guarantees delta > 1");
        let ln_c = if k_i == 1 {
            (2.0 * mu).max(2.0).ln()
        } else {
            // C = mu * N_prev, and at least 2*mu so the Case-2 interval
            // is nonempty even for tiny horizons
            (mu.ln() + ln_n).max((2.0 * mu).ln())
        };
        let (kf, qf) = (f64::from(k_i), f64::from(q_i));
        let ln_mu_plus = mu.ln().max(0.0);
        let steps = (2.0 * qf * kf * ln_c + (qf - kf) * kf * ln_mu_plus) / delta.ln();
        ln_n = (steps + 2.0) * ln_c;
    }
    Ok(ln_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysearch_bounds::c_orc;

    #[test]
    fn domain_checks() {
        assert!(impossibility_horizon_log(0, 2, 5.0).is_err());
        assert!(impossibility_horizon_log(2, 2, 5.0).is_err());
        assert!(impossibility_horizon_log(1, 2, f64::NAN).is_err());
        // at or above the bound: no impossibility horizon exists
        assert!(impossibility_horizon_log(1, 2, 9.0).is_err());
        assert!(impossibility_horizon_log(1, 2, 9.5).is_err());
    }

    #[test]
    fn horizon_is_finite_below_the_bound() {
        for (k, q) in [(1u32, 2u32), (2, 3), (3, 4), (5, 8)] {
            let bound = c_orc(k, q).unwrap();
            let ln_n = impossibility_horizon_log(k, q, 0.9 * bound).unwrap();
            assert!(
                ln_n.is_finite() && ln_n > 0.0,
                "(k={k}, q={q}): ln N = {ln_n}"
            );
        }
    }

    #[test]
    fn horizon_blows_up_as_lambda_approaches_the_bound() {
        let (k, q) = (1u32, 2u32);
        let bound = c_orc(k, q).unwrap();
        let mut last = 0.0;
        for frac in [0.5, 0.8, 0.95, 0.99, 0.999] {
            let ln_n = impossibility_horizon_log(k, q, frac * bound).unwrap();
            assert!(
                ln_n > last,
                "horizon did not grow towards the bound at frac={frac}"
            );
            last = ln_n;
        }
    }

    #[test]
    fn horizon_dominates_measured_witnesses() {
        // E7 measured: the cow-path cover at lambda = 0.999·9 dies by
        // x ≈ 128. The certificate horizon must (vastly) exceed that.
        let ln_n = impossibility_horizon_log(1, 2, 0.999 * 9.0).unwrap();
        assert!(ln_n > (128.0f64).ln());
    }

    #[test]
    fn deeper_inductions_cost_more() {
        // same eta = q/k (hence same bound), more robots: the recursion
        // stacks more levels, so the certificate grows
        let lambda = 0.9 * c_orc(1, 2).unwrap();
        let shallow = impossibility_horizon_log(1, 2, lambda).unwrap();
        let deep = impossibility_horizon_log(3, 6, lambda).unwrap();
        assert!(deep > shallow);
    }
}
