//! The strategy-standardization reductions of Section 2.
//!
//! The paper restricts attention to strategies given by non-decreasing
//! alternating turning sequences, arguing that arbitrary strategies can be
//! transformed into this shape while λ-covering *at least as much*:
//!
//! 1. turns inside already-visited territory can be shifted outwards;
//! 2. a turn at `x₁` immediately followed by a turn at `x₂ < x₁` (other
//!    side) can be replaced by a single turn at `x₂`;
//! 3. unfruitful rounds (`t″_i > t_i`) can be skipped outright — later
//!    rounds then cover even more (their `t″` moves left).
//!
//! In the ±-cover abstraction only the *magnitude sequence* matters (both
//! sides must be visited regardless of which is which), so the transforms
//! below operate on `Vec<f64>` magnitudes. Property tests in
//! `tests/standardize_props.rs` machine-check the "covers at least as
//! much" claims against the trajectory-level ground truth.

use crate::settings::{OrcSetting, PmSetting};
use crate::CoverError;

fn check_positive(turns: &[f64]) -> Result<(), CoverError> {
    for &t in turns {
        if !(t.is_finite() && t > 0.0) {
            return Err(CoverError::sequence(format!(
                "turning points must be positive finite, got {t}"
            )));
        }
    }
    Ok(())
}

/// Reductions 1 and 2: normalize an alternating magnitude sequence to a
/// strictly increasing one.
///
/// Two local rules, applied to a fixpoint (each strictly shortens the
/// sequence, so this terminates):
///
/// 1. **Dominated turn** — a turn `t_i` no larger than an earlier
///    same-side turn happens entirely inside visited territory; it is
///    removed and its opposite-side neighbours merge into a single turn of
///    the larger magnitude.
/// 2. **Descending pair** — a turn at `x₁` immediately followed by a turn
///    at `x₂ < x₁` on the other side may as well have turned at `x₂` the
///    first time (the following legs revisit `(x₂, x₁]` anyway): the pair
///    collapses to the single turn `x₂`.
///
/// These are exactly the Section 2 reductions; as there, the claim that
/// coverage only improves refers to *infinite* strategies (every turn is
/// eventually followed by longer ones). For a finite prefix the guarantee
/// holds for every target that the original prefix covers away from its
/// trailing turns — the property tests model this by padding both
/// sequences with a common continuation.
///
/// # Errors
///
/// Returns [`CoverError::InvalidSequence`] on non-positive magnitudes.
///
/// # Example
///
/// ```
/// use raysearch_cover::standardize::canonicalize;
/// // the turn at 3 is dominated by the earlier same-side 5; the remaining
/// // descending pair (5, 3-merged) collapses
/// assert_eq!(canonicalize(&[1.0, 5.0, 2.0, 3.0, 3.0])?, vec![1.0, 3.0]);
/// # Ok::<(), raysearch_cover::CoverError>(())
/// ```
pub fn canonicalize(turns: &[f64]) -> Result<Vec<f64>, CoverError> {
    check_positive(turns)?;
    let mut seq = turns.to_vec();
    'outer: loop {
        // Rule 1: dominated turns (same parity = same side).
        for i in 0..seq.len() {
            let dominated = seq[..i]
                .iter()
                .rev()
                .skip(1)
                .step_by(2)
                .any(|&earlier| earlier >= seq[i]);
            if dominated {
                if i + 1 < seq.len() {
                    let merged = seq[i - 1].max(seq[i + 1]);
                    seq.splice(i - 1..=i + 1, [merged]);
                } else {
                    seq.truncate(i);
                }
                continue 'outer;
            }
        }
        // Rule 2: descending or equal neighbours.
        for i in 0..seq.len().saturating_sub(1) {
            if seq[i + 1] <= seq[i] {
                seq[i] = seq[i + 1];
                seq.remove(i + 1);
                continue 'outer;
            }
        }
        break;
    }
    Ok(seq)
}

/// Reduction 3 for the ±-cover setting: repeatedly remove unfruitful
/// rounds (`t″_i > t_i`) until every remaining round is fruitful.
///
/// Requires a strictly increasing sequence (apply [`canonicalize`] first).
/// Removing a round shrinks later prefix sums, so later rounds cover more;
/// the result λ-covers a superset of the original.
///
/// # Errors
///
/// Returns [`CoverError::InvalidSequence`] on invalid or non-monotone
/// input, and [`CoverError::OutOfDomain`] for `mu <= 0`.
pub fn drop_unfruitful_pm(turns: &[f64], mu: f64) -> Result<Vec<f64>, CoverError> {
    if !(mu.is_finite() && mu > 0.0) {
        return Err(CoverError::OutOfDomain {
            name: "mu",
            value: mu,
            domain: "mu > 0",
        });
    }
    check_positive(turns)?;
    for w in turns.windows(2) {
        if w[1] <= w[0] {
            return Err(CoverError::sequence(
                "drop_unfruitful_pm needs a strictly increasing sequence; canonicalize first",
            ));
        }
    }
    let mut seq = turns.to_vec();
    loop {
        // find the first unfruitful round under Eq. (3)
        let mut sum = 0.0;
        let mut prev = 0.0;
        let mut victim = None;
        for (i, &t) in seq.iter().enumerate() {
            sum += t;
            let start = (sum / mu).max(prev);
            if start > t {
                victim = Some(i);
                break;
            }
            prev = t;
        }
        match victim {
            Some(i) => {
                seq.remove(i);
            }
            None => return Ok(seq),
        }
    }
}

/// Reduction 3 for the ORC setting: remove rounds with
/// `t″_i = (1/μ)·Σ_{j<i} t_j > t_i`.
///
/// No monotonicity is required. As in the ±-case, removal only moves later
/// rounds' `t″` left.
///
/// # Errors
///
/// Returns [`CoverError::InvalidSequence`] on non-positive magnitudes and
/// [`CoverError::OutOfDomain`] for `mu <= 0`.
pub fn drop_unfruitful_orc(turns: &[f64], mu: f64) -> Result<Vec<f64>, CoverError> {
    if !(mu.is_finite() && mu > 0.0) {
        return Err(CoverError::OutOfDomain {
            name: "mu",
            value: mu,
            domain: "mu > 0",
        });
    }
    check_positive(turns)?;
    let mut seq = turns.to_vec();
    loop {
        let mut sum_before = 0.0;
        let mut victim = None;
        for (i, &t) in seq.iter().enumerate() {
            if sum_before / mu > t {
                victim = Some(i);
                break;
            }
            sum_before += t;
        }
        match victim {
            Some(i) => {
                seq.remove(i);
            }
            None => return Ok(seq),
        }
    }
}

/// Full ±-cover standardization pipeline: canonicalize, then drop
/// unfruitful rounds.
///
/// # Errors
///
/// Propagates the component errors.
pub fn standardize_pm(turns: &[f64], mu: f64) -> Result<Vec<f64>, CoverError> {
    drop_unfruitful_pm(&canonicalize(turns)?, mu)
}

/// Checks the paper's observation that after ORC standardization the
/// fruitfulness thresholds `t″₁, t″₂, …` are monotone increasing.
///
/// Returns the thresholds for inspection.
///
/// # Errors
///
/// Propagates [`OrcSetting::covered_intervals`] errors.
pub fn orc_thresholds(turns: &[f64], mu: f64) -> Result<Vec<f64>, CoverError> {
    Ok(OrcSetting::covered_intervals(turns, mu)?
        .into_iter()
        .map(|iv| iv.start)
        .collect())
}

/// Convenience: does `cleaned` λ-cover at least everything `original`
/// λ-covers on a probe grid? Used by tests and exposed for the experiment
/// harness's sanity tables.
///
/// # Errors
///
/// Propagates ground-truth query errors.
pub fn pm_covers_at_least(
    original: &[f64],
    cleaned: &[f64],
    lambda: f64,
    probes: &[f64],
) -> Result<bool, CoverError> {
    for &x in probes {
        let before = PmSetting::is_lambda_covered(original, x, lambda)?;
        if before && !PmSetting::is_lambda_covered(cleaned, x, lambda)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_makes_strictly_increasing() {
        let c = canonicalize(&[3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0]).unwrap();
        for w in c.windows(2) {
            assert!(w[0] < w[1]);
        }
        // the trailing 5 is dominated by the same-side 9 and disappears
        assert_eq!(c, vec![1.0, 1.5, 2.6]);
    }

    #[test]
    fn canonicalize_merges_dominated_middle_turn() {
        // +2, -5, +1, -8: the +1 turn is inside visited territory; its
        // neighbours -5 and -8 merge.
        assert_eq!(canonicalize(&[2.0, 5.0, 1.0, 8.0]).unwrap(), vec![2.0, 8.0]);
    }

    #[test]
    fn canonicalize_identity_on_increasing() {
        let turns = [1.0, 2.0, 4.0, 8.0];
        assert_eq!(canonicalize(&turns).unwrap(), turns.to_vec());
    }

    #[test]
    fn canonicalize_rejects_bad_values() {
        assert!(canonicalize(&[1.0, 0.0]).is_err());
        assert!(canonicalize(&[f64::NAN]).is_err());
    }

    #[test]
    fn canonicalize_preserves_lambda_coverage_on_probes() {
        // model an infinite strategy by ending with a long common tail —
        // the Section 2 claims are about strategies whose turns keep
        // growing, so the probes stay well inside the settled region.
        let original = [2.0, 5.0, 1.0, 8.0, 3.0, 16.0, 200.0, 400.0, 800.0];
        let cleaned = canonicalize(&original).unwrap();
        let probes: Vec<f64> = (1..60).map(|i| 0.3 * f64::from(i)).collect();
        for lambda in [3.0, 5.0, 9.0, 15.0] {
            assert!(
                pm_covers_at_least(&original, &cleaned, lambda, &probes).unwrap(),
                "coverage lost at lambda={lambda}"
            );
        }
    }

    #[test]
    fn drop_unfruitful_pm_removes_only_unfruitful() {
        // mu small: geometric sequence too aggressive early on
        let turns = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mu = 1.5;
        let cleaned = drop_unfruitful_pm(&turns, mu).unwrap();
        // cleaned must be fully fruitful
        let ivs = PmSetting::covered_intervals(&cleaned, mu).unwrap();
        assert_eq!(ivs.len(), cleaned.len());
        // and coverage must not shrink
        let probes: Vec<f64> = (1..40).map(|i| 0.45 * f64::from(i)).collect();
        assert!(pm_covers_at_least(&turns, &cleaned, 2.0 * mu + 1.0, &probes).unwrap());
    }

    #[test]
    fn drop_unfruitful_pm_requires_monotone() {
        assert!(drop_unfruitful_pm(&[2.0, 1.0], 4.0).is_err());
        assert!(drop_unfruitful_pm(&[1.0, 1.0], 4.0).is_err());
    }

    #[test]
    fn drop_unfruitful_orc_fixpoint_is_fruitful() {
        let turns = [5.0, 1.0, 2.0, 0.5, 30.0, 3.0];
        let mu = 2.0;
        let cleaned = drop_unfruitful_orc(&turns, mu).unwrap();
        let ivs = OrcSetting::covered_intervals(&cleaned, mu).unwrap();
        assert_eq!(ivs.len(), cleaned.len(), "some round still unfruitful");
    }

    #[test]
    fn drop_unfruitful_orc_never_reduces_cover_count() {
        let turns = [5.0, 1.0, 2.0, 0.5, 30.0, 3.0, 50.0];
        let mu = 2.0;
        let lambda = 2.0 * mu + 1.0;
        let cleaned = drop_unfruitful_orc(&turns, mu).unwrap();
        let mut x = 0.4;
        while x < 60.0 {
            let before = OrcSetting::cover_count(&turns, x, lambda).unwrap();
            let after = OrcSetting::cover_count(&cleaned, x, lambda).unwrap();
            assert!(
                after >= before,
                "coverage of x={x} dropped from {before} to {after}"
            );
            x += 0.37;
        }
    }

    #[test]
    fn standardize_pm_pipeline() {
        let turns = [3.0, 1.0, 4.0, 1.5, 9.0, 27.0, 81.0];
        let out = standardize_pm(&turns, 4.0).unwrap();
        for w in out.windows(2) {
            assert!(w[0] < w[1]);
        }
        let ivs = PmSetting::covered_intervals(&out, 4.0).unwrap();
        assert_eq!(ivs.len(), out.len());
    }

    #[test]
    fn orc_thresholds_monotone_for_fruitful_sequences() {
        // geometric, all fruitful
        let turns: Vec<f64> = (0..12).map(|i| 1.7f64.powi(i)).collect();
        let th = orc_thresholds(&turns, 3.0).unwrap();
        assert_eq!(th.len(), turns.len());
        for w in th.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
