//! Coverage profiles: how many intervals cover each part of `[lo, hi]`.
//!
//! The multiplicity requirements of the paper (`s`-fold ±-cover, `q`-fold
//! ORC cover) are verified by a sweep over interval endpoints. Coverage is
//! piecewise constant between endpoints, so the profile is exact: either
//! every elementary segment reaches the required multiplicity, or the
//! profile yields a concrete *witness point* where coverage fails — the
//! adversary's target placement.

use crate::settings::CoveredInterval;
use crate::CoverError;

/// An exact coverage profile of a set of closed intervals over `[lo, hi]`.
///
/// # Example
///
/// ```
/// use raysearch_cover::settings::CoveredInterval;
/// use raysearch_cover::sweep::CoverageProfile;
///
/// let ivs = vec![
///     CoveredInterval { robot: 0, round: 0, start: 1.0, end: 3.0 },
///     CoveredInterval { robot: 1, round: 0, start: 2.0, end: 5.0 },
/// ];
/// let p = CoverageProfile::build(&ivs, 1.0, 5.0)?;
/// assert_eq!(p.coverage_at(2.5), 2);
/// assert_eq!(p.min_coverage(), 1);
/// assert!(p.first_undercovered(2).is_some()); // e.g. around 1.5
/// assert!(p.first_undercovered(1).is_none());
/// # Ok::<(), raysearch_cover::CoverError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageProfile {
    lo: f64,
    hi: f64,
    /// Sorted distinct segment boundaries, spanning `[lo, hi]`.
    boundaries: Vec<f64>,
    /// `counts[i]` is the coverage on the open segment
    /// `(boundaries[i], boundaries[i+1])`.
    counts: Vec<usize>,
    /// All interval starts, sorted (for point queries).
    starts: Vec<f64>,
    /// All interval ends, sorted (for point queries).
    ends: Vec<f64>,
}

impl CoverageProfile {
    /// Builds the profile of `intervals` over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::OutOfDomain`] unless `0 < lo < hi`, both
    /// finite.
    pub fn build(intervals: &[CoveredInterval], lo: f64, hi: f64) -> Result<Self, CoverError> {
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
            return Err(CoverError::OutOfDomain {
                name: "range",
                value: hi - lo,
                domain: "0 < lo < hi, both finite",
            });
        }
        let mut boundaries: Vec<f64> = vec![lo, hi];
        for iv in intervals {
            if iv.start > lo && iv.start < hi {
                boundaries.push(iv.start);
            }
            if iv.end > lo && iv.end < hi {
                boundaries.push(iv.end);
            }
        }
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup();

        let mut starts: Vec<f64> = intervals.iter().map(|iv| iv.start).collect();
        let mut ends: Vec<f64> = intervals.iter().map(|iv| iv.end).collect();
        starts.sort_by(f64::total_cmp);
        ends.sort_by(f64::total_cmp);

        let counts = boundaries
            .windows(2)
            .map(|w| {
                let mid = 0.5 * (w[0] + w[1]);
                Self::coverage_from_sorted(&starts, &ends, mid)
            })
            .collect();

        Ok(CoverageProfile {
            lo,
            hi,
            boundaries,
            counts,
            starts,
            ends,
        })
    }

    fn coverage_from_sorted(starts: &[f64], ends: &[f64], x: f64) -> usize {
        // closed intervals: #\{start <= x\} - #\{end < x\}
        let s = starts.partition_point(|&v| v <= x);
        let e = ends.partition_point(|&v| v < x);
        s - e
    }

    /// Exact coverage multiplicity at a single point of `[lo, hi]`.
    pub fn coverage_at(&self, x: f64) -> usize {
        Self::coverage_from_sorted(&self.starts, &self.ends, x)
    }

    /// The minimum coverage over all open elementary segments of
    /// `[lo, hi]`.
    ///
    /// Boundary *points* can only have coverage at least as large
    /// (intervals are closed), so this is the minimum over the whole
    /// interval except finitely many points — exactly the right notion for
    /// target placement, which needs an open region to hide in.
    pub fn min_coverage(&self) -> usize {
        self.counts.iter().copied().min().unwrap_or(0)
    }

    /// A witness point with coverage below `required`, if one exists:
    /// the midpoint of the first undercovered elementary segment.
    pub fn first_undercovered(&self, required: usize) -> Option<f64> {
        self.counts
            .iter()
            .position(|&c| c < required)
            .map(|i| 0.5 * (self.boundaries[i] + self.boundaries[i + 1]))
    }

    /// The largest `a ∈ [lo, hi]` such that every elementary segment of
    /// `[lo, a]` has coverage at least `required` (`lo` itself if the very
    /// first segment fails).
    pub fn covered_prefix_end(&self, required: usize) -> f64 {
        for (i, &c) in self.counts.iter().enumerate() {
            if c < required {
                return self.boundaries[i];
            }
        }
        self.hi
    }

    /// The elementary segments and their coverage, for reporting.
    pub fn segments(&self) -> impl Iterator<Item = (f64, f64, usize)> + '_ {
        self.boundaries
            .windows(2)
            .zip(&self.counts)
            .map(|(w, &c)| (w[0], w[1], c))
    }

    /// The probed range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: f64, end: f64) -> CoveredInterval {
        CoveredInterval {
            robot: 0,
            round: 0,
            start,
            end,
        }
    }

    #[test]
    fn empty_intervals_mean_zero_coverage() {
        let p = CoverageProfile::build(&[], 1.0, 10.0).unwrap();
        assert_eq!(p.min_coverage(), 0);
        assert_eq!(p.first_undercovered(1), Some(5.5));
        assert_eq!(p.covered_prefix_end(1), 1.0);
    }

    #[test]
    fn range_validation() {
        assert!(CoverageProfile::build(&[], 0.0, 1.0).is_err());
        assert!(CoverageProfile::build(&[], 2.0, 2.0).is_err());
        assert!(CoverageProfile::build(&[], 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn overlapping_intervals_counted() {
        let ivs = vec![iv(1.0, 4.0), iv(2.0, 6.0), iv(3.0, 10.0)];
        let p = CoverageProfile::build(&ivs, 1.0, 10.0).unwrap();
        assert_eq!(p.coverage_at(1.5), 1);
        assert_eq!(p.coverage_at(2.5), 2);
        assert_eq!(p.coverage_at(3.5), 3);
        assert_eq!(p.coverage_at(5.0), 2);
        assert_eq!(p.coverage_at(8.0), 1);
        assert_eq!(p.min_coverage(), 1);
    }

    #[test]
    fn endpoints_are_inclusive() {
        let ivs = vec![iv(1.0, 3.0), iv(3.0, 5.0)];
        let p = CoverageProfile::build(&ivs, 1.0, 5.0).unwrap();
        // the touching point is covered by both
        assert_eq!(p.coverage_at(3.0), 2);
        // but open segments on either side see exactly one
        assert_eq!(p.coverage_at(2.9), 1);
        assert_eq!(p.coverage_at(3.1), 1);
        assert_eq!(p.min_coverage(), 1);
        assert!(p.first_undercovered(1).is_none());
    }

    #[test]
    fn gap_between_intervals_is_detected() {
        let ivs = vec![iv(1.0, 2.0), iv(3.0, 8.0)];
        let p = CoverageProfile::build(&ivs, 1.0, 8.0).unwrap();
        let w = p.first_undercovered(1).unwrap();
        assert!(w > 2.0 && w < 3.0, "witness {w} not inside the gap");
        assert_eq!(p.covered_prefix_end(1), 2.0);
    }

    #[test]
    fn multiplicity_witness() {
        let ivs = vec![iv(1.0, 10.0), iv(1.0, 4.0), iv(5.0, 10.0)];
        let p = CoverageProfile::build(&ivs, 1.0, 10.0).unwrap();
        // 2-fold coverage breaks on (4,5)
        let w = p.first_undercovered(2).unwrap();
        assert!(w > 4.0 && w < 5.0);
        assert!(p.first_undercovered(1).is_none());
        assert_eq!(p.covered_prefix_end(2), 4.0);
    }

    #[test]
    fn intervals_outside_range_still_count_inside() {
        let ivs = vec![iv(0.1, 100.0)];
        let p = CoverageProfile::build(&ivs, 1.0, 10.0).unwrap();
        assert_eq!(p.min_coverage(), 1);
        assert_eq!(p.covered_prefix_end(1), 10.0);
    }

    #[test]
    fn segments_partition_the_range() {
        let ivs = vec![iv(2.0, 4.0), iv(3.0, 6.0)];
        let p = CoverageProfile::build(&ivs, 1.0, 8.0).unwrap();
        let segs: Vec<(f64, f64, usize)> = p.segments().collect();
        assert_eq!(segs.first().unwrap().0, 1.0);
        assert_eq!(segs.last().unwrap().1, 8.0);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        let counts: Vec<usize> = segs.iter().map(|s| s.2).collect();
        assert_eq!(counts, vec![0, 1, 2, 1, 0]);
    }
}
