use std::fmt;

/// Error raised by the covering machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoverError {
    /// A turning-point sequence was structurally invalid.
    InvalidSequence {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A real parameter was outside its domain.
    OutOfDomain {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Description of the valid domain.
        domain: &'static str,
    },
    /// The exact-multiplicity assignment got stuck: no available interval
    /// covers the current frontier.
    AssignmentStuck {
        /// The frontier position that could not be covered.
        frontier: f64,
        /// Number of intervals assigned before getting stuck.
        assigned: usize,
    },
}

impl CoverError {
    pub(crate) fn sequence(reason: impl Into<String>) -> Self {
        CoverError::InvalidSequence {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::InvalidSequence { reason } => {
                write!(f, "invalid turning sequence: {reason}")
            }
            CoverError::OutOfDomain {
                name,
                value,
                domain,
            } => write!(f, "parameter {name}={value} outside domain {domain}"),
            CoverError::AssignmentStuck { frontier, assigned } => write!(
                f,
                "exact assignment stuck at frontier {frontier} after {assigned} intervals"
            ),
        }
    }
}

impl std::error::Error for CoverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoverError::sequence("turns must be positive");
        assert!(e.to_string().contains("positive"));
        let e = CoverError::AssignmentStuck {
            frontier: 3.5,
            assigned: 7,
        };
        let s = e.to_string();
        assert!(s.contains("3.5") && s.contains('7'));
    }
}
