//! The lower-bound machinery of Kupavskii & Welzl, PODC 2018, in
//! executable form.
//!
//! The paper's lower bounds are proved by translating search strategies
//! into *covering* strategies and then showing a multiplicative potential
//! function over prefixes of assigned intervals must grow by a factor
//! `δ > 1` per interval while staying bounded — a contradiction. This crate
//! implements each ingredient so the argument can be *run* on concrete
//! strategies:
//!
//! * [`settings`] — the two covering settings: the symmetric line cover
//!   (±-cover, Section 2) and the one-ray cover with returns (ORC,
//!   Section 3), with fruitful-round computation and exact λ-cover
//!   predicates;
//! * [`standardize`] — the strategy-normalization reductions of Section 2
//!   (alternating turns, monotone magnitudes, fruitful rounds only), each
//!   verified to only ever *improve* coverage;
//! * [`sweep`] — coverage profiles over `[1, N]`: verify `s`-fold
//!   coverage or extract an uncovered witness point (the falsification
//!   side of the lower bound);
//! * [`assign`] — the exact-multiplicity assignment: truncating covered
//!   intervals to half-open assigned intervals so every point is covered
//!   *exactly* `q` times, mirroring the proof's prefix construction;
//! * [`potential`] — the potential `f(P)` of equations (7)/(15), computed
//!   in log space over an assignment, with measured per-step growth
//!   compared against the theoretical `δ` of Lemma 5;
//! * [`fractional`] — the fractional relaxation of Eq. (11) and the
//!   rational-approximation reduction used to prove it.
//!
//! # Example: the doubling strategy stops ±-covering below λ = 9
//!
//! ```
//! use raysearch_cover::settings::PmSetting;
//! use raysearch_cover::sweep::CoverageProfile;
//!
//! let turns: Vec<f64> = (0..40).map(|i| 2f64.powi(i)).collect();
//! // at lambda = 9 the doubling strategy 1-fold covers everything...
//! let ivs = PmSetting::covered_intervals(&turns, (9.0 - 1.0) / 2.0)?;
//! let profile = CoverageProfile::build(&ivs, 1.0, 1e6)?;
//! assert!(profile.first_undercovered(1).is_none());
//! // ...but at lambda = 8.9 gaps appear
//! let ivs = PmSetting::covered_intervals(&turns, (8.9 - 1.0) / 2.0)?;
//! let profile = CoverageProfile::build(&ivs, 1.0, 1e6)?;
//! assert!(profile.first_undercovered(1).is_some());
//! # Ok::<(), raysearch_cover::CoverError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod assign;
pub mod fractional;
pub mod impossibility;
pub mod potential;
pub mod settings;
pub mod standardize;
pub mod sweep;

pub use assign::{AssignedStep, Assignment, ExactAssigner};
pub use error::CoverError;
pub use impossibility::impossibility_horizon_log;
pub use potential::{GrowthReport, PotentialSeries, Setting};
pub use settings::{CoveredInterval, OrcSetting, PmSetting};
pub use sweep::CoverageProfile;
