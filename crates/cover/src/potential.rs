//! The multiplicative potential `f(P)` of equations (7) and (15), computed
//! over concrete assignments.
//!
//! For a prefix `P` of the assigned-interval sequence:
//!
//! * ±-cover (Eq. (7)):
//!   `f(P) = Π_r (L⁽ʳ⁾)^s / (Π_{y∈A} y)^k`
//! * ORC (Eq. (15)):
//!   `f(P) = Π_r (L⁽ʳ⁾)^(q-k) (b⁽ʳ⁾)^k / (Π_{y∈A} y)^k`
//!
//! where `L⁽ʳ⁾` is robot `r`'s load, `b⁽ʳ⁾` the start of its next assigned
//! interval, and `A(P)` the multiset of current coverage-layer ends. The
//! proofs show each added interval multiplies `f` by at least
//! `δ = (k+s)^(k+s)/(s^s k^k μ^k) > 1` when `μ` is below the threshold
//! (Lemma 5), while `f` stays bounded — the contradiction driving
//! Theorems 3 and 6.
//!
//! [`PotentialSeries::compute`] evaluates `log f` along a concrete
//! [`Assignment`] retrospectively, and
//! [`GrowthReport`] compares the *measured* minimum step ratio against the
//! theoretical `δ` — experiment E6 plots exactly this.

use raysearch_bounds::delta_growth;

use crate::assign::Assignment;
use crate::CoverError;

/// Which potential to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Setting {
    /// Symmetric line cover with multiplicity `s` (Eq. (7)).
    Pm {
        /// The coverage multiplicity `s = 2(f+1) − k`.
        s: u32,
    },
    /// One-ray cover with returns with multiplicity `q` (Eq. (15)).
    Orc {
        /// The coverage multiplicity `q = m(f+1)`.
        q: u32,
    },
}

/// The `log f(P)` series along an assignment's prefixes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PotentialSeries {
    /// Prefix lengths (number of assigned intervals) the series covers:
    /// `first_prefix ..= first_prefix + log_values.len() - 1`.
    pub first_prefix: usize,
    /// `log f` at each prefix.
    pub log_values: Vec<f64>,
    /// `log`-ratios between consecutive prefixes
    /// (`log f(P⁺) − log f(P)`).
    pub step_log_ratios: Vec<f64>,
}

impl PotentialSeries {
    /// Computes the series for `assignment` under `setting`.
    ///
    /// The series starts at the first prefix where every robot has at
    /// least one assigned interval (so loads are positive) and, in the ORC
    /// setting, ends at the last prefix where every robot still has a
    /// *next* interval (so `b⁽ʳ⁾` is defined) — exactly the prefixes the
    /// paper's argument quantifies over.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidSequence`] if the setting's
    /// multiplicity disagrees with the assignment's, if `q ≤ k` in the
    /// ORC setting, or if the assignment is too short to measure anything.
    pub fn compute(assignment: &Assignment, setting: Setting) -> Result<Self, CoverError> {
        let k = assignment.k;
        let q = assignment.q;
        match setting {
            Setting::Pm { s } => {
                if s as usize != q {
                    return Err(CoverError::sequence(format!(
                        "Pm setting multiplicity s={s} disagrees with assignment q={q}"
                    )));
                }
            }
            Setting::Orc { q: q_set } => {
                if q_set as usize != q {
                    return Err(CoverError::sequence(format!(
                        "Orc setting multiplicity q={q_set} disagrees with assignment q={q}"
                    )));
                }
                if q <= k {
                    return Err(CoverError::sequence(format!(
                        "Orc potential needs q > k, got q={q}, k={k}"
                    )));
                }
            }
        }
        let steps = &assignment.steps;

        // first prefix where all robots have a load
        let mut seen = vec![false; k];
        let mut n0 = None;
        for (i, s) in steps.iter().enumerate() {
            seen[s.robot] = true;
            if seen.iter().all(|&b| b) {
                n0 = Some(i + 1);
                break;
            }
        }
        let Some(n0) = n0 else {
            return Err(CoverError::sequence(
                "assignment never involves every robot; potential undefined",
            ));
        };

        // for the ORC b-terms: last step index per robot
        let mut last_idx = vec![0usize; k];
        for (i, s) in steps.iter().enumerate() {
            last_idx[s.robot] = i;
        }
        let n1 = match setting {
            Setting::Pm { .. } => steps.len(),
            // prefix n uses steps[0..n]; b(r) needs a step of r at index
            // >= n, so n can reach min_r last_idx[r].
            Setting::Orc { .. } => last_idx.iter().copied().min().unwrap_or(0),
        };
        if n1 < n0 {
            return Err(CoverError::sequence(
                "assignment too short to evaluate the potential on any prefix",
            ));
        }

        // Precompute, for the ORC case, next-start per robot at each
        // prefix: next_start[r] after prefix n is the start of the first
        // step of r with index >= n.
        // We'll sweep n upward maintaining per-robot queues.
        let mut robot_steps: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, s) in steps.iter().enumerate() {
            robot_steps[s.robot].push(i);
        }

        // replay A(P) and loads up to n0, then record values from n0..=n1
        let mut layers = vec![1.0f64; q];
        let mut sum_log_layers = 0.0; // ln of layers product (starts at 0)
        let mut loads = vec![0.0f64; k];
        let mut next_ptr = vec![0usize; k]; // index into robot_steps[r]

        let mut log_values = Vec::new();

        for n in 1..=n1 {
            let s = &steps[n - 1];
            // replace the frontier layer (== s.start) with s.end
            debug_assert!(
                (layers[0] - s.start).abs() < 1e-9 * (1.0 + s.start.abs()),
                "frontier mismatch: layer {} vs step start {}",
                layers[0],
                s.start
            );
            sum_log_layers += s.end.ln() - layers[0].ln();
            layers[0] = s.end;
            layers.sort_by(f64::total_cmp);
            loads[s.robot] = s.load_after;
            // advance next pointer for this robot past indices < n
            while next_ptr[s.robot] < robot_steps[s.robot].len()
                && robot_steps[s.robot][next_ptr[s.robot]] < n
            {
                next_ptr[s.robot] += 1;
            }

            if n < n0 {
                continue;
            }

            let mut log_f = -(k as f64) * sum_log_layers;
            match setting {
                Setting::Pm { s: mult } => {
                    for &l in &loads {
                        log_f += f64::from(mult) * l.ln();
                    }
                }
                Setting::Orc { .. } => {
                    let qk = (q - k) as f64;
                    for (r, &l) in loads.iter().enumerate() {
                        // b(r): start of the first step of r at index >= n
                        let mut ptr = next_ptr[r];
                        while ptr < robot_steps[r].len() && robot_steps[r][ptr] < n {
                            ptr += 1;
                        }
                        let b = steps[robot_steps[r][ptr]].start;
                        log_f += qk * l.ln() + (k as f64) * b.ln();
                    }
                }
            }
            log_values.push(log_f);
        }

        let step_log_ratios = log_values.windows(2).map(|w| w[1] - w[0]).collect();
        Ok(PotentialSeries {
            first_prefix: n0,
            log_values,
            step_log_ratios,
        })
    }

    /// Summarizes the series against the theoretical growth factor.
    ///
    /// # Errors
    ///
    /// Propagates [`delta_growth`] domain errors.
    pub fn growth_report(
        &self,
        k: usize,
        multiplicity_exponent: u32,
        mu: f64,
    ) -> Result<GrowthReport, CoverError> {
        let delta = delta_growth(mu, multiplicity_exponent, k as u32).map_err(|_| {
            CoverError::OutOfDomain {
                name: "delta parameters",
                value: mu,
                domain: "s >= 1, k >= 1, mu > 0",
            }
        })?;
        let min = self
            .step_log_ratios
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let mean = if self.step_log_ratios.is_empty() {
            f64::NAN
        } else {
            self.step_log_ratios.iter().sum::<f64>() / self.step_log_ratios.len() as f64
        };
        Ok(GrowthReport {
            k,
            multiplicity_exponent,
            mu,
            steps_measured: self.step_log_ratios.len(),
            min_step_ratio: min.exp(),
            mean_step_ratio: mean.exp(),
            theoretical_delta: delta,
        })
    }
}

/// Measured-vs-theoretical growth of the potential along an assignment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GrowthReport {
    /// Number of robots.
    pub k: usize,
    /// The exponent parameter of Lemma 5 (`s` for ±-cover, `q−k` for
    /// ORC).
    pub multiplicity_exponent: u32,
    /// The covering scale `μ`.
    pub mu: f64,
    /// Number of step ratios measured.
    pub steps_measured: usize,
    /// The smallest measured per-step growth factor `f(P⁺)/f(P)`.
    pub min_step_ratio: f64,
    /// The geometric-mean step growth factor.
    pub mean_step_ratio: f64,
    /// Lemma 5's guaranteed growth `δ` at this `μ`.
    pub theoretical_delta: f64,
}

impl GrowthReport {
    /// Whether the measurement is consistent with Lemma 5
    /// (measured minimum at least `δ`, up to floating-point slack).
    pub fn satisfies_lemma5(&self, tol: f64) -> bool {
        self.min_step_ratio >= self.theoretical_delta * (1.0 - tol)
    }
}

/// Upper bound on the number of assignable intervals when `μ` is below
/// the threshold: the paper's contradiction made quantitative.
///
/// In the ±-cover setting `f(P) ≤ μ^{ks}` (Eq. (8)) while each step
/// multiplies `f` by at least `δ`; starting from a measured initial value
/// `f₀`, at most `(ks·ln μ − ln f₀)/ln δ` steps fit.
///
/// # Errors
///
/// Returns [`CoverError::OutOfDomain`] if `δ ≤ 1` at these parameters
/// (i.e. `μ` is not below the threshold) or `log_f0` is not finite.
pub fn max_pm_steps(k: u32, s: u32, mu: f64, log_f0: f64) -> Result<usize, CoverError> {
    if !log_f0.is_finite() {
        return Err(CoverError::OutOfDomain {
            name: "log_f0",
            value: log_f0,
            domain: "finite",
        });
    }
    let delta = delta_growth(mu, s, k).map_err(|_| CoverError::OutOfDomain {
        name: "mu",
        value: mu,
        domain: "s >= 1, k >= 1, mu > 0",
    })?;
    if delta <= 1.0 {
        return Err(CoverError::OutOfDomain {
            name: "delta",
            value: delta,
            domain: "delta > 1 (mu below threshold)",
        });
    }
    let cap = f64::from(k * s) * mu.ln();
    let steps = (cap - log_f0) / delta.ln();
    Ok(steps.max(0.0).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::ExactAssigner;
    use crate::settings::OrcSetting;
    use raysearch_bounds::mu_threshold;

    /// Build a fleet of geometric ORC sequences mimicking the optimal
    /// strategy for (q, k) and return the (possibly partial) assignment.
    fn geometric_assignment(q: u32, k: u32, mu: f64, target: f64) -> (Assignment, Option<f64>) {
        let alpha = raysearch_bounds::optimal_alpha(q, k).unwrap();
        let per_robot: Vec<_> = (0..k)
            .map(|r| {
                // turns alpha^{k·n + r + 1}: the appendix strategy shape
                let mut turns = Vec::new();
                let mut expo = -(2.0 * f64::from(q)) + f64::from(r) + 1.0;
                loop {
                    let t = (expo * alpha.ln()).exp();
                    turns.push(t);
                    if t > target * 4.0 {
                        break;
                    }
                    expo += f64::from(k);
                }
                let mut ivs = OrcSetting::covered_intervals(&turns, mu).unwrap();
                for iv in &mut ivs {
                    iv.robot = r as usize;
                }
                ivs
            })
            .collect();
        ExactAssigner::new(q as usize, mu)
            .unwrap()
            .assign_partial(&per_robot, target)
            .unwrap()
    }

    #[test]
    fn optimal_strategy_succeeds_at_threshold_and_hovers_at_ratio_one() {
        // at mu slightly above the threshold the optimal-shape fleet keeps
        // covering, and the potential's geometric-mean step ratio sits
        // near 1 (the tightness of the bound made visible)
        let (q, k) = (2u32, 1u32);
        let mu = 1.05 * mu_threshold(k, q).unwrap();
        let (a, stuck) = geometric_assignment(q, k, mu, 500.0);
        assert!(stuck.is_none(), "optimal fleet got stuck above threshold");
        let series = PotentialSeries::compute(&a, Setting::Orc { q }).unwrap();
        assert!(series.step_log_ratios.len() > 5);
        let report = series.growth_report(k as usize, q - k, mu).unwrap();
        assert!(report.theoretical_delta < 1.0);
        assert!(
            report.satisfies_lemma5(1e-9),
            "measured min {} below delta {}",
            report.min_step_ratio,
            report.theoretical_delta
        );
        assert!(
            (report.mean_step_ratio - 1.0).abs() < 0.25,
            "mean step ratio {} far from 1",
            report.mean_step_ratio
        );
    }

    #[test]
    fn below_threshold_growth_exceeds_delta_until_stuck() {
        let (q, k) = (2u32, 1u32);
        let mu = 0.9 * mu_threshold(k, q).unwrap(); // delta > 1: must die
        let (a, stuck) = geometric_assignment(q, k, mu, 1e9);
        assert!(stuck.is_some(), "sub-threshold cover must get stuck");
        if a.steps.len() >= 2 {
            if let Ok(series) = PotentialSeries::compute(&a, Setting::Orc { q }) {
                let report = series.growth_report(k as usize, q - k, mu).unwrap();
                assert!(report.theoretical_delta > 1.0);
                assert!(report.satisfies_lemma5(1e-9));
            }
        }
    }

    #[test]
    fn orc_series_multi_robot_above_threshold() {
        let (q, k) = (4u32, 3u32);
        let mu = 1.08 * mu_threshold(k, q).unwrap();
        let (a, stuck) = geometric_assignment(q, k, mu, 5000.0);
        assert!(stuck.is_none(), "optimal fleet got stuck above threshold");
        let series = PotentialSeries::compute(&a, Setting::Orc { q }).unwrap();
        assert!(series.step_log_ratios.len() > 10);
        let report = series.growth_report(k as usize, q - k, mu).unwrap();
        assert!(
            report.satisfies_lemma5(1e-9),
            "measured min {} below delta {}",
            report.min_step_ratio,
            report.theoretical_delta
        );
        assert!((report.mean_step_ratio - 1.0).abs() < 0.25);
    }

    #[test]
    fn setting_mismatch_is_rejected() {
        let (a, _) = geometric_assignment(2, 1, 4.2, 50.0);
        assert!(PotentialSeries::compute(&a, Setting::Orc { q: 3 }).is_err());
        assert!(PotentialSeries::compute(&a, Setting::Pm { s: 3 }).is_err());
    }

    #[test]
    fn orc_requires_q_greater_than_k() {
        // build a fake assignment with q = k = 1 cannot exist through
        // geometric_assignment; construct q=1, k=1 directly
        let ivs = vec![vec![
            crate::settings::CoveredInterval {
                robot: 0,
                round: 0,
                start: 0.5,
                end: 3.0,
            },
            crate::settings::CoveredInterval {
                robot: 0,
                round: 1,
                start: 2.0,
                end: 9.0,
            },
        ]];
        let a = ExactAssigner::new(1, 4.0)
            .unwrap()
            .assign(&ivs, 8.0)
            .unwrap();
        assert!(PotentialSeries::compute(&a, Setting::Orc { q: 1 }).is_err());
        // Pm with s = 1 works
        let series = PotentialSeries::compute(&a, Setting::Pm { s: 1 }).unwrap();
        assert!(!series.log_values.is_empty());
    }

    #[test]
    fn pm_potential_stays_below_mu_ks_bound() {
        // Eq. (8): f(P) <= mu^{ks}, measured on a succeeding cover
        let (q, k) = (2u32, 1u32);
        let mu = 4.3; // above threshold 4: cover succeeds over the range
        let (a, stuck) = geometric_assignment(q, k, mu, 500.0);
        assert!(stuck.is_none());
        let series = PotentialSeries::compute(&a, Setting::Pm { s: q }).unwrap();
        let cap = f64::from(k * q) * mu.ln();
        for (i, &v) in series.log_values.iter().enumerate() {
            assert!(
                v <= cap + 1e-9,
                "prefix {} has log f = {v} above cap {cap}",
                series.first_prefix + i
            );
        }
    }

    #[test]
    fn max_pm_steps_bounds_measured_assignment_length() {
        // below the threshold the assignment dies within the proof's step
        // budget
        let (q, k) = (2u32, 1u32);
        let mu = 3.5;
        let (a, stuck) = geometric_assignment(q, k, mu, 1e6);
        assert!(stuck.is_some());
        if let Ok(series) = PotentialSeries::compute(&a, Setting::Pm { s: q }) {
            let f0 = series.log_values[0];
            let bound = max_pm_steps(k, q, mu, f0).unwrap();
            assert!(
                series.log_values.len() <= bound + 1,
                "series length {} exceeds bound {bound}",
                series.log_values.len()
            );
        }
    }

    #[test]
    fn max_pm_steps_domain() {
        // threshold for (k=1, s=2) is mu*(1,3) = 27/4 = 6.75
        assert!(max_pm_steps(1, 2, 7.0, 0.0).is_err()); // above threshold: delta < 1
        assert!(max_pm_steps(1, 2, 3.0, f64::NAN).is_err());
        assert!(max_pm_steps(1, 2, 3.0, 0.0).is_ok());
    }
}
