//! The exact-multiplicity assignment of the lower-bound proofs.
//!
//! Both proofs truncate the λ-covered intervals `[t″, t]` to half-open
//! *assigned* intervals `(t′, t]` so that every point of `(1, N]` is
//! covered **exactly** `q` times, with each robot's assigned intervals in
//! round order (some rounds may be skipped; skipping a round deletes its
//! turning point from the reduced strategy, which only helps).
//!
//! [`ExactAssigner`] rebuilds that construction greedily: it maintains the
//! covering-situation multiset `A(P)` (the `q` current coverage-layer
//! ends), repeatedly takes the frontier `a = min A(P)`, and assigns an
//! available interval containing `a`, preferring the one reaching furthest
//! right. Loads `L⁽ʳ⁾` track the *reduced* strategy (the sum of assigned
//! turning points), matching the paper's definition after skipping.

use crate::settings::CoveredInterval;
use crate::CoverError;

/// One step of the exact assignment: one half-open assigned interval
/// `(start, end]` given to one robot, plus the bookkeeping the potential
/// function needs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AssignedStep {
    /// The robot receiving the interval.
    pub robot: usize,
    /// The round index of the interval within that robot's list.
    pub round: usize,
    /// The assigned start `t′` (the frontier at assignment time).
    pub start: f64,
    /// The assigned end: the round's turning point.
    pub end: f64,
    /// Robot load before this step (sum of its previously assigned
    /// turning points, reduced-strategy convention).
    pub load_before: f64,
    /// Robot load after this step.
    pub load_after: f64,
}

/// The result of a successful exact-multiplicity assignment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Assignment {
    /// Number of robots.
    pub k: usize,
    /// The covering multiplicity `q`.
    pub q: usize,
    /// The `μ = (λ-1)/2` this assignment was built for.
    pub mu: f64,
    /// The assignment steps in frontier order.
    pub steps: Vec<AssignedStep>,
    /// The frontier reached: `(1, frontier]` is exactly `q`-covered.
    pub frontier: f64,
}

impl Assignment {
    /// The per-robot sequences of step indices, in assignment order.
    pub fn steps_by_robot(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k];
        for (i, s) in self.steps.iter().enumerate() {
            out[s.robot].push(i);
        }
        out
    }
}

/// Greedy construction of exact `q`-fold assignments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactAssigner {
    q: usize,
    mu: f64,
}

impl ExactAssigner {
    /// Creates an assigner for multiplicity `q` and covering scale `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::OutOfDomain`] if `q = 0` or `mu <= 0`.
    pub fn new(q: usize, mu: f64) -> Result<Self, CoverError> {
        if q == 0 {
            return Err(CoverError::OutOfDomain {
                name: "q",
                value: 0.0,
                domain: "q >= 1",
            });
        }
        if !(mu.is_finite() && mu > 0.0) {
            return Err(CoverError::OutOfDomain {
                name: "mu",
                value: mu,
                domain: "mu > 0",
            });
        }
        Ok(ExactAssigner { q, mu })
    }

    /// Builds an exact `q`-fold assignment covering `(1, target]` from the
    /// per-robot λ-covered interval lists (in round order, as produced by
    /// the [settings](crate::settings)).
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::AssignmentStuck`] if the greedy frontier
    /// cannot be covered before reaching `target` — which, per
    /// Theorems 3/6, *must* happen for every strategy when
    /// `μ < μ(q,k)` and `target` is large enough.
    pub fn assign(
        &self,
        per_robot: &[Vec<CoveredInterval>],
        target: f64,
    ) -> Result<Assignment, CoverError> {
        let (assignment, stuck) = self.assign_partial(per_robot, target)?;
        match stuck {
            None => Ok(assignment),
            Some(frontier) => Err(CoverError::AssignmentStuck {
                frontier,
                assigned: assignment.steps.len(),
            }),
        }
    }

    /// Like [`ExactAssigner::assign`], but on getting stuck returns the
    /// partial assignment built so far together with the stuck frontier.
    ///
    /// Below the coverage threshold the assignment *must* get stuck
    /// (that is the theorem); the partial prefix is exactly what the
    /// potential function is measured on in experiment E6.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::OutOfDomain`] on an invalid target and
    /// [`CoverError::InvalidSequence`] on an empty fleet.
    pub fn assign_partial(
        &self,
        per_robot: &[Vec<CoveredInterval>],
        target: f64,
    ) -> Result<(Assignment, Option<f64>), CoverError> {
        if !(target.is_finite() && target > 1.0) {
            return Err(CoverError::OutOfDomain {
                name: "target",
                value: target,
                domain: "target > 1",
            });
        }
        let k = per_robot.len();
        if k == 0 {
            return Err(CoverError::sequence("need at least one robot"));
        }

        // A(P): the q active coverage-layer ends, as a sorted vector
        // (ascending). Initially q layers all ending at 1.
        let mut layers = vec![1.0f64; self.q];
        let mut pointers = vec![0usize; k];
        let mut loads = vec![0.0f64; k];
        let mut steps: Vec<AssignedStep> = Vec::new();

        loop {
            let frontier = layers[0];
            if frontier >= target {
                return Ok((
                    Assignment {
                        k,
                        q: self.q,
                        mu: self.mu,
                        steps,
                        frontier,
                    },
                    None,
                ));
            }

            // Candidate per robot: its next *live* interval (intervals
            // whose end the frontier has already passed can never
            // contribute and are skipped — skipping deletes the round from
            // the reduced strategy, which only helps). Among candidates
            // containing the frontier, earliest-deadline-first: assign the
            // one ending soonest, preserving the longer intervals for the
            // later layers. This consumes the merged interval sequence in
            // start order, exactly like the proof's prefix construction.
            let mut best: Option<(usize, usize, f64)> = None; // (robot, idx, end)
            for (r, ivs) in per_robot.iter().enumerate() {
                while pointers[r] < ivs.len() && ivs[pointers[r]].end <= frontier {
                    pointers[r] += 1;
                }
                let j = pointers[r];
                if j < ivs.len() && ivs[j].start <= frontier {
                    debug_assert!(ivs[j].end > frontier);
                    match best {
                        Some((_, _, e)) if e <= ivs[j].end => {}
                        _ => best = Some((r, j, ivs[j].end)),
                    }
                }
            }

            let Some((r, j, end)) = best else {
                return Ok((
                    Assignment {
                        k,
                        q: self.q,
                        mu: self.mu,
                        steps,
                        frontier,
                    },
                    Some(frontier),
                ));
            };

            let load_before = loads[r];
            loads[r] += end;
            steps.push(AssignedStep {
                robot: r,
                round: per_robot[r][j].round,
                start: frontier,
                end,
                load_before,
                load_after: loads[r],
            });
            pointers[r] = j + 1;

            // replace the frontier layer with the new end, keep sorted
            layers[0] = end;
            layers.sort_by(f64::total_cmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::OrcSetting;

    fn iv(robot: usize, round: usize, start: f64, end: f64) -> CoveredInterval {
        CoveredInterval {
            robot,
            round,
            start,
            end,
        }
    }

    #[test]
    fn validation() {
        assert!(ExactAssigner::new(0, 1.0).is_err());
        assert!(ExactAssigner::new(1, 0.0).is_err());
        let a = ExactAssigner::new(1, 1.0).unwrap();
        assert!(a.assign(&[], 10.0).is_err());
        assert!(a.assign(&[vec![]], 1.0).is_err());
    }

    #[test]
    fn single_robot_single_layer_chain() {
        // intervals chaining 1 -> 3 -> 9 -> 27
        let ivs = vec![vec![
            iv(0, 0, 0.5, 3.0),
            iv(0, 1, 2.0, 9.0),
            iv(0, 2, 7.0, 27.0),
        ]];
        let a = ExactAssigner::new(1, 4.0)
            .unwrap()
            .assign(&ivs, 20.0)
            .unwrap();
        assert_eq!(a.steps.len(), 3);
        // each step starts at the previous end
        assert_eq!(a.steps[0].start, 1.0);
        assert_eq!(a.steps[1].start, 3.0);
        assert_eq!(a.steps[2].start, 9.0);
        assert!(a.frontier >= 20.0);
        // loads accumulate assigned ends
        assert_eq!(a.steps[2].load_before, 12.0);
        assert_eq!(a.steps[2].load_after, 39.0);
    }

    #[test]
    fn stuck_on_gap() {
        let ivs = vec![vec![iv(0, 0, 0.5, 2.0), iv(0, 1, 3.0, 9.0)]];
        let err = ExactAssigner::new(1, 4.0).unwrap().assign(&ivs, 8.0);
        match err {
            Err(CoverError::AssignmentStuck { frontier, assigned }) => {
                assert_eq!(frontier, 2.0);
                assert_eq!(assigned, 1);
            }
            other => panic!("expected stuck, got {other:?}"),
        }
    }

    #[test]
    fn greedy_is_earliest_deadline_first() {
        let ivs = vec![vec![iv(0, 0, 0.5, 2.0)], vec![iv(1, 0, 0.5, 5.0)]];
        let a = ExactAssigner::new(1, 4.0)
            .unwrap()
            .assign(&ivs, 4.0)
            .unwrap();
        // the tighter interval is consumed first; the long one then takes
        // the frontier from 2 to 5
        assert_eq!(a.steps.len(), 2);
        assert_eq!(a.steps[0].robot, 0);
        assert_eq!(a.steps[0].end, 2.0);
        assert_eq!(a.steps[1].robot, 1);
        assert_eq!(a.steps[1].start, 2.0);
    }

    #[test]
    fn dead_intervals_are_skipped() {
        // robot 0's second interval is already passed when its turn comes
        let ivs = vec![vec![
            iv(0, 0, 0.5, 4.0),
            iv(0, 1, 1.0, 2.0),
            iv(0, 2, 3.0, 9.0),
        ]];
        let a = ExactAssigner::new(1, 4.0)
            .unwrap()
            .assign(&ivs, 8.0)
            .unwrap();
        let rounds: Vec<usize> = a.steps.iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![0, 2]);
        // the skipped round's turning point does not enter the load
        assert_eq!(a.steps[1].load_before, 4.0);
    }

    #[test]
    fn multiplicity_two_interleaves_layers() {
        // two robots, each able to cover (1, 9] alone; q = 2 needs both
        let ivs = vec![
            vec![iv(0, 0, 0.5, 3.0), iv(0, 1, 2.0, 9.0)],
            vec![iv(1, 0, 0.5, 3.0), iv(1, 1, 2.0, 9.0)],
        ];
        let a = ExactAssigner::new(2, 4.0)
            .unwrap()
            .assign(&ivs, 8.0)
            .unwrap();
        assert_eq!(a.steps.len(), 4);
        // both robots must contribute
        assert!(a.steps.iter().any(|s| s.robot == 0));
        assert!(a.steps.iter().any(|s| s.robot == 1));
        // exactness: every step starts at the then-minimal layer
        // (frontier), which never decreases
        for w in a.steps.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn undercapacity_gets_stuck_for_multiplicity() {
        // a single robot cannot 2-cover anything
        let ivs = vec![vec![iv(0, 0, 0.5, 3.0), iv(0, 1, 2.0, 9.0)]];
        let r = ExactAssigner::new(2, 4.0).unwrap().assign(&ivs, 8.0);
        assert!(r.is_err());
    }

    #[test]
    fn exactness_against_sweep() {
        // verify that the assigned intervals cover (1, frontier] exactly q
        // times, using the coverage profile on the half-open steps.
        let turns_a: Vec<f64> = (0..16).map(|i| 1.9f64.powi(i - 4)).collect();
        let turns_b: Vec<f64> = (0..16).map(|i| 1.9f64.powi(i - 4) * 1.4).collect();
        let mu = 6.0;
        let ivs = vec![OrcSetting::covered_intervals(&turns_a, mu).unwrap(), {
            let mut v = OrcSetting::covered_intervals(&turns_b, mu).unwrap();
            for iv in &mut v {
                iv.robot = 1;
            }
            v
        }];
        let q = 2;
        let a = ExactAssigner::new(q, mu)
            .unwrap()
            .assign(&ivs, 50.0)
            .unwrap();
        // count coverage of probe points by assigned half-open intervals
        let mut x = 1.001;
        while x < a.frontier {
            let c = a.steps.iter().filter(|s| s.start < x && x <= s.end).count();
            assert_eq!(c, q, "coverage at {x} is {c}, expected {q}");
            x *= 1.07;
        }
    }

    #[test]
    fn steps_by_robot_partitions_steps() {
        let ivs = vec![
            vec![iv(0, 0, 0.5, 3.0), iv(0, 1, 2.0, 9.0)],
            vec![iv(1, 0, 0.5, 4.0), iv(1, 1, 3.0, 12.0)],
        ];
        let a = ExactAssigner::new(1, 4.0)
            .unwrap()
            .assign(&ivs, 8.0)
            .unwrap();
        let by_robot = a.steps_by_robot();
        let total: usize = by_robot.iter().map(Vec::len).sum();
        assert_eq!(total, a.steps.len());
    }
}
