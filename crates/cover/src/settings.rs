//! The paper's two covering settings.
//!
//! **Symmetric line cover (±-cover, Section 2).** A robot zig-zags on the
//! line with non-decreasing turning magnitudes `t₁ ≤ t₂ ≤ …`. A point
//! `x ≥ 1` is *covered* when both `+x` and `-x` have been visited, which
//! for `t_{i-1} < x ≤ t_i` happens at time `2(t₁+⋯+t_i) + x`; it is
//! λ-covered iff `x ≥ (1/μ)(t₁+⋯+t_i)`, `μ = (λ-1)/2`. Round `i` therefore
//! λ-covers exactly `[t″_i, t_i]` with
//! `t″_i = max{(1/μ)·Σ_{j≤i} t_j, t_{i-1}}` (Eq. (3)).
//!
//! **One-ray cover with returns (ORC, Section 3).** A robot makes rounds
//! on `R≥0`, returning to the origin in between; round `i` turns at `t_i`.
//! Ray labels are discarded — that is the relaxation. Round `i` λ-covers
//! `[t″_i, t_i]` with `t″_i = (1/μ)·Σ_{j<i} t_j` (note: sum *excluding*
//! `t_i`, since the robot reaches `x` on the way out).
//!
//! Both settings reduce fault-tolerant search to multiplicity covering:
//! a ratio-λ search strategy for `(k,f)` on the line yields an
//! `s = 2(f+1)-k`-fold ±-cover, and on `m` rays a `q = m(f+1)`-fold ORC
//! cover (Section 2 opening / Section 3).

use raysearch_sim::{Direction, LineItinerary, LineTrajectory, TourItinerary};

use crate::CoverError;

/// A λ-covered interval `[start, end]` contributed by one round of one
/// robot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoveredInterval {
    /// Which robot of the fleet contributed this interval.
    pub robot: usize,
    /// The round index within that robot's sequence (0-based).
    pub round: usize,
    /// Left endpoint `t″` (the earliest λ-covered point of the round).
    pub start: f64,
    /// Right endpoint: the round's turning point `t`.
    pub end: f64,
}

impl CoveredInterval {
    /// Whether the closed interval contains `x`.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.start <= x && x <= self.end
    }
}

fn check_mu(mu: f64) -> Result<(), CoverError> {
    if mu.is_finite() && mu > 0.0 {
        Ok(())
    } else {
        Err(CoverError::OutOfDomain {
            name: "mu",
            value: mu,
            domain: "mu > 0",
        })
    }
}

fn check_turns(turns: &[f64]) -> Result<(), CoverError> {
    for &t in turns {
        if !(t.is_finite() && t > 0.0) {
            return Err(CoverError::sequence(format!(
                "turning points must be positive finite, got {t}"
            )));
        }
    }
    Ok(())
}

/// The symmetric line-cover setting (±-cover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmSetting;

impl PmSetting {
    /// Computes the λ-covered intervals `[t″_i, t_i]` of a standardized
    /// (non-decreasing) turning sequence, skipping unfruitful rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidSequence`] if turns are not positive
    /// or not non-decreasing (standardize first — see
    /// [`standardize`](crate::standardize)), and
    /// [`CoverError::OutOfDomain`] for `mu <= 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_cover::settings::PmSetting;
    /// // doubling, mu = 4 (lambda = 9): round i covers [sums/4, t_i]
    /// let ivs = PmSetting::covered_intervals(&[1.0, 2.0, 4.0, 8.0], 4.0)?;
    /// assert_eq!(ivs.len(), 4);
    /// // round 2 (t=4): prefix sum 7, t'' = max(7/4, 2) = 2
    /// assert!((ivs[2].start - 2.0).abs() < 1e-12);
    /// assert!((ivs[2].end - 4.0).abs() < 1e-12);
    /// # Ok::<(), raysearch_cover::CoverError>(())
    /// ```
    pub fn covered_intervals(turns: &[f64], mu: f64) -> Result<Vec<CoveredInterval>, CoverError> {
        check_mu(mu)?;
        check_turns(turns)?;
        for w in turns.windows(2) {
            if w[1] < w[0] {
                return Err(CoverError::sequence(format!(
                    "±-cover intervals need non-decreasing magnitudes, got {} after {}",
                    w[1], w[0]
                )));
            }
        }
        let mut out = Vec::new();
        let mut sum = 0.0;
        let mut prev = 0.0;
        for (i, &t) in turns.iter().enumerate() {
            sum += t;
            let start = (sum / mu).max(prev);
            if start <= t {
                out.push(CoveredInterval {
                    robot: 0,
                    round: i,
                    start,
                    end: t,
                });
            }
            prev = t;
        }
        Ok(out)
    }

    /// Ground-truth ±-cover time of `x` (both `+x` and `-x` visited),
    /// computed on the compiled trajectory rather than via Eq. (3) — used
    /// to validate the interval formula and the standardization
    /// transforms on *arbitrary* (not necessarily monotone) sequences.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidSequence`] on non-positive turns or
    /// [`CoverError::OutOfDomain`] on a non-positive `x`.
    pub fn cover_time(turns: &[f64], x: f64) -> Result<Option<f64>, CoverError> {
        check_turns(turns)?;
        if !(x.is_finite() && x > 0.0) {
            return Err(CoverError::OutOfDomain {
                name: "x",
                value: x,
                domain: "x > 0",
            });
        }
        let itinerary = LineItinerary::new(Direction::Positive, turns.to_vec())
            .map_err(|e| CoverError::sequence(e.to_string()))?;
        let traj = LineTrajectory::compile(&itinerary);
        Ok(traj.both_sides_visited(x).map(|t| t.as_f64()))
    }

    /// Whether `x` is λ-covered by the sequence (ground truth).
    ///
    /// # Errors
    ///
    /// Propagates [`PmSetting::cover_time`] errors, plus
    /// [`CoverError::OutOfDomain`] for `lambda <= 1`.
    pub fn is_lambda_covered(turns: &[f64], x: f64, lambda: f64) -> Result<bool, CoverError> {
        if !(lambda.is_finite() && lambda > 1.0) {
            return Err(CoverError::OutOfDomain {
                name: "lambda",
                value: lambda,
                domain: "lambda > 1",
            });
        }
        Ok(match Self::cover_time(turns, x)? {
            Some(t) => t <= lambda * x * (1.0 + 1e-12),
            None => false,
        })
    }
}

/// The one-ray-cover-with-returns setting (ORC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrcSetting;

impl OrcSetting {
    /// Computes the λ-covered intervals `[t″_i, t_i]` of a round sequence,
    /// skipping unfruitful rounds. No monotonicity is required: each
    /// round's reach depends only on the *total* length of earlier rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidSequence`] on non-positive turns and
    /// [`CoverError::OutOfDomain`] for `mu <= 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use raysearch_cover::settings::OrcSetting;
    /// let ivs = OrcSetting::covered_intervals(&[1.0, 2.0, 4.0], 4.0)?;
    /// // t'' = (prefix sum before the round)/mu:
    /// // round 0: [0, 1]; round 1: prefix 1, t'' = 0.25; round 2: prefix 3, t'' = 0.75.
    /// assert_eq!(ivs.len(), 3);
    /// assert!((ivs[1].start - 0.25).abs() < 1e-12);
    /// assert!((ivs[2].start - 0.75).abs() < 1e-12);
    /// # Ok::<(), raysearch_cover::CoverError>(())
    /// ```
    pub fn covered_intervals(turns: &[f64], mu: f64) -> Result<Vec<CoveredInterval>, CoverError> {
        check_mu(mu)?;
        check_turns(turns)?;
        let mut out = Vec::new();
        let mut sum_before = 0.0;
        for (i, &t) in turns.iter().enumerate() {
            let start = sum_before / mu;
            if start <= t {
                out.push(CoveredInterval {
                    robot: 0,
                    round: i,
                    start,
                    end: t,
                });
            }
            sum_before += t;
        }
        Ok(out)
    }

    /// Extracts the round sequence of a tour, discarding ray labels — the
    /// ORC relaxation step of Section 3.
    pub fn turns_from_tour(tour: &TourItinerary) -> Vec<f64> {
        tour.excursions().iter().map(|e| e.turn).collect()
    }

    /// Ground-truth count of rounds that λ-cover `x` (one covering per
    /// round, per the ORC rules).
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidSequence`] on non-positive turns and
    /// [`CoverError::OutOfDomain`] on non-positive `x` or `lambda <= 1`.
    pub fn cover_count(turns: &[f64], x: f64, lambda: f64) -> Result<usize, CoverError> {
        check_turns(turns)?;
        if !(x.is_finite() && x > 0.0) {
            return Err(CoverError::OutOfDomain {
                name: "x",
                value: x,
                domain: "x > 0",
            });
        }
        if !(lambda.is_finite() && lambda > 1.0) {
            return Err(CoverError::OutOfDomain {
                name: "lambda",
                value: lambda,
                domain: "lambda > 1",
            });
        }
        let mut count = 0;
        let mut sum_before = 0.0;
        for &t in turns {
            if t >= x && 2.0 * sum_before + x <= lambda * x * (1.0 + 1e-12) {
                count += 1;
            }
            sum_before += t;
        }
        Ok(count)
    }
}

/// Tags a fleet of per-robot interval lists with robot indices and merges
/// them into one list (sorted by `start`, ties by `end`).
pub fn merge_fleet_intervals(per_robot: Vec<Vec<CoveredInterval>>) -> Vec<CoveredInterval> {
    let mut out: Vec<CoveredInterval> = per_robot
        .into_iter()
        .enumerate()
        .flat_map(|(r, ivs)| {
            ivs.into_iter().map(move |mut iv| {
                iv.robot = r;
                iv
            })
        })
        .collect();
    out.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(a.end.total_cmp(&b.end))
            .then(a.robot.cmp(&b.robot))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_intervals_match_hand_computation() {
        // doubling with mu = 4: prefix sums 1,3,7,15; t'' = max(sum/4, prev)
        let ivs = PmSetting::covered_intervals(&[1.0, 2.0, 4.0, 8.0], 4.0).unwrap();
        let expected = [(0.25, 1.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)];
        assert_eq!(ivs.len(), 4);
        for (iv, (s, e)) in ivs.iter().zip(expected) {
            assert!((iv.start - s).abs() < 1e-12, "start {} vs {s}", iv.start);
            assert!((iv.end - e).abs() < 1e-12);
        }
    }

    #[test]
    fn pm_unfruitful_rounds_are_dropped() {
        // with a tiny mu, early rounds cannot be lambda-covered in time
        let ivs = PmSetting::covered_intervals(&[1.0, 2.0, 4.0, 8.0], 1.5).unwrap();
        // round 0: sum 1, t'' = max(0.667, 0) <= 1: fruitful.
        // round 1: sum 3, t'' = max(2, 1) = 2 <= 2: fruitful (degenerate).
        // round 2: sum 7, t'' = max(4.67, 2) = 4.67 > 4: unfruitful!
        assert!(ivs.iter().all(|iv| iv.round != 2));
    }

    #[test]
    fn pm_rejects_decreasing_and_bad_values() {
        assert!(PmSetting::covered_intervals(&[2.0, 1.0], 4.0).is_err());
        assert!(PmSetting::covered_intervals(&[1.0, -1.0], 4.0).is_err());
        assert!(PmSetting::covered_intervals(&[1.0], 0.0).is_err());
    }

    #[test]
    fn pm_intervals_agree_with_trajectory_ground_truth() {
        // Eq. (3) describes the *infinite* strategy: a point in the last
        // round's interval is only ±-visited by the (not yet materialized)
        // next leg. Ground truth therefore runs on the same sequence
        // extended by its geometric continuation.
        let turns = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let extended = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        for lambda in [9.0, 7.0, 5.0] {
            let mu = (lambda - 1.0) / 2.0;
            let ivs = PmSetting::covered_intervals(&turns, mu).unwrap();
            // probe a grid of points and compare membership
            let mut x = 0.3;
            while x < 20.0 {
                let in_some = ivs.iter().any(|iv| iv.contains(x));
                let truth = PmSetting::is_lambda_covered(&extended, x, lambda).unwrap();
                assert_eq!(
                    in_some, truth,
                    "mismatch at x={x}, lambda={lambda}: intervals say {in_some}"
                );
                x += 0.073; // avoid landing exactly on breakpoints
            }
        }
    }

    #[test]
    fn orc_intervals_match_hand_computation() {
        let ivs = OrcSetting::covered_intervals(&[1.0, 2.0, 4.0], 4.0).unwrap();
        let expected = [(0.0, 1.0), (0.25, 2.0), (0.75, 4.0)];
        for (iv, (s, e)) in ivs.iter().zip(expected) {
            assert!((iv.start - s).abs() < 1e-12);
            assert!((iv.end - e).abs() < 1e-12);
        }
    }

    #[test]
    fn orc_unfruitful_detection() {
        // second round shorter than required start
        let ivs = OrcSetting::covered_intervals(&[10.0, 1.0], 2.0).unwrap();
        // round 1: t'' = 10/2 = 5 > 1: unfruitful
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].round, 0);
    }

    #[test]
    fn orc_count_matches_intervals() {
        let turns = [1.0, 2.0, 4.0, 8.0, 3.0, 16.0];
        let lambda = 6.0;
        let mu = (lambda - 1.0) / 2.0;
        let ivs = OrcSetting::covered_intervals(&turns, mu).unwrap();
        let mut x = 0.4;
        while x < 18.0 {
            let by_intervals = ivs.iter().filter(|iv| iv.contains(x)).count();
            let by_formula = OrcSetting::cover_count(&turns, x, lambda).unwrap();
            assert_eq!(by_intervals, by_formula, "mismatch at x={x}");
            x += 0.057;
        }
    }

    #[test]
    fn merge_tags_robots_and_sorts() {
        let a = OrcSetting::covered_intervals(&[1.0, 4.0], 2.0).unwrap();
        let b = OrcSetting::covered_intervals(&[2.0, 8.0], 2.0).unwrap();
        let merged = merge_fleet_intervals(vec![a, b]);
        assert_eq!(merged.len(), 4);
        assert!(merged.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(merged.iter().any(|iv| iv.robot == 1));
    }

    #[test]
    fn turns_from_tour_strips_labels() {
        use raysearch_sim::{Excursion, RayId};
        let m = 3;
        let tour = TourItinerary::new(
            m,
            vec![
                Excursion::new(RayId::new(0, m).unwrap(), 1.5).unwrap(),
                Excursion::new(RayId::new(2, m).unwrap(), 3.0).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(OrcSetting::turns_from_tour(&tour), vec![1.5, 3.0]);
    }
}
