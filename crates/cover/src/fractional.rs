//! The fractional relaxation of Eq. (11) and its rational reduction.
//!
//! *Fractional one-ray retrieval with returns*: robots of total weight 1
//! must cover every target with robots of total weight `η ≥ 1`; the
//! optimal ratio is `C(η) = 2·η^η/(η−1)^(η−1) + 1`. The paper proves this
//! by sandwiching `η` between rational approximations `q/k` and invoking
//! the integral ORC bound (Eq. (10)) on both sides:
//!
//! * **upper**: strategies for `q/k ↓ η` split into `k` robots of weight
//!   `1/k`, giving fractional covers of weight `q/k ≥ η`;
//! * **lower**: a fractional strategy with weights `w₁,…,w_n` is rounded
//!   to integers `k_i/q ∈ [w_i/η, w_i/η + δ]`, turning a fractional
//!   `η`-cover into an integral `q`-fold cover by `k = Σk_i` robots with
//!   `q/k ≥ η − ε`.
//!
//! This module provides the approximation sequences and the weight
//! rounding so experiment E8 can display the convergence from both sides.

use raysearch_bounds::{c_fractional, c_orc, BoundsError};

use crate::CoverError;

/// One rational approximation step of the convergence series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RationalStep {
    /// Denominator: the number of robots `k`.
    pub k: u32,
    /// Numerator: the covering multiplicity `q`.
    pub q: u32,
    /// The rational `q/k` approximating `η`.
    pub ratio: f64,
    /// The integral ORC value `C(k, q) = Λ(q/k)`.
    pub c_value: f64,
}

fn check_eta(eta: f64) -> Result<(), CoverError> {
    if eta.is_finite() && eta > 1.0 {
        Ok(())
    } else {
        Err(CoverError::OutOfDomain {
            name: "eta",
            value: eta,
            domain: "eta > 1",
        })
    }
}

fn bounds_to_cover(e: BoundsError) -> CoverError {
    CoverError::InvalidSequence {
        reason: format!("bounds computation failed: {e}"),
    }
}

/// Approximations `q/k ≥ η` with `q = ⌈ηk⌉`, for `k = 1..=max_k`.
///
/// The `c_value`s decrease monotonically to `C(η)` — the "≤" half of
/// Eq. (11).
///
/// # Errors
///
/// Returns [`CoverError::OutOfDomain`] for `eta ≤ 1` or `max_k = 0`.
///
/// # Example
///
/// ```
/// use raysearch_cover::fractional::upper_approximations;
/// let steps = upper_approximations(1.75, 16)?;
/// // every step dominates eta and the series approaches C(1.75)
/// assert!(steps.iter().all(|s| s.ratio >= 1.75));
/// let last = steps.last().unwrap();
/// assert!((last.ratio - 1.75).abs() < 0.1);
/// # Ok::<(), raysearch_cover::CoverError>(())
/// ```
pub fn upper_approximations(eta: f64, max_k: u32) -> Result<Vec<RationalStep>, CoverError> {
    check_eta(eta)?;
    if max_k == 0 {
        return Err(CoverError::OutOfDomain {
            name: "max_k",
            value: 0.0,
            domain: "max_k >= 1",
        });
    }
    let mut out = Vec::new();
    for k in 1..=max_k {
        let q = (eta * f64::from(k)).ceil() as u32;
        if q <= k {
            continue; // can only happen from rounding pathologies
        }
        out.push(RationalStep {
            k,
            q,
            ratio: f64::from(q) / f64::from(k),
            c_value: c_orc(k, q).map_err(bounds_to_cover)?,
        });
    }
    Ok(out)
}

/// Approximations `q/k ≤ η` with `q = ⌊ηk⌋` (skipping `q ≤ k`), for
/// `k = 1..=max_k`.
///
/// The `c_value`s increase to `C(η)` — the "≥" half of Eq. (11).
///
/// # Errors
///
/// Returns [`CoverError::OutOfDomain`] for `eta ≤ 1` or `max_k = 0`.
pub fn lower_approximations(eta: f64, max_k: u32) -> Result<Vec<RationalStep>, CoverError> {
    check_eta(eta)?;
    if max_k == 0 {
        return Err(CoverError::OutOfDomain {
            name: "max_k",
            value: 0.0,
            domain: "max_k >= 1",
        });
    }
    let mut out = Vec::new();
    for k in 1..=max_k {
        let q = (eta * f64::from(k)).floor() as u32;
        if q <= k {
            continue;
        }
        out.push(RationalStep {
            k,
            q,
            ratio: f64::from(q) / f64::from(k),
            c_value: c_orc(k, q).map_err(bounds_to_cover)?,
        });
    }
    Ok(out)
}

/// The proof's weight rounding: given fractional robot weights `w_i`
/// (summing to 1) and a denominator `q`, returns integers
/// `k_i = ⌈q·w_i/η⌉`, so that `w_i/η ≤ k_i/q < w_i/η + 1/q`.
///
/// The induced integral instance has `k = Σ k_i` robots and multiplicity
/// `q`, with `q/k ≥ η/(1 + nη/q) → η` as `q → ∞` (where `n` is the number
/// of distinct weights).
///
/// # Errors
///
/// Returns [`CoverError::OutOfDomain`] if the weights do not sum to 1
/// (tolerance `1e-9`), any weight is non-positive, `eta ≤ 1`, or `q = 0`.
///
/// # Example
///
/// ```
/// use raysearch_cover::fractional::split_weights;
/// let ks = split_weights(&[0.5, 0.3, 0.2], 2.0, 100)?;
/// assert_eq!(ks, vec![25, 15, 10]);
/// # Ok::<(), raysearch_cover::CoverError>(())
/// ```
pub fn split_weights(weights: &[f64], eta: f64, q: u32) -> Result<Vec<u32>, CoverError> {
    check_eta(eta)?;
    if q == 0 {
        return Err(CoverError::OutOfDomain {
            name: "q",
            value: 0.0,
            domain: "q >= 1",
        });
    }
    let sum: f64 = weights.iter().sum();
    if (sum - 1.0).abs() > 1e-9 {
        return Err(CoverError::OutOfDomain {
            name: "sum(weights)",
            value: sum,
            domain: "weights must sum to 1",
        });
    }
    weights
        .iter()
        .map(|&w| {
            if !(w.is_finite() && w > 0.0) {
                return Err(CoverError::OutOfDomain {
                    name: "weight",
                    value: w,
                    domain: "w > 0",
                });
            }
            Ok((f64::from(q) * w / eta).ceil() as u32)
        })
        .collect()
}

/// Convergence summary for experiment E8: the sandwich
/// `lower ≤ C(η) ≤ upper` at increasing `k`, together with the closed
/// form.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FractionalConvergence {
    /// The weight requirement `η`.
    pub eta: f64,
    /// The closed-form `C(η)`.
    pub closed_form: f64,
    /// Lower approximations (increasing in `k`).
    pub lower: Vec<RationalStep>,
    /// Upper approximations (increasing in `k`).
    pub upper: Vec<RationalStep>,
}

/// Builds the two-sided convergence table for `η`.
///
/// # Errors
///
/// Propagates approximation errors.
pub fn convergence(eta: f64, max_k: u32) -> Result<FractionalConvergence, CoverError> {
    Ok(FractionalConvergence {
        eta,
        closed_form: c_fractional(eta).map_err(bounds_to_cover)?,
        lower: lower_approximations(eta, max_k)?,
        upper: upper_approximations(eta, max_k)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_checks() {
        assert!(upper_approximations(1.0, 5).is_err());
        assert!(upper_approximations(2.0, 0).is_err());
        assert!(lower_approximations(0.9, 5).is_err());
        assert!(split_weights(&[1.0], 1.0, 10).is_err());
        assert!(split_weights(&[0.5, 0.4], 2.0, 10).is_err()); // sums to 0.9
        assert!(split_weights(&[1.5, -0.5], 2.0, 10).is_err());
        assert!(split_weights(&[1.0], 2.0, 0).is_err());
    }

    #[test]
    fn upper_series_dominates_and_converges() {
        let eta = 1.6180339887;
        let c = c_fractional(eta).unwrap();
        let steps = upper_approximations(eta, 64).unwrap();
        for s in &steps {
            assert!(s.ratio >= eta - 1e-12);
            assert!(
                s.c_value >= c - 1e-9,
                "upper approx {} below C(eta) {c}",
                s.c_value
            );
        }
        let last = steps.last().unwrap();
        assert!(
            (last.c_value - c).abs() < 0.05,
            "not converged: {}",
            last.c_value
        );
    }

    #[test]
    fn lower_series_is_dominated_and_converges() {
        let eta = 2.414213562;
        let c = c_fractional(eta).unwrap();
        let steps = lower_approximations(eta, 64).unwrap();
        assert!(!steps.is_empty());
        for s in &steps {
            assert!(s.ratio <= eta + 1e-12);
            assert!(
                s.c_value <= c + 1e-9,
                "lower approx {} above C(eta) {c}",
                s.c_value
            );
        }
        let last = steps.last().unwrap();
        assert!(
            (last.c_value - c).abs() < 0.05,
            "not converged: {}",
            last.c_value
        );
    }

    #[test]
    fn rational_eta_hits_exactly() {
        // eta = 3/2: at k even, q/k = eta exactly, C matches closed form.
        let eta = 1.5;
        let steps = upper_approximations(eta, 8).unwrap();
        let exact: Vec<&RationalStep> = steps
            .iter()
            .filter(|s| (s.ratio - eta).abs() < 1e-12)
            .collect();
        assert!(!exact.is_empty());
        let c = c_fractional(eta).unwrap();
        for s in exact {
            assert!((s.c_value - c).abs() < 1e-9);
        }
    }

    #[test]
    fn split_weights_respects_rounding_window() {
        let weights = [0.4, 0.35, 0.25];
        let (eta, q) = (1.8, 1000u32);
        let ks = split_weights(&weights, eta, q).unwrap();
        for (&w, &ki) in weights.iter().zip(&ks) {
            let lo = w / eta;
            let hi = w / eta + 1.0 / f64::from(q);
            let frac = f64::from(ki) / f64::from(q);
            assert!(frac >= lo - 1e-12 && frac <= hi + 1e-12);
        }
        // the induced instance approaches q/k = eta from above as q grows
        let k: u32 = ks.iter().sum();
        let ratio = f64::from(q) / f64::from(k);
        assert!(ratio <= eta + 1e-9);
        assert!(ratio >= eta - 0.05);
    }

    #[test]
    fn convergence_table_is_consistent() {
        let t = convergence(2.0, 32).unwrap();
        assert!((t.closed_form - 9.0).abs() < 1e-12); // C(2) = 9
        for s in &t.lower {
            assert!(s.c_value <= t.closed_form + 1e-9);
        }
        for s in &t.upper {
            assert!(s.c_value >= t.closed_form - 1e-9);
        }
    }
}
