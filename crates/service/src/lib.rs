//! Serving layer for the `raysearch` reproduction: a long-running,
//! caching evaluation server (`raysearchd`) over plain `std::net`.
//!
//! Every answer the workspace can compute — `Λ(q/k)` closed forms from
//! Kupavskii–Welzl's Theorem 1/6, exact competitive-ratio evaluations of
//! the optimal strategies, tightness verdicts, whole campaign runs —
//! previously required a one-shot `tablegen` invocation recomputing from
//! scratch. This crate memoizes them behind a stable JSON-over-HTTP API:
//!
//! * [`http`] — a hand-rolled, dependency-free HTTP/1.1 layer (the
//!   environment has no crates.io access: no hyper, no tiny_http);
//! * [`cache`] — a sharded LRU memo cache with hit/miss/eviction
//!   counters, keyed by canonicalized instance parameters
//!   ([`raysearch_core::canon`]);
//! * [`api`] — the endpoints (`/closed_form`, `/evaluate`, `/verdict`,
//!   `/campaign`, `/healthz`, `/stats`) over the `raysearch-core`
//!   evaluators and the E1–E10 campaign registry;
//! * [`server`] — a fixed HTTP worker pool behind a bounded accept
//!   queue, with load shedding (503 + `Retry-After`), cooperative
//!   shutdown, and a separate compute-worker pool draining the job
//!   queue;
//! * [`jobs`] — the async job tier: a bounded priority-by-cost-class
//!   [`jobs::JobQueue`] with per-client admission, a sharded bounded
//!   [`jobs::JobStore`] of job records with oldest-done eviction, and
//!   the node-tagged job-id scheme behind `POST /jobs`,
//!   `GET /jobs/{id}` (long-poll via `?wait_micros=`) and
//!   `DELETE /jobs/{id}`;
//! * [`client`] / [`probe`] / [`load`] — the self-client: CI smoke
//!   probing (`raysearchd --probe`, `raysearch-router --probe`) and the
//!   hot-vs-cold load harness (`raysearchd --bench`).
//!
//! The scale-out tier shards requests across many `raysearchd`
//! processes and regression-tests the whole fleet at the byte level:
//!
//! * [`route`] — the consistent-hash router (`raysearch-router`):
//!   rendezvous hashing over canonical routing keys, health checks,
//!   failover, aggregated `/stats`;
//! * [`backends`] — child-process backend fleets behind port-file
//!   handshakes (spawn / kill / respawn on fresh ephemeral ports);
//! * [`tape`] — the record/replay tape format with normalized response
//!   digests;
//! * [`replay`] — deterministic tape replay (`replaygen`): concurrent
//!   re-issue in tick order, byte-identity verification, counter
//!   fingerprints that are concurrency-invariant by construction;
//! * [`telemetry`] — the observability layer: per-request span timing
//!   into per-endpoint latency histograms, `x-raysearch-trace`
//!   propagation, a bounded slow-request log (`GET /debug/slow`), the
//!   Prometheus text renderer behind `GET /metrics` on both tiers, and
//!   hierarchical span traces: every measured span also lands in a
//!   per-request tree ([`raysearch_core::trace`]), sampled traces are
//!   served from `GET /debug/trace/{id}`, and the router assembles the
//!   cross-tier view by stitching the backend's tree under its own
//!   `backend_wait` span (exportable as a Chrome trace-event timeline
//!   via `replaygen --export-trace`).
//!
//! # Example: an in-process server round trip
//!
//! ```
//! use raysearch_service::client::fetch_json;
//! use raysearch_service::server::{Server, ServerConfig};
//! use serde_json::Value;
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let handle = server.spawn();
//! let addr = handle.addr().to_string();
//!
//! let (status, doc) = fetch_json(&addr, "GET", "/closed_form?k=1&f=0", None).unwrap();
//! assert_eq!(status, 200);
//! // the classic cow path: A(1, 0) = 9
//! let a = doc.get("result").and_then(|r| r.get("a")).and_then(Value::as_f64);
//! assert_eq!(a, Some(9.0));
//!
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod backends;
pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;
pub mod load;
pub mod probe;
pub mod replay;
pub mod route;
pub mod server;
pub mod tape;
pub mod telemetry;

pub use api::{routing_key, MemoKey, ServiceState};
pub use cache::{CacheStats, ShardedLru};
pub use route::{rendezvous_rank, BackendSpec, RouterState};
pub use server::{Handler, Server, ServerConfig, ServerHandle};
pub use tape::{Tape, TapeEntry, TapeRecorder};
pub use telemetry::{trace_index_json, trace_json, Span, SpanSet, Telemetry, TRACE_HEADER};
