//! A sharded LRU memo cache with hit/miss/eviction counters.
//!
//! The serving layer's whole value proposition is that an evaluation is
//! computed once and then served from memory. This module provides the
//! memo structure: a fixed number of independently locked shards
//! (`parking_lot` mutexes), each holding a strict least-recently-used
//! map with a per-shard capacity. A key hashes to exactly one shard, so
//! concurrent requests for different keys rarely contend, and a
//! concurrent request for the *same* key blocks until the first
//! computation finishes and then reuses it (request coalescing — the
//! expensive evaluator runs once per key, never twice).
//!
//! Counters (hits, misses, evictions) are global atomics surfaced by the
//! `/stats` endpoint, which is also how the integration tests prove that
//! repeated identical requests are served from cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// A snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries currently resident, summed over shards.
    pub entries: usize,
    /// Total capacity, summed over shards.
    pub capacity: usize,
    /// Number of shards.
    pub shards: usize,
}

/// One LRU shard: a map plus a logical clock ordering recency.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    tick: u64,
    /// This shard's own entry budget; shard budgets sum exactly to the
    /// cache's requested total capacity.
    capacity: usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn touch(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Inserts `value`, evicting the least-recently-used entry if the
    /// shard is at capacity. A zero-capacity shard (possible when the
    /// total capacity is below the shard count) retains nothing.
    /// Returns `(evictions, net entry growth)`.
    fn insert(&mut self, key: K, value: V) -> (u64, usize) {
        if self.capacity == 0 {
            return (0, 0);
        }
        self.tick += 1;
        let mut evicted = 0;
        let is_new = !self.map.contains_key(&key);
        if is_new && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
        (evicted, usize::from(is_new) - evicted as usize)
    }
}

/// A sharded, strictly-LRU memo cache.
///
/// # Example
///
/// ```
/// use raysearch_service::cache::ShardedLru;
///
/// let cache: ShardedLru<u32, String> = ShardedLru::new(128, 8);
/// let v = cache.get_or_insert_with(7, || "computed".to_owned());
/// assert_eq!(v, "computed");
/// assert_eq!(cache.stats().misses, 1);
/// let again = cache.get_or_insert_with(7, || unreachable!("cached"));
/// assert_eq!(again, "computed");
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Resident entries, maintained atomically so [`Self::len`] (and
    /// the `/stats` endpoint built on it) never waits on a shard lock —
    /// in particular not on one held across a slow cold computation.
    entries: AtomicUsize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache of *exactly* `capacity` total entries split over
    /// `shards` shards: each shard gets `capacity / shards`, with the
    /// remainder spread one entry each over the first shards — so the
    /// budget an operator configures is the budget that is enforced
    /// (and reported by [`Self::stats`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "need a nonzero capacity");
        let base = capacity / shards;
        let remainder = capacity % shards;
        ShardedLru {
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                        capacity: base + usize::from(i < remainder),
                    })
                })
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
        }
    }

    /// The shard a key belongs to — stable for the cache's lifetime, so
    /// logically equal keys (see `raysearch_core::canon`) always meet in
    /// the same shard.
    pub fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Looks up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shards[self.shard_index(key)].lock();
        match shard.touch(key) {
            Some(v) => {
                let v = v.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value` unconditionally, evicting the shard's LRU
    /// entry if it is full. Does not count a hit or a miss.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shards[self.shard_index(&key)].lock();
        let (evicted, grew) = shard.insert(key, value);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.entries.fetch_add(grew, Ordering::Relaxed);
    }

    /// Returns the cached value for `key`, computing and inserting it on
    /// a miss. The shard stays locked across `compute`, so concurrent
    /// requests for the same key coalesce into one computation.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        match self.try_get_or_insert_with(key, || Ok::<V, std::convert::Infallible>(compute())) {
            Ok((v, _)) => v,
            Err(e) => match e {},
        }
    }

    /// Fallible [`Self::get_or_insert_with`]: on a miss, `compute` runs
    /// under the shard lock (same-key requests coalesce into one
    /// computation); an `Err` is propagated and *nothing* is cached, so
    /// a failed computation cannot poison the entry. Returns the value
    /// and whether it was a hit.
    ///
    /// Tradeoff: while `compute` runs, *other* keys hashing to the same
    /// shard also wait. With bounded per-request compute (the API layer
    /// enforces instance ceilings) and many shards this stall is
    /// bounded and buys exactly-once computation per key; counters and
    /// [`Self::len`] stay lock-free throughout.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error on a miss.
    pub fn try_get_or_insert_with<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let mut shard = self.shards[self.shard_index(&key)].lock();
        if let Some(v) = shard.touch(&key) {
            let v = v.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((v, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute()?;
        let (evicted, grew) = shard.insert(key, value.clone());
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.entries.fetch_add(grew, Ordering::Relaxed);
        Ok((value, false))
    }

    /// Number of resident entries across all shards. Lock-free: reads
    /// the maintained atomic, so it cannot block behind an in-flight
    /// computation holding a shard lock.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (hit/miss/eviction counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dropped = shard.map.len();
            shard.map.clear();
            self.entries.fetch_sub(dropped, Ordering::Relaxed);
        }
    }

    /// A consistent-enough snapshot of the counters (all atomics — no
    /// shard lock is taken, so stats stay responsive while a cold
    /// computation is in flight).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
            shards: self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-shard cache observes strict LRU globally.
    fn single(capacity: usize) -> ShardedLru<u64, u64> {
        ShardedLru::new(capacity, 1)
    }

    #[test]
    fn capacity_is_enforced() {
        let cache = single(3);
        for k in 0..10 {
            cache.insert(k, k * 100);
        }
        assert_eq!(cache.len(), 3);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 7);
        assert_eq!(stats.capacity, 3);
        // the three most recent survive
        assert_eq!(cache.get(&9), Some(900));
        assert_eq!(cache.get(&8), Some(800));
        assert_eq!(cache.get(&7), Some(700));
        assert_eq!(cache.get(&0), None);
    }

    #[test]
    fn eviction_follows_recency_not_insertion() {
        let cache = single(3);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.insert(3, 3);
        // touch 1 so 2 becomes the LRU entry
        assert_eq!(cache.get(&1), Some(1));
        cache.insert(4, 4);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(&2), None, "2 was least recently used");
        assert_eq!(cache.get(&1), Some(1));
        assert_eq!(cache.get(&3), Some(3));
        assert_eq!(cache.get(&4), Some(4));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = single(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // overwrite, not displacement
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn counters_are_accurate() {
        let cache = single(8);
        assert_eq!(cache.get(&1), None); // miss
        let v = cache.get_or_insert_with(1, || 100); // miss + insert
        assert_eq!(v, 100);
        let v = cache.get_or_insert_with(1, || panic!("must be cached")); // hit
        assert_eq!(v, 100);
        assert_eq!(cache.get(&1), Some(100)); // hit
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 2, 0));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = single(4);
        cache.get_or_insert_with(1, || 1);
        cache.get_or_insert_with(1, || 1);
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.get(&1), None, "cleared entries are gone");
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(64, 8);
        assert_eq!(cache.stats().shards, 8);
        // a key's shard is stable call to call
        for k in 0..100 {
            assert_eq!(cache.shard_index(&k), cache.shard_index(&k));
        }
        // and the whole population spreads over more than one shard
        let mut seen = std::collections::HashSet::new();
        for k in 0..100u64 {
            seen.insert(cache.shard_index(&k));
        }
        assert!(seen.len() > 1, "all keys landed in one shard");
    }

    #[test]
    fn parallel_hammering_keeps_counters_consistent() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(1024, 8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        let key = (t * 1000 + i) % 128;
                        let got = cache.get_or_insert_with(key, || key * 2);
                        assert_eq!(got, key * 2);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4000);
        assert_eq!(stats.entries, 128);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn total_capacity_is_exactly_as_requested() {
        // 17 over 16 shards must not round up to 32
        let cache: ShardedLru<u64, u64> = ShardedLru::new(17, 16);
        assert_eq!(cache.stats().capacity, 17);
        for k in 0..1000 {
            cache.insert(k, k);
        }
        assert!(
            cache.len() <= 17,
            "cache holds {} entries over the budget of 17",
            cache.len()
        );
        // capacity below the shard count: zero-capacity shards retain
        // nothing, and the total budget still holds
        let tiny: ShardedLru<u64, u64> = ShardedLru::new(2, 8);
        assert_eq!(tiny.stats().capacity, 2);
        for k in 0..100 {
            tiny.insert(k, k);
        }
        assert!(tiny.len() <= 2, "tiny cache exceeded its budget");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedLru::<u64, u64>::new(8, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_panics() {
        let _ = ShardedLru::<u64, u64>::new(0, 2);
    }
}
