//! The load-test harness behind `raysearchd --bench`.
//!
//! Measures requests/sec on a fixed instance mix twice: once against a
//! cold cache (every request computes) and once hot (every request is a
//! memo hit), reporting both throughputs and their ratio. The mix
//! cycles through searchable `(m, k, f)` instances of varying cost, so
//! the cold number is an honest "compute on demand" figure rather than
//! a best case.
//!
//! Both phases run at the *same* client concurrency over persistent
//! keep-alive connections, so the reported `speedup` isolates cache
//! effectiveness — it is not inflated by concurrency scaling or TCP
//! handshakes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::client::HttpClient;
use raysearch_core::telemetry::LatencyHistogram;

/// Evaluation horizon for the mix's *small-fleet* `/evaluate` requests
/// (fixed so hot-phase requests are exact repeats of cold-phase ones).
pub const BENCH_HORIZON: f64 = 1e6;

/// Evaluation horizon for the mix's *large-fleet* requests. Cost grows
/// with `k · log(horizon)` turning points, so big fleets at deep
/// horizons are where memoization pays: milliseconds of exact
/// evaluation behind a few hundred bytes of cached JSON.
pub const BENCH_DEEP_HORIZON: f64 = 1e12;

/// The request mix every phase cycles through: exact evaluations over
/// searchable `(m, k, f)` instances spanning the line, few-ray, faulty
/// and *large-fleet* regimes, tightness verdicts, and one small
/// campaign run — the cacheable traffic a serving deployment would
/// actually see.
pub fn request_mix() -> Vec<(&'static str, String)> {
    let evaluate = |m: u32, k: u32, f: u32, horizon: f64| {
        (
            "/evaluate",
            format!("{{\"m\":{m},\"k\":{k},\"f\":{f},\"horizon\":{horizon}}}"),
        )
    };
    let mut mix: Vec<(&'static str, String)> = [
        (2u32, 1u32, 0u32),
        (2, 3, 1),
        (2, 5, 2),
        (3, 2, 0),
        (3, 4, 1),
        (3, 5, 1),
        (4, 3, 0),
        (5, 4, 0),
    ]
    .iter()
    .map(|&(m, k, f)| evaluate(m, k, f, BENCH_HORIZON))
    .collect();
    // q = k + 1 fleets: the slowest-growing bases, hence the most
    // turning points within the horizon — the expensive tail of
    // traffic. The log-domain pipeline keeps these finite well past the
    // old k ≈ 139 linear-overflow wall, so the mix now reaches into the
    // formerly unservable large-fleet regime.
    for (m, k, f) in [
        (2, 79, 39),
        (2, 99, 49),
        (2, 129, 64),
        (2, 149, 74),
        (2, 199, 99),
        (2, 257, 128),
        (3, 61, 20),
        (4, 62, 15),
    ] {
        mix.push(evaluate(m, k, f, BENCH_DEEP_HORIZON));
    }
    for (m, k, f) in [(2, 3, 1), (3, 2, 0)] {
        mix.push((
            "/verdict",
            format!("{{\"m\":{m},\"k\":{k},\"f\":{f},\"horizon\":1e4,\"eps\":0.01}}"),
        ));
    }
    mix.push(("/campaign", "{\"id\":\"e2\",\"max_k\":8}".to_owned()));
    mix
}

/// Load-generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total requests in the hot phase.
    pub requests: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
}

/// Client-observed latency percentiles for one endpoint of the mix,
/// computed from the same log-bucketed histogram the servers use for
/// their `/metrics` tier (so bench numbers and live metrics agree on
/// bucketing semantics: `p ≤ reported < 2p`, max is exact).
#[derive(Debug, Clone, serde::Serialize)]
pub struct EndpointLatency {
    /// Endpoint label, the request path without its leading slash.
    pub endpoint: String,
    /// Requests timed into this histogram (cold + hot phases).
    pub requests: u64,
    /// 50th-percentile round-trip latency, microseconds.
    pub p50_micros: u64,
    /// 90th-percentile round-trip latency, microseconds.
    pub p90_micros: u64,
    /// 95th-percentile round-trip latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_micros: u64,
    /// Exact slowest round trip, microseconds.
    pub max_micros: u64,
}

/// The measured outcome of one load run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// Requests issued against the cold cache (one per mix instance).
    pub cold_requests: usize,
    /// Wall-clock microseconds of the cold phase.
    pub cold_micros: u64,
    /// Cold-cache throughput, requests per second.
    pub cold_rps: f64,
    /// Requests issued against the hot cache.
    pub hot_requests: usize,
    /// Wall-clock microseconds of the hot phase.
    pub hot_micros: u64,
    /// Hot-cache throughput, requests per second.
    pub hot_rps: f64,
    /// `hot_rps / cold_rps`.
    pub speedup: f64,
    /// Responses that were not `200` with a well-formed body.
    pub errors: usize,
    /// Client-side latency percentiles per endpoint, over both phases.
    pub endpoints: Vec<EndpointLatency>,
}

/// One benched request; returns whether it succeeded. Validation is a
/// cheap substring check, not a full JSON parse — the harness measures
/// the server, not the client's parser.
fn one_request(client: &mut HttpClient, path: &str, body: &str) -> bool {
    match client.request("POST", path, Some(body)) {
        Ok((200, text)) => text.contains("\"result\""),
        _ => false,
    }
}

/// Runs the load test against the server at `addr`.
///
/// The server's memo cache must start empty for the cold numbers to
/// mean anything; `raysearchd --bench` guarantees that by spawning a
/// fresh in-process server.
///
/// # Errors
///
/// Returns a message if clients cannot connect or every request of a
/// phase fails.
pub fn run_load(addr: &str, cfg: LoadConfig) -> Result<LoadReport, String> {
    let concurrency = cfg.concurrency.max(1);
    let requests = cfg.requests.max(concurrency);
    let mix = request_mix();

    // per-endpoint latency histograms, shared lock-free across workers;
    // `path_of[i]` maps mix entry i to its endpoint's histogram
    let mut paths: Vec<&'static str> = Vec::new();
    let path_of: Vec<usize> = mix
        .iter()
        .map(|(path, _)| match paths.iter().position(|p| p == path) {
            Some(idx) => idx,
            None => {
                paths.push(path);
                paths.len() - 1
            }
        })
        .collect();
    let hists: Vec<LatencyHistogram> = paths.iter().map(|_| LatencyHistogram::new()).collect();

    // both phases share this shape: `concurrency` clients, each with a
    // persistent connection, issuing its share of the phase's requests
    let run_phase =
        |per_worker: &dyn Fn(usize) -> Vec<usize>| -> Result<(usize, u64, usize), String> {
            let errors = AtomicUsize::new(0);
            let issued = AtomicUsize::new(0);
            let started = Instant::now();
            std::thread::scope(|scope| -> Result<(), String> {
                let mut joins = Vec::new();
                for worker in 0..concurrency {
                    let errors = &errors;
                    let issued = &issued;
                    let mix = &mix;
                    let path_of = &path_of;
                    let hists = &hists;
                    let indices = per_worker(worker);
                    joins.push(scope.spawn(move || -> Result<(), String> {
                        if indices.is_empty() {
                            return Ok(());
                        }
                        let mut client = HttpClient::connect(addr)
                            .map_err(|e| format!("connect {addr}: {e}"))?;
                        for idx in indices {
                            let (path, body) = &mix[idx];
                            let sent = Instant::now();
                            let ok = one_request(&mut client, path, body);
                            hists[path_of[idx]].record(sent.elapsed().as_micros() as u64);
                            if !ok {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            issued.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }));
                }
                for join in joins {
                    join.join()
                        .map_err(|_| "bench client panicked".to_owned())??;
                }
                Ok(())
            })?;
            Ok((
                issued.load(Ordering::Relaxed),
                started.elapsed().as_micros() as u64,
                errors.load(Ordering::Relaxed),
            ))
        };

    // --- cold phase: each distinct request once, all misses ---
    let mix_len = mix.len();
    let (cold_requests, cold_micros, cold_errors) =
        run_phase(&|worker| (worker..mix_len).step_by(concurrency).collect())?;
    if cold_errors == cold_requests {
        return Err(format!("every cold request against {addr} failed"));
    }

    // --- hot phase: the same mix round-robin, all hits ---
    let (hot_requests, hot_micros, hot_errors) = run_phase(&|worker| {
        let share = requests / concurrency + usize::from(worker < requests % concurrency);
        (0..share).map(|i| (worker + i) % mix_len).collect()
    })?;

    let rps = |n: usize, micros: u64| {
        if micros == 0 {
            f64::INFINITY
        } else {
            n as f64 / (micros as f64 / 1e6)
        }
    };
    let cold_rps = rps(cold_requests, cold_micros);
    let hot_rps = rps(hot_requests, hot_micros);
    let endpoints = paths
        .iter()
        .zip(&hists)
        .filter(|(_, hist)| hist.count() > 0)
        .map(|(path, hist)| {
            let snap = hist.snapshot();
            EndpointLatency {
                endpoint: path.trim_start_matches('/').to_owned(),
                requests: snap.count,
                p50_micros: snap.percentile(50),
                p90_micros: snap.percentile(90),
                p95_micros: snap.percentile(95),
                p99_micros: snap.percentile(99),
                max_micros: snap.max,
            }
        })
        .collect();
    Ok(LoadReport {
        cold_requests,
        cold_micros,
        cold_rps,
        hot_requests,
        hot_micros,
        hot_rps,
        speedup: hot_rps / cold_rps,
        errors: cold_errors + hot_errors,
        endpoints,
    })
}
