//! Child-process backend fleets: spawning, killing and respawning
//! `raysearchd` processes behind a port-file handshake.
//!
//! Each backend binds an ephemeral port and writes its bound address
//! to a per-backend port file (`raysearchd --port-file`). The router
//! reads addresses *through* those files on every health pass, so a
//! backend respawned on a new port — SIGKILL leaves the old port in
//! `TIME_WAIT`, so same-port rebinding is exactly the flaky thing this
//! design avoids — is rediscovered under its stable logical id without
//! any reconfiguration, and rendezvous routing never reshuffles.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::route::BackendSpec;

/// Locates the `raysearchd` binary for spawning backends: the
/// `RAYSEARCHD_BIN` environment variable if set, else a sibling of the
/// current executable (which is where cargo puts workspace binaries).
///
/// # Errors
///
/// Returns a message naming both strategies when neither works.
pub fn raysearchd_bin() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("RAYSEARCHD_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!("RAYSEARCHD_BIN={} does not exist", path.display()));
    }
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("raysearchd")))
        .filter(|p| p.is_file());
    sibling.ok_or_else(|| {
        "cannot find the raysearchd binary: set RAYSEARCHD_BIN or build the raysearchd bin target"
            .to_owned()
    })
}

/// One spawned backend process.
#[derive(Debug)]
struct ChildBackend {
    id: String,
    port_file: PathBuf,
    child: Option<Child>,
}

/// A fleet of `raysearchd` child processes on ephemeral ports.
///
/// Dropping the fleet kills and reaps every child.
#[derive(Debug)]
pub struct BackendFleet {
    bin: PathBuf,
    extra_args: Vec<String>,
    children: Vec<ChildBackend>,
}

impl BackendFleet {
    /// Spawns `n` backends using the `raysearchd` binary at `bin`,
    /// parking their port files in `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns a message on directory or spawn failure (already-spawned
    /// children are cleaned up by `Drop`).
    pub fn spawn(bin: &Path, n: usize, dir: &Path) -> Result<BackendFleet, String> {
        BackendFleet::spawn_with_args(bin, n, dir, &[])
    }

    /// Like [`BackendFleet::spawn`] but passes `extra_args` to every
    /// child (and to [respawns](BackendFleet::respawn)) — how the
    /// router CLI forwards `--slow-log-micros` / `--trace-sample` to
    /// the backends it owns.
    ///
    /// # Errors
    ///
    /// Returns a message on directory or spawn failure (already-spawned
    /// children are cleaned up by `Drop`).
    pub fn spawn_with_args(
        bin: &Path,
        n: usize,
        dir: &Path,
        extra_args: &[String],
    ) -> Result<BackendFleet, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let mut fleet = BackendFleet {
            bin: bin.to_owned(),
            extra_args: extra_args.to_vec(),
            children: Vec::with_capacity(n),
        };
        for i in 0..n {
            let id = format!("backend-{i}");
            let port_file = dir.join(format!("{id}.port"));
            let child = spawn_backend(bin, &port_file, extra_args, i)?;
            fleet.children.push(ChildBackend {
                id,
                port_file,
                child: Some(child),
            });
        }
        Ok(fleet)
    }

    /// Number of configured backends (dead or alive).
    #[must_use]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// The router-side view of this fleet: one port-file-sourced
    /// [`BackendSpec`] per child, under stable logical ids.
    #[must_use]
    pub fn specs(&self) -> Vec<BackendSpec> {
        self.children
            .iter()
            .map(|c| BackendSpec::port_file(&c.id, c.port_file.clone()))
            .collect()
    }

    /// Blocks until every backend has written its port file (so the
    /// fleet is accepting connections), returning the bound addresses
    /// in backend order.
    ///
    /// # Errors
    ///
    /// Returns a message if any backend misses the `timeout`.
    pub fn wait_ready(&self, timeout: Duration) -> Result<Vec<String>, String> {
        let deadline = Instant::now() + timeout;
        let mut addrs = Vec::with_capacity(self.children.len());
        for child in &self.children {
            loop {
                let read = std::fs::read_to_string(&child.port_file)
                    .ok()
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty());
                if let Some(addr) = read {
                    addrs.push(addr);
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(format!(
                        "backend {} did not write {} within {timeout:?}",
                        child.id,
                        child.port_file.display()
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        Ok(addrs)
    }

    /// SIGKILLs backend `idx` and reaps it. The port file is left in
    /// place deliberately: a real crash leaves stale state behind, and
    /// the router must cope (the health check fails, not the read).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn kill(&mut self, idx: usize) {
        if let Some(mut child) = self.children[idx].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Respawns backend `idx` under its original id. The stale port
    /// file is removed first so `wait_ready` / the router's health pass
    /// cannot read the dead process's address as fresh.
    ///
    /// # Errors
    ///
    /// Returns a message on spawn failure.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn respawn(&mut self, idx: usize) -> Result<(), String> {
        self.kill(idx);
        let port_file = self.children[idx].port_file.clone();
        std::fs::remove_file(&port_file).ok();
        self.children[idx].child =
            Some(spawn_backend(&self.bin, &port_file, &self.extra_args, idx)?);
        Ok(())
    }
}

impl Drop for BackendFleet {
    fn drop(&mut self) {
        for i in 0..self.children.len() {
            self.kill(i);
        }
    }
}

fn spawn_backend(
    bin: &Path,
    port_file: &Path,
    extra_args: &[String],
    node: usize,
) -> Result<Child, String> {
    // a stale file from a previous life must not be mistaken for this
    // spawn's handshake
    std::fs::remove_file(port_file).ok();
    Command::new(bin)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(port_file)
        // the fleet index doubles as the job-id node tag, so the router
        // can route GET/DELETE /jobs/{id} straight to the minting
        // backend; stable across respawns like the logical id itself
        .arg("--job-node")
        .arg(node.to_string())
        .args(extra_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_lookup_respects_the_env_override() {
        // no env manipulation (tests run concurrently); just check that
        // the sibling fallback produces a sensible error or a real file
        match raysearchd_bin() {
            Ok(path) => assert!(path.is_file()),
            Err(msg) => assert!(msg.contains("raysearchd")),
        }
    }
}
