//! Endpoint implementations and the shared service state.
//!
//! Every evaluation endpoint is a pure function of its canonicalized
//! parameters, so each one is memoized in the sharded LRU cache behind a
//! [`MemoKey`]. Responses wrap the cached payload as
//! `{"cached": <bool>, "result": <payload>}` — the payload string is
//! byte-for-byte identical between the computing request and every
//! cache hit after it (deterministic JSON bodies), while the `cached`
//! flag reflects this particular request.
//!
//! | endpoint | method | parameters | payload |
//! |---|---|---|---|
//! | `/healthz` | GET | — | service identity (never cached) |
//! | `/stats` | GET | — | request + cache counters (never cached) |
//! | `/closed_form` | GET/POST | `m?`, `k`, `f` *or* `eta` | regime + `A(m,k,f)` / `Λ(η)` |
//! | `/evaluate` | POST | `m?`, `k`, `f`, `horizon?` | exact [`EvalReport`](raysearch_core::EvalReport) |
//! | `/verdict` | POST | `m?`, `k`, `f`, `horizon?`, `eps?` | [`TightnessReport`](raysearch_core::TightnessReport) |
//! | `/campaign` | POST | `id`, `max_k?`, `threads?` | schema-v1 report rows |
//! | `/montecarlo` | POST | `m?`, `k`, `f`, `horizon?`, `samples?`, `seed?`, `faults?`, `p?` | [`McReport`](raysearch_mc::McReport) + closed-form comparison |
//! | `/jobs` | POST | endpoint payload + `endpoint` tag, `client?` | `202 {id, state}` (async job, never cached) |
//! | `/jobs/{id}` | GET | `wait_micros?` (long-poll) | the job record; `result` bytes match the synchronous endpoint |
//! | `/jobs/{id}` | DELETE | — | cancels a still-queued job |
//!
//! Every memoizable endpoint parses into a `Prepared` computation
//! (key + validated compute closure) and resolves through one shared
//! execute path — the synchronous handlers inline, the job tier on a
//! compute worker — so a job's `result` payload is byte-identical to
//! the synchronous response for the same parameters.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use raysearch_bounds::{lambda_big, RayInstance, Regime};
use raysearch_core::{
    evaluate_optimal_cached, verdict::verify_tightness_cached, CanonF64, CompileCache,
    CompiledFleet, CoreError, FleetKey,
};
use raysearch_mc::{FaultSampler, McConfig, Scenario, TargetSampler};
use serde_json::{Map, Value};

use crate::cache::{CacheStats, ShardedLru};
use crate::http::{Request, Response};
use crate::jobs::{
    format_job_id, parse_job_id, CancelError, CostClass, JobConfig, JobQueue, JobRecord, JobSpec,
    SubmitError,
};
use crate::server::Handler;
use crate::telemetry::{
    metrics_response, push_counter, push_gauge, trace_index_json, trace_json, Span, SpanSet,
    Telemetry, TRACE_HEADER,
};

/// Default evaluation horizon when a request omits `horizon`.
pub const DEFAULT_HORIZON: f64 = 1e4;
/// Default falsification margin when a `/verdict` request omits `eps`.
pub const DEFAULT_EPS: f64 = 1e-2;
/// Default `k`-axis ceiling for `/campaign` requests.
pub const DEFAULT_CAMPAIGN_MAX_K: u32 = 4;
/// Hard ceiling for `/campaign`'s `max_k` — a grid request is served
/// inline by a worker thread, so its size must stay bounded.
pub const MAX_CAMPAIGN_MAX_K: u32 = 12;
/// Serving ceiling for `k` on `/evaluate` and `/verdict`. The
/// log-domain evaluation pipeline is finite at any fleet size (the old
/// linear pipeline overflowed to an error from `k ≈ 139` at deep
/// horizons), so this is purely a bounded-work ceiling: compute grows
/// superlinearly in `k`, and one `k = 4096` deep-horizon request is
/// already seconds of worker time.
pub const MAX_INSTANCE_K: u32 = 4096;
/// Serving ceiling for `m` on `/evaluate` and `/verdict` — like
/// [`MAX_INSTANCE_K`] a bounded-work limit, not a numeric one, raised
/// from the overflow-era 128. It stays below the `k` ceiling because
/// per-request memory carries an `m × k` piece table.
pub const MAX_INSTANCE_M: u32 = 512;
/// Bounded-work envelope for one inline `/evaluate` / `/verdict`
/// request: the evaluator walks `k` tours of `O(m·(f+2))` excursions
/// each, so `k·m·(f+2)` is proportional to worker time. The cap admits
/// the heaviest supported large-fleet instance (`m = 2`, `k = 4096`,
/// `f = k−1` ≈ 34M units, seconds of compute) while rejecting shapes
/// that would tie up a fixed-pool worker for minutes.
pub const MAX_EVAL_WORK: u64 = 1 << 26;
/// Serving ceiling for `horizon` on `/evaluate` and `/verdict`.
pub const MAX_HORIZON: f64 = 1e15;
/// Default Monte-Carlo sample budget when a `/montecarlo` request omits
/// `samples`.
pub const DEFAULT_MC_SAMPLES: u64 = 20_000;
/// Serving ceiling for `/montecarlo`'s `samples` — one request is served
/// inline by a worker thread, so its budget must stay bounded.
pub const MAX_MC_SAMPLES: u64 = 200_000;
/// Bounded-work envelope for one `/montecarlo` request: each sample
/// costs one first-visit lookup per robot, so `samples·k` is
/// proportional to worker time. The cap preserves the historical
/// heaviest request (200k samples at the old `k = 128` ceiling is
/// 25.6M) while keeping the raised fleet ceiling honest — `k = 4096`
/// is served with proportionally smaller sample budgets.
pub const MAX_MC_WORK: u64 = 1 << 25;
/// Default master seed when a `/montecarlo` request omits `seed`.
pub const DEFAULT_MC_SEED: u64 = 1707;
/// Monte-Carlo samples per cell when `/campaign` runs E11: 12 cells run
/// inline on one worker thread, so the whole request stays within the
/// same bounded-work envelope as a single `/montecarlo` request.
pub const CAMPAIGN_MC_SAMPLES: u64 = 5_000;
/// Default per-robot fault probability for the `iid` and `byzantine`
/// fault models.
pub const DEFAULT_MC_P: f64 = 0.1;
/// Capacity of the compiled-fleet memo tier (entries, LRU). Artifacts
/// are keyed by fleet *geometry* — deliberately `f`-free — so one entry
/// serves every `/evaluate`, `/verdict` and `/montecarlo` request over
/// the same `(strategy, m, k, α-or-η, horizon)`.
pub const COMPILE_CACHE_CAPACITY: usize = 64;
/// Shards of the compiled-fleet memo tier.
pub const COMPILE_CACHE_SHARDS: usize = 8;

/// The endpoints a job may target (`POST /jobs` with this `endpoint`
/// tag). `/closed_form` and `/verdict` stay synchronous-only: they are
/// microsecond-scale and gain nothing from queueing.
pub const JOB_ENDPOINTS: &[&str] = &["evaluate", "montecarlo", "campaign"];

/// Ceiling for `GET /jobs/{id}?wait_micros=` long-polls, so a poll can
/// never pin an HTTP worker much longer than the acceptor's own read
/// timeout.
pub const MAX_JOB_WAIT_MICROS: u64 = 5_000_000;

/// The endpoint names, the single source of truth for dispatch, the
/// 405-vs-404 distinction, and the `/healthz` advertisement.
pub const ENDPOINTS: &[&str] = &[
    "closed_form",
    "evaluate",
    "verdict",
    "campaign",
    "montecarlo",
    "jobs",
    "healthz",
    "stats",
    "metrics",
    "debug/slow",
    "debug/trace",
];

/// The canonicalized identity of one memoizable computation.
///
/// Float parameters go through [`CanonF64`], so requests spelling the
/// same instance differently (`-0.0` vs `0.0`, `1e4` vs `10000`) share
/// one cache entry and one shard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemoKey {
    /// `/closed_form` over an `(m, k, f)` instance.
    ClosedForm {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
    },
    /// `/closed_form` over a raw ratio argument `η`.
    Lambda {
        /// The canonicalized `η`.
        eta: CanonF64,
    },
    /// `/evaluate` of the optimal strategy for an instance.
    Evaluate {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
        /// The canonicalized evaluation horizon.
        horizon: CanonF64,
    },
    /// `/verdict` tightness verification for an instance.
    Verdict {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
        /// The canonicalized evaluation horizon.
        horizon: CanonF64,
        /// The canonicalized falsification margin.
        eps: CanonF64,
    },
    /// `/campaign` run of one registered experiment.
    Campaign {
        /// The experiment id (`"e1"` … `"e11"`).
        id: String,
        /// The `k`-axis ceiling.
        max_k: u32,
    },
    /// `/montecarlo` estimation of an instance under a fault model.
    ///
    /// The seed and sample count are part of the key — the engine is
    /// bit-deterministic in them (and thread-count invariant), so the
    /// cached payload is byte-identical to a cold computation.
    MonteCarlo {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
        /// The canonicalized evaluation horizon.
        horizon: CanonF64,
        /// Monte-Carlo samples.
        samples: u64,
        /// The master seed.
        seed: u64,
        /// The fault-model name (`"worst"`, `"uniform"`, `"iid"`,
        /// `"byzantine"`).
        faults: String,
        /// The canonicalized fault probability (normalized to `0` for
        /// models that ignore it, so spelling variants share an entry).
        p: CanonF64,
    },
}

impl MemoKey {
    /// Renders the key as a stable, human-readable canonical string —
    /// the representation the consistent-hash router scores backends
    /// against (see [`routing_key`]). Distinct keys always render
    /// distinctly: integer fields print exactly, and the float fields
    /// go through [`CanonF64`]'s shortest-round-trip `Display`, which is
    /// injective on the canonicalized (NaN-free, `-0.0`-free) domain.
    pub fn canonical_string(&self) -> String {
        match self {
            MemoKey::ClosedForm { m, k, f } => format!("closed_form:m={m},k={k},f={f}"),
            MemoKey::Lambda { eta } => format!("lambda:eta={eta}"),
            MemoKey::Evaluate { m, k, f, horizon } => {
                format!("evaluate:m={m},k={k},f={f},h={horizon}")
            }
            MemoKey::Verdict {
                m,
                k,
                f,
                horizon,
                eps,
            } => format!("verdict:m={m},k={k},f={f},h={horizon},eps={eps}"),
            MemoKey::Campaign { id, max_k } => format!("campaign:id={id},max_k={max_k}"),
            MemoKey::MonteCarlo {
                m,
                k,
                f,
                horizon,
                samples,
                seed,
                faults,
                p,
            } => format!(
                "montecarlo:m={m},k={k},f={f},h={horizon},samples={samples},seed={seed},faults={faults},p={p}"
            ),
        }
    }
}

/// Derives the canonical routing key for one request — the string a
/// consistent-hash router rendezvous-scores backends against.
///
/// For memoizable endpoints this is the [`MemoKey`]'s canonical string
/// with the same parameter canonicalization the backend's cache applies
/// (defaults filled in, floats through [`CanonF64`], fault-model `p`
/// normalized), so every spelling of the same logical request —
/// query-string vs JSON body, `1e4` vs `10000` — routes to the same
/// backend and meets the same memo entry there. Requests that do not
/// parse into a memo key (unknown paths, malformed parameters) fall
/// back to a raw `method:path?query:body` key: they still route
/// *deterministically* (a replayed tape reproduces shard placement
/// exactly), they just cannot share a shard with a well-formed spelling.
pub fn routing_key(req: &Request) -> String {
    match routing_memo_key(req) {
        Some(key) => key.canonical_string(),
        None => {
            let mut raw = format!("raw:{}:{}", req.method, req.path);
            for (i, (k, v)) in req.query.iter().enumerate() {
                raw.push(if i == 0 { '?' } else { '&' });
                raw.push_str(k);
                raw.push('=');
                raw.push_str(v);
            }
            raw.push(':');
            raw.push_str(&String::from_utf8_lossy(&req.body));
            raw
        }
    }
}

/// Parses `req` into the [`MemoKey`] its target endpoint would memoize
/// under, applying the same defaults and canonicalization. `None` when
/// the path is not a memoizable endpoint or the parameters do not parse
/// — the router then routes on the raw fallback key.
fn routing_memo_key(req: &Request) -> Option<MemoKey> {
    let params = RequestParams::from(req).ok()?;
    match req.path.as_str() {
        "/closed_form" => {
            if let Some(eta) = params.opt_f64("eta").ok()? {
                return Some(MemoKey::Lambda {
                    eta: CanonF64::new(eta).ok()?,
                });
            }
            let (m, k, f) = params.instance().ok()?;
            Some(MemoKey::ClosedForm { m, k, f })
        }
        "/evaluate" => {
            let (m, k, f) = params.instance().ok()?;
            let horizon = params.opt_f64("horizon").ok()?.unwrap_or(DEFAULT_HORIZON);
            Some(MemoKey::Evaluate {
                m,
                k,
                f,
                horizon: CanonF64::new(horizon).ok()?,
            })
        }
        "/verdict" => {
            let (m, k, f) = params.instance().ok()?;
            let horizon = params.opt_f64("horizon").ok()?.unwrap_or(DEFAULT_HORIZON);
            let eps = params.opt_f64("eps").ok()?.unwrap_or(DEFAULT_EPS);
            Some(MemoKey::Verdict {
                m,
                k,
                f,
                horizon: CanonF64::new(horizon).ok()?,
                eps: CanonF64::new(eps).ok()?,
            })
        }
        "/campaign" => {
            let id = params.opt_str("id").ok()??;
            let max_k = params
                .opt_u32("max_k")
                .ok()?
                .unwrap_or(DEFAULT_CAMPAIGN_MAX_K)
                .max(1);
            Some(MemoKey::Campaign { id, max_k })
        }
        "/montecarlo" => {
            let (m, k, f) = params.instance().ok()?;
            let horizon = params.opt_f64("horizon").ok()?.unwrap_or(DEFAULT_HORIZON);
            let samples = params
                .opt_u64("samples")
                .ok()?
                .unwrap_or(DEFAULT_MC_SAMPLES);
            let seed = params.opt_u64("seed").ok()?.unwrap_or(DEFAULT_MC_SEED);
            let model = params
                .opt_str("faults")
                .ok()?
                .unwrap_or_else(|| "uniform".to_owned());
            let p = params.opt_f64("p").ok()?.unwrap_or(DEFAULT_MC_P);
            let faults = FaultSampler::from_name(&model, f, p)?;
            let p_effective = faults.probability().unwrap_or(0.0);
            Some(MemoKey::MonteCarlo {
                m,
                k,
                f,
                horizon: CanonF64::new(horizon).ok()?,
                samples,
                seed,
                faults: model,
                p: CanonF64::new(p_effective).ok()?,
            })
        }
        _ => None,
    }
}

/// An endpoint failure: an HTTP status plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status to respond with.
    pub status: u16,
    /// The message for the `{"error": ...}` body.
    pub message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Shared state of one server instance: the result memo cache, the
/// compiled-fleet memo tier beneath it, and counters.
///
/// The two tiers cache different things: the result LRU holds finished
/// payload *strings* keyed by the full request identity ([`MemoKey`],
/// including `f`, `eps`, seeds…), while the compile tier holds shared
/// [`CompiledFleet`] artifacts keyed by geometry alone ([`FleetKey`]).
/// A result-cache miss that shares geometry with an earlier request —
/// same `(m, k, horizon)`, different `f` in the trivial regime, or a
/// `/verdict` after an `/evaluate` — still skips recompilation.
#[derive(Debug)]
pub struct ServiceState {
    cache: ShardedLru<MemoKey, String>,
    compile: ShardedLru<FleetKey, Arc<CompiledFleet>>,
    started: Instant,
    requests: AtomicU64,
    shed: AtomicU64,
    telemetry: Telemetry,
    jobs: JobQueue,
}

/// The compile tier viewed through the core's [`CompileCache`] seam, so
/// `_cached` entry points can consume it directly. Doubles as the
/// compile-span capture point: actual fleet builds (never memo hits)
/// accumulate their wall time into `compile_micros` when attached.
struct CompileTier<'a> {
    cache: &'a ShardedLru<FleetKey, Arc<CompiledFleet>>,
    compile_micros: Option<&'a Cell<u64>>,
}

impl CompileCache for CompileTier<'_> {
    fn get_or_compile(
        &self,
        key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError> {
        self.cache
            .try_get_or_insert_with(key, || {
                let before = Instant::now();
                let built = build().map(Arc::new);
                if let Some(cell) = self.compile_micros {
                    cell.set(cell.get() + before.elapsed().as_micros() as u64);
                }
                built
            })
            .map(|(fleet, _hit)| fleet)
    }
}

impl ServiceState {
    /// Creates service state with a memo cache of `capacity` entries
    /// over `shards` shards (the compile tier is sized independently by
    /// [`COMPILE_CACHE_CAPACITY`] / [`COMPILE_CACHE_SHARDS`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_jobs(capacity, shards, JobConfig::default())
    }

    /// [`ServiceState::new`] with an explicit job-tier configuration
    /// (queue depth, store capacity, admission limits, cost threshold,
    /// node index, compute-worker count).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    pub fn with_jobs(capacity: usize, shards: usize, jobs: JobConfig) -> Self {
        ServiceState {
            cache: ShardedLru::new(capacity, shards),
            compile: ShardedLru::new(COMPILE_CACHE_CAPACITY, COMPILE_CACHE_SHARDS),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            telemetry: Telemetry::new(),
            jobs: JobQueue::new(jobs),
        }
    }

    /// The job subsystem (admission queue + record store) behind the
    /// `/jobs` endpoints, shared with the compute-worker pool.
    #[must_use]
    pub fn jobs(&self) -> &JobQueue {
        &self.jobs
    }

    /// The service's telemetry registry (trace minting, span
    /// histograms, slow log) — exposed so binaries can apply
    /// `--slow-log-micros` and tests can assert on recorded counts.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot of the result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the compiled-fleet memo tier's counters.
    pub fn compile_stats(&self) -> CacheStats {
        self.compile.stats()
    }

    /// Total requests dispatched so far.
    pub fn requests_total(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections shed with a `503` by the acceptor so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Computes (or recalls) the deterministic payload for `key`.
    /// Returns the payload JSON string and whether it was a cache hit.
    /// Concurrent identical requests coalesce into one computation (the
    /// shard stays locked while it runs), and failed computations are
    /// never cached, so a transiently bad request cannot poison the
    /// entry for a later valid one.
    pub fn memoized(
        &self,
        key: MemoKey,
        compute: impl FnOnce() -> Result<String, ApiError>,
    ) -> Result<(String, bool), ApiError> {
        self.cache.try_get_or_insert_with(key, compute)
    }

    /// [`ServiceState::memoized`] with span attribution: the lookup
    /// overhead (total minus compute) lands in `cache_lookup`, actual
    /// fleet builds land in `compile` (captured inside the
    /// [`CompileTier`] handed to `compute`), and the rest of the compute
    /// closure lands in `evaluate`. Cache hits record only
    /// `cache_lookup`.
    fn memoized_spanned(
        &self,
        spans: &mut SpanSet,
        key: MemoKey,
        compute: impl FnOnce(&CompileTier) -> Result<String, ApiError>,
    ) -> Result<(String, bool), ApiError> {
        let compute_micros = Cell::new(0u64);
        let compile_micros = Cell::new(0u64);
        let entered = spans.elapsed_micros();
        let result = self.cache.try_get_or_insert_with(key, || {
            let started = Instant::now();
            let tier = CompileTier {
                cache: &self.compile,
                compile_micros: Some(&compile_micros),
            };
            let out = compute(&tier);
            compute_micros.set(started.elapsed().as_micros() as u64);
            out
        });
        let total = spans.elapsed_micros().saturating_sub(entered);
        let compute_t = compute_micros.get();
        let compile_t = compile_micros.get();
        let hit = if matches!(&result, Ok((_, true))) {
            "true"
        } else {
            "false"
        };
        // attribute the block as three consecutive intervals — lookup
        // overhead, then compile, then the rest of the compute — so the
        // trace tree shows disjoint, ordered children whose durations
        // sum to the measured block
        let lookup_end = entered + total.saturating_sub(compute_t);
        spans.add_interval(Span::CacheLookup, entered, lookup_end, &[("hit", hit)]);
        if compute_t > 0 {
            let compile_end = lookup_end + compile_t;
            spans.add_interval(Span::Compile, lookup_end, compile_end, &[]);
            spans.add_interval(
                Span::Evaluate,
                compile_end,
                compile_end + compute_t.saturating_sub(compile_t),
                &[],
            );
        }
        result
    }

    /// Dispatches one parsed request to its endpoint. Infallible at the
    /// HTTP layer: endpoint errors become JSON error responses. Every
    /// response echoes the request's `x-raysearch-trace` id (minted
    /// here when the client sent none), and the request's span set is
    /// recorded into the telemetry registry.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let trace = self.telemetry.trace_for(req);
        let mut spans = SpanSet::start();
        let result = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/stats") => Ok(self.stats_response()),
            ("GET", "/metrics") => Ok(self.metrics()),
            ("GET", "/debug/slow") => Ok(Response::ok(self.telemetry.slow_log_json())),
            ("GET", "/debug/trace") => {
                Ok(Response::ok(trace_index_json(self.telemetry.recorder())))
            }
            ("GET", path) if path.starts_with("/debug/trace/") => Ok(self.debug_trace(path)),
            ("GET" | "POST", "/closed_form") => self.sync_endpoint("closed_form", req, &mut spans),
            ("POST", "/evaluate") => self.sync_endpoint("evaluate", req, &mut spans),
            ("POST", "/verdict") => self.sync_endpoint("verdict", req, &mut spans),
            ("POST", "/campaign") => self.sync_endpoint("campaign", req, &mut spans),
            ("POST", "/montecarlo") => self.sync_endpoint("montecarlo", req, &mut spans),
            ("POST", "/jobs") => self.submit_job(req, &mut spans),
            ("GET", path) if path.starts_with("/jobs/") => self.poll_job(req, path),
            ("DELETE", path) if path.starts_with("/jobs/") => self.cancel_job(path),
            (_, path)
                if path
                    .strip_prefix('/')
                    .is_some_and(|p| ENDPOINTS.contains(&p)) =>
            {
                Err(ApiError {
                    status: 405,
                    message: format!("method {} not allowed for {}", req.method, req.path),
                })
            }
            (_, path) => Err(ApiError {
                status: 404,
                message: format!("no such endpoint {path:?}"),
            }),
        };
        let response = match result {
            Ok(response) => response,
            Err(e) => Response::error(e.status, &e.message),
        };
        let status = response.status;
        self.telemetry.observe(req, &trace, status, spans);
        response.with_header(TRACE_HEADER, trace)
    }

    /// `GET /debug/trace/{id}`: the stored span tree for one trace id,
    /// or a 404 when the id was never sampled (or has been evicted from
    /// the bounded ring).
    fn debug_trace(&self, path: &str) -> Response {
        let id = path.strip_prefix("/debug/trace/").unwrap_or_default();
        let key = raysearch_core::TraceRecorder::key_for(id);
        match self.telemetry.recorder().get(key) {
            Some(trace) => Response::ok(trace_json(&trace, "raysearchd")),
            None => Response::error(404, &format!("no stored trace {id:?}")),
        }
    }

    fn healthz(&self) -> Response {
        let mut doc = Map::new();
        doc.insert("status".to_owned(), Value::String("ok".to_owned()));
        doc.insert("service".to_owned(), Value::String("raysearchd".to_owned()));
        doc.insert("paper".to_owned(), Value::String("1707.05077".to_owned()));
        doc.insert(
            "endpoints".to_owned(),
            Value::Array(
                ENDPOINTS
                    .iter()
                    .map(|e| Value::String((*e).to_owned()))
                    .collect(),
            ),
        );
        Response::ok(Value::Object(doc).to_json_string())
    }

    fn stats_response(&self) -> Response {
        let cache = self.cache.stats();
        let compile = self.compile.stats();
        let mut doc = Map::new();
        doc.insert(
            "requests_total".to_owned(),
            serde_json::to_value(self.requests_total()).expect("u64 serializes"),
        );
        doc.insert(
            "shed_total".to_owned(),
            serde_json::to_value(self.shed_total()).expect("u64 serializes"),
        );
        doc.insert(
            "uptime_micros".to_owned(),
            serde_json::to_value(self.started.elapsed().as_micros() as u64)
                .expect("u64 serializes"),
        );
        doc.insert(
            "cache".to_owned(),
            serde_json::to_value(cache).expect("stats serialize"),
        );
        doc.insert(
            "compile_hits".to_owned(),
            serde_json::to_value(compile.hits).expect("u64 serializes"),
        );
        doc.insert(
            "compile_misses".to_owned(),
            serde_json::to_value(compile.misses).expect("u64 serializes"),
        );
        doc.insert(
            "compile_entries".to_owned(),
            serde_json::to_value(compile.entries as u64).expect("u64 serializes"),
        );
        let jobs = self.jobs.snapshot();
        let mut jobs_doc = Map::new();
        for (name, value) in [
            ("queued", jobs.queued),
            ("running", jobs.running),
            ("stored", jobs.stored),
            ("submitted", jobs.submitted),
            ("completed", jobs.completed),
            ("failed", jobs.failed),
            ("cancelled", jobs.cancelled),
            ("rejected", jobs.rejected),
            ("evicted", jobs.evicted),
        ] {
            jobs_doc.insert(
                name.to_owned(),
                serde_json::to_value(value).expect("u64 serializes"),
            );
        }
        doc.insert("jobs".to_owned(), Value::Object(jobs_doc));
        Response::ok(Value::Object(doc).to_json_string())
    }

    /// The service's `GET /metrics`: Prometheus text exposition of the
    /// request/shed counters, both cache tiers, and the per-endpoint
    /// span latency histograms.
    fn metrics(&self) -> Response {
        let cache = self.cache.stats();
        let compile = self.compile.stats();
        let mut out = String::new();
        push_counter(
            &mut out,
            "raysearchd_requests_total",
            "Requests dispatched by this backend.",
            self.requests_total(),
        );
        push_counter(
            &mut out,
            "raysearchd_shed_total",
            "Connections shed with a 503 by the acceptor.",
            self.shed_total(),
        );
        push_counter(
            &mut out,
            "raysearchd_cache_hits_total",
            "Result-cache lookups answered from the cache.",
            cache.hits,
        );
        push_counter(
            &mut out,
            "raysearchd_cache_misses_total",
            "Result-cache lookups that had to compute.",
            cache.misses,
        );
        push_counter(
            &mut out,
            "raysearchd_cache_evictions_total",
            "Result-cache entries displaced to make room.",
            cache.evictions,
        );
        push_gauge(
            &mut out,
            "raysearchd_cache_entries",
            "Result-cache entries currently resident.",
            cache.entries as u64,
        );
        push_counter(
            &mut out,
            "raysearchd_compile_hits_total",
            "Compile-tier lookups answered from the memo.",
            compile.hits,
        );
        push_counter(
            &mut out,
            "raysearchd_compile_misses_total",
            "Compile-tier lookups that had to build a fleet.",
            compile.misses,
        );
        push_gauge(
            &mut out,
            "raysearchd_compile_entries",
            "Compiled-fleet artifacts currently resident.",
            compile.entries as u64,
        );
        let jobs = self.jobs.snapshot();
        push_counter(
            &mut out,
            "raysearchd_jobs_submitted_total",
            "Jobs admitted by POST /jobs.",
            jobs.submitted,
        );
        push_counter(
            &mut out,
            "raysearchd_jobs_completed_total",
            "Jobs that reached the done state.",
            jobs.completed,
        );
        push_counter(
            &mut out,
            "raysearchd_jobs_failed_total",
            "Jobs that reached the failed state.",
            jobs.failed,
        );
        push_counter(
            &mut out,
            "raysearchd_jobs_cancelled_total",
            "Queued jobs cancelled before execution.",
            jobs.cancelled,
        );
        push_counter(
            &mut out,
            "raysearchd_jobs_rejected_total",
            "Job submissions shed by admission control.",
            jobs.rejected,
        );
        push_counter(
            &mut out,
            "raysearchd_jobs_evicted_total",
            "Terminal job records evicted from the bounded store.",
            jobs.evicted,
        );
        push_gauge(
            &mut out,
            "raysearchd_jobs_queued",
            "Jobs currently waiting in the queue.",
            jobs.queued,
        );
        push_gauge(
            &mut out,
            "raysearchd_jobs_running",
            "Jobs currently executing on a compute worker.",
            jobs.running,
        );
        push_gauge(
            &mut out,
            "raysearchd_jobs_stored",
            "Job records currently resident in the store.",
            jobs.stored,
        );
        push_gauge(
            &mut out,
            "raysearchd_uptime_micros",
            "Microseconds since this backend started.",
            self.started.elapsed().as_micros() as u64,
        );
        push_gauge(
            &mut out,
            "raysearchd_uptime_seconds",
            "Seconds since this backend started.",
            self.started.elapsed().as_secs(),
        );
        let recorder = self.telemetry.recorder();
        push_gauge(
            &mut out,
            "raysearchd_traces_stored",
            "Completed span traces resident in the trace ring.",
            recorder.stored(),
        );
        push_counter(
            &mut out,
            "raysearchd_traces_dropped_total",
            "Span traces evicted from the bounded trace ring.",
            recorder.dropped_total(),
        );
        self.telemetry
            .render_prometheus_histograms(&mut out, "raysearchd");
        metrics_response(out)
    }

    /// One synchronous memoizable endpoint, end to end: parse and
    /// validate into a [`Prepared`] computation, resolve it through the
    /// shared execute path, wrap the payload. This replaced five
    /// near-identical inline match arms — the per-endpoint logic now
    /// lives entirely in the `prepare_*` fns, and the cache-wrap /
    /// error-mapping block exists exactly once.
    fn sync_endpoint(
        &self,
        endpoint: &str,
        req: &Request,
        spans: &mut SpanSet,
    ) -> Result<Response, ApiError> {
        let prepared = spans.time(Span::Parse, || {
            prepare(endpoint, &RequestParams::from(req)?)
        })?;
        let (payload, cached) = self.execute(spans, prepared)?;
        Ok(spans.time(Span::Serialize, || wrap(payload, cached)))
    }

    /// The single shared execute fn: resolves a [`Prepared`] computation
    /// through the memo cache with span attribution. Synchronous
    /// handlers and job compute workers both end here, which is what
    /// keeps a job's `result` payload byte-identical to the synchronous
    /// response and lets both routes share the memo/compile caches.
    fn execute(&self, spans: &mut SpanSet, prepared: Prepared) -> Result<(String, bool), ApiError> {
        self.memoized_spanned(spans, prepared.key, prepared.compute)
    }

    /// Executes one job spec on a compute worker: rebuild the endpoint
    /// request from the stored body, re-enter the same parse / prepare /
    /// execute path as the synchronous endpoint, and record the compute
    /// spans under the `jobs` endpoint label.
    ///
    /// # Errors
    ///
    /// The [`ApiError`] the synchronous endpoint would have responded
    /// with; the worker parks it in the job record as a `Failed`
    /// outcome.
    pub fn execute_job(&self, endpoint: &str, body: &str) -> Result<(String, bool), ApiError> {
        let req = job_request(endpoint, body);
        let prepared = prepare(endpoint, &RequestParams::from(&req)?)?;
        let mut spans = SpanSet::start();
        let out = self.execute(&mut spans, prepared);
        for span in [Span::CacheLookup, Span::Compile, Span::Evaluate] {
            let micros = spans.get(span);
            if micros > 0 {
                self.telemetry.record_span("/jobs", span, micros);
            }
        }
        out
    }

    /// One compute worker: drains the job queue until `stop` is set,
    /// recording each job's queue wait and executing it through
    /// [`ServiceState::execute_job`]. Panics inside a job are caught
    /// and parked as a `Failed` outcome so one poisoned payload cannot
    /// take a worker down.
    pub fn run_compute_worker(&self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            let Some((id, endpoint, body, wait)) = self.jobs.next_job(Duration::from_millis(50))
            else {
                continue;
            };
            self.telemetry.record_span("/jobs", Span::QueueWait, wait);
            let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute_job(&endpoint, &body)
            })) {
                Ok(Ok(pair)) => Ok(pair),
                Ok(Err(e)) => Err((e.status, e.message)),
                Err(_) => Err((500, "job execution panicked".to_owned())),
            };
            self.jobs.finish(id, outcome);
        }
    }

    /// `POST /jobs`: validate and enqueue an asynchronous job. The body
    /// is the target endpoint's usual JSON payload plus an `endpoint`
    /// tag (and an optional `client` admission label). Accepted jobs
    /// answer `202 {"id", "state"}`; admission refusals shed with
    /// `503` + `Retry-After`, exactly like the acceptor.
    fn submit_job(&self, req: &Request, spans: &mut SpanSet) -> Result<Response, ApiError> {
        let spec = spans.time(Span::Parse, || self.parse_job_spec(req))?;
        match self.jobs.submit(spec) {
            Ok(id) => Ok(Response {
                status: 202,
                body: format!("{{\"id\":\"{}\",\"state\":\"queued\"}}", format_job_id(id)),
                headers: Vec::new(),
            }),
            Err(SubmitError::QueueFull) => Ok(Response::shed("job queue is full, try again")),
            Err(SubmitError::ClientLimit) => {
                Ok(Response::shed("per-client job limit reached, try again"))
            }
            Err(SubmitError::Closed) => Ok(Response::shed("job queue is shut down")),
        }
    }

    /// Parses and eagerly validates a job submission: the `endpoint`
    /// tag must be job-eligible, the inner payload must survive the
    /// exact parse/prepare path the compute worker will replay (so a
    /// malformed payload 400s here instead of becoming a `Failed`
    /// record later), and an `evaluate` job must clear the configured
    /// cost threshold — cheap evaluations belong on the synchronous
    /// endpoint.
    fn parse_job_spec(&self, req: &Request) -> Result<JobSpec, ApiError> {
        let body = req
            .body_utf8()
            .ok_or_else(|| ApiError::bad_request("request body is not UTF-8"))?
            .to_owned();
        if body.trim().is_empty() {
            return Err(ApiError::bad_request(
                "POST /jobs requires a JSON body with an \"endpoint\" tag",
            ));
        }
        let params = RequestParams::from(req)?;
        let endpoint = params
            .opt_str("endpoint")?
            .ok_or_else(|| ApiError::bad_request("missing parameter \"endpoint\""))?;
        if !JOB_ENDPOINTS.contains(&endpoint.as_str()) {
            return Err(ApiError::bad_request(format!(
                "endpoint {endpoint:?} is not job-eligible (available: {})",
                JOB_ENDPOINTS.join(", ")
            )));
        }
        let client = params
            .opt_str("client")?
            .unwrap_or_else(|| "anon".to_owned());
        let replay = job_request(&endpoint, &body);
        let prepared = prepare(&endpoint, &RequestParams::from(&replay)?)?;
        let threshold = self.jobs.config().cost_threshold;
        if prepared.cost < threshold {
            return Err(ApiError::bad_request(format!(
                "instance work k·m·(f+2) = {} is below the job cost threshold {threshold}; \
                 use the synchronous POST /evaluate instead",
                prepared.cost
            )));
        }
        Ok(JobSpec {
            class: CostClass::for_endpoint(&endpoint),
            endpoint,
            body,
            client,
        })
    }

    /// `GET /jobs/{id}`: one record as JSON. With `?wait_micros=` the
    /// response long-polls — it is held back (up to
    /// [`MAX_JOB_WAIT_MICROS`]) until the job reaches a terminal state,
    /// so a client can follow submit with a single blocking poll
    /// instead of a busy loop.
    fn poll_job(&self, req: &Request, path: &str) -> Result<Response, ApiError> {
        let id = parse_job_path(path)?;
        let wait = match req.query_param("wait_micros") {
            None => 0,
            Some(raw) => raw.parse::<u64>().map_err(|_| {
                ApiError::bad_request(format!("wait_micros is not an integer: {raw:?}"))
            })?,
        };
        let record = if wait > 0 {
            self.jobs
                .wait(id, Duration::from_micros(wait.min(MAX_JOB_WAIT_MICROS)))
        } else {
            self.jobs.get(id)
        };
        match record {
            Some(record) => Ok(Response::ok(job_json(&record))),
            None => Err(ApiError {
                status: 404,
                message: format!("no such job {path:?}"),
            }),
        }
    }

    /// `DELETE /jobs/{id}`: cancels a still-queued job. Running and
    /// terminal jobs conflict (`409`) — a result is immutable once a
    /// worker has picked the job up.
    fn cancel_job(&self, path: &str) -> Result<Response, ApiError> {
        let id = parse_job_path(path)?;
        match self.jobs.cancel(id) {
            Ok(()) => Ok(Response::ok(format!(
                "{{\"id\":\"{}\",\"state\":\"cancelled\"}}",
                format_job_id(id)
            ))),
            Err(CancelError::NotFound) => Err(ApiError {
                status: 404,
                message: format!("no such job {path:?}"),
            }),
            Err(CancelError::NotCancellable(state)) => Err(ApiError {
                status: 409,
                message: format!(
                    "job is {}; only queued jobs can be cancelled",
                    state.label()
                ),
            }),
        }
    }
}

impl Handler for ServiceState {
    fn handle(&self, req: &Request) -> Response {
        ServiceState::handle(self, req)
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn start_background(
        self: Arc<Self>,
        stop: Arc<AtomicBool>,
    ) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.jobs.config().workers.max(1))
            .map(|_| {
                let state = Arc::clone(&self);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || state.run_compute_worker(&stop))
            })
            .collect()
    }

    fn stop_background(&self) {
        self.jobs.close();
    }
}

/// Wraps a deterministic payload with the per-request `cached` flag.
fn wrap(payload: String, cached: bool) -> Response {
    Response::ok(format!("{{\"cached\":{cached},\"result\":{payload}}}"))
}

/// The boxed compute half of a [`Prepared`] computation. Captures only
/// owned, validated parameters — never the request — so it can run
/// later on a compute worker.
type ComputeFn = Box<dyn FnOnce(&CompileTier) -> Result<String, ApiError> + Send>;

/// A fully validated, ready-to-run computation: the memo key it caches
/// under, a `k·m·(f+2)`-style work estimate (used by the `/jobs` cost
/// threshold; endpoints that are always job-eligible report
/// `u64::MAX`, synchronous-only ones `0`), and the compute closure.
/// The `prepare_*` fns perform *all* parameter validation up front, so
/// executing a `Prepared` can only fail inside the computation itself.
struct Prepared {
    key: MemoKey,
    cost: u64,
    compute: ComputeFn,
}

/// Parses and validates one memoizable endpoint's parameters into a
/// [`Prepared`] computation — the single seam the synchronous handlers
/// and the job tier both go through.
fn prepare(endpoint: &str, params: &RequestParams) -> Result<Prepared, ApiError> {
    match endpoint {
        "closed_form" => prepare_closed_form(params),
        "evaluate" => prepare_evaluate(params),
        "verdict" => prepare_verdict(params),
        "campaign" => prepare_campaign(params),
        "montecarlo" => prepare_montecarlo(params),
        other => Err(ApiError::bad_request(format!("unknown endpoint {other:?}"))),
    }
}

fn prepare_closed_form(params: &RequestParams) -> Result<Prepared, ApiError> {
    if let Some(eta) = params.opt_f64("eta")? {
        return Ok(Prepared {
            key: MemoKey::Lambda {
                eta: canon(eta, "eta")?,
            },
            cost: 0,
            compute: Box::new(move |_tier| {
                let lambda =
                    lambda_big(eta).map_err(|e| ApiError::bad_request(format!("lambda: {e}")))?;
                let mut doc = Map::new();
                doc.insert("eta".to_owned(), Value::Float(eta));
                doc.insert("lambda".to_owned(), Value::Float(lambda));
                Ok(Value::Object(doc).to_json_string())
            }),
        });
    }
    let (m, k, f) = params.instance()?;
    Ok(Prepared {
        key: MemoKey::ClosedForm { m, k, f },
        cost: 0,
        compute: Box::new(move |_tier| {
            let instance = RayInstance::new(m, k, f)
                .map_err(|e| ApiError::bad_request(format!("instance: {e}")))?;
            let (regime, a) = match instance.regime() {
                Regime::Searchable { ratio } => ("searchable", Some(ratio)),
                Regime::Trivial => ("trivial", None),
                Regime::Impossible => ("impossible", None),
            };
            let mut doc = Map::new();
            doc.insert("m".to_owned(), Value::Int(i64::from(m)));
            doc.insert("k".to_owned(), Value::Int(i64::from(k)));
            doc.insert("f".to_owned(), Value::Int(i64::from(f)));
            doc.insert("q".to_owned(), Value::Int(i64::from(instance.q())));
            doc.insert("eta".to_owned(), Value::Float(instance.eta()));
            doc.insert("regime".to_owned(), Value::String(regime.to_owned()));
            doc.insert("a".to_owned(), a.map_or(Value::Null, Value::Float));
            Ok(Value::Object(doc).to_json_string())
        }),
    })
}

fn prepare_evaluate(params: &RequestParams) -> Result<Prepared, ApiError> {
    let (m, k, f) = params.instance()?;
    let horizon = params.opt_f64("horizon")?.unwrap_or(DEFAULT_HORIZON);
    let work = check_eval_limits(m, k, f, horizon)?;
    Ok(Prepared {
        key: MemoKey::Evaluate {
            m,
            k,
            f,
            horizon: canon(horizon, "horizon")?,
        },
        cost: work,
        compute: Box::new(move |tier| {
            let report = evaluate_optimal_cached(tier, m, k, f, horizon)
                .map_err(|e| ApiError::bad_request(format!("evaluate: {e}")))?;
            let mut doc = Map::new();
            doc.insert("m".to_owned(), Value::Int(i64::from(m)));
            doc.insert("k".to_owned(), Value::Int(i64::from(k)));
            doc.insert("f".to_owned(), Value::Int(i64::from(f)));
            doc.insert("horizon".to_owned(), Value::Float(horizon));
            doc.insert(
                "report".to_owned(),
                serde_json::to_value(report).expect("EvalReport serializes"),
            );
            Ok(Value::Object(doc).to_json_string())
        }),
    })
}

fn prepare_verdict(params: &RequestParams) -> Result<Prepared, ApiError> {
    let (m, k, f) = params.instance()?;
    let horizon = params.opt_f64("horizon")?.unwrap_or(DEFAULT_HORIZON);
    let eps = params.opt_f64("eps")?.unwrap_or(DEFAULT_EPS);
    check_eval_limits(m, k, f, horizon)?;
    Ok(Prepared {
        key: MemoKey::Verdict {
            m,
            k,
            f,
            horizon: canon(horizon, "horizon")?,
            eps: canon(eps, "eps")?,
        },
        cost: 0,
        compute: Box::new(move |tier| {
            let report = verify_tightness_cached(tier, m, k, f, horizon, eps)
                .map_err(|e| ApiError::bad_request(format!("verdict: {e}")))?;
            Ok(serde_json::to_value(report)
                .expect("TightnessReport serializes")
                .to_json_string())
        }),
    })
}

fn prepare_campaign(params: &RequestParams) -> Result<Prepared, ApiError> {
    let id = params
        .opt_str("id")?
        .ok_or_else(|| ApiError::bad_request("missing parameter \"id\""))?;
    if !raysearch_bench::experiments::ALL.contains(&id.as_str()) {
        return Err(ApiError::bad_request(format!(
            "unknown experiment {id:?} (available: {})",
            raysearch_bench::experiments::ALL.join(", ")
        )));
    }
    let max_k = params
        .opt_u32("max_k")?
        .unwrap_or(DEFAULT_CAMPAIGN_MAX_K)
        .max(1);
    if max_k > MAX_CAMPAIGN_MAX_K {
        return Err(ApiError::bad_request(format!(
            "max_k {max_k} exceeds the serving ceiling {MAX_CAMPAIGN_MAX_K}"
        )));
    }
    // threads shapes only the schedule, never the rows (the campaign
    // engine is deterministic), so it is not part of the cache key
    let threads = params.opt_u32("threads")?.map(|t| t.max(1) as usize);
    Ok(Prepared {
        key: MemoKey::Campaign {
            id: id.clone(),
            max_k,
        },
        cost: u64::MAX,
        compute: Box::new(move |_tier| {
            let cfg = raysearch_bench::experiments::Config {
                max_k,
                threads,
                // bounded like /montecarlo: E11 runs 12 Monte-Carlo
                // cells inline on one worker, so its per-cell budget is
                // pinned far below the suite default (and is a fixed
                // constant, keeping the payload a pure function of
                // (id, max_k))
                mc_samples: CAMPAIGN_MC_SAMPLES,
                ..raysearch_bench::experiments::Config::default()
            };
            let reports = raysearch_bench::experiments::run_experiment(&id, &cfg)
                .expect("id membership checked above");
            let campaigns: Vec<Value> = reports
                .iter()
                .map(|r| {
                    // schema-v1 rows, minus the timing/thread metadata so
                    // the body is a pure function of (id, max_k)
                    let mut doc = Map::new();
                    doc.insert("id".to_owned(), Value::String(r.id().to_owned()));
                    doc.insert("title".to_owned(), Value::String(r.title().to_owned()));
                    doc.insert("cells".to_owned(), Value::Int(r.rows().len() as i64));
                    doc.insert("rows".to_owned(), Value::Array(r.rows().to_vec()));
                    Value::Object(doc)
                })
                .collect();
            let mut doc = Map::new();
            doc.insert("schema_version".to_owned(), Value::Int(1));
            doc.insert("id".to_owned(), Value::String(id.clone()));
            doc.insert("max_k".to_owned(), Value::Int(i64::from(max_k)));
            doc.insert("campaigns".to_owned(), Value::Array(campaigns));
            Ok(Value::Object(doc).to_json_string())
        }),
    })
}

fn prepare_montecarlo(params: &RequestParams) -> Result<Prepared, ApiError> {
    let (m, k, f) = params.instance()?;
    let horizon = params.opt_f64("horizon")?.unwrap_or(DEFAULT_HORIZON);
    check_eval_limits(m, k, f, horizon)?;
    if k > raysearch_mc::MAX_FLEET {
        return Err(ApiError::bad_request(format!(
            "k {k} exceeds the Monte-Carlo fleet ceiling {}",
            raysearch_mc::MAX_FLEET
        )));
    }
    let samples = params.opt_u64("samples")?.unwrap_or(DEFAULT_MC_SAMPLES);
    if samples == 0 || samples > MAX_MC_SAMPLES {
        return Err(ApiError::bad_request(format!(
            "samples {samples} outside the serving range 1..={MAX_MC_SAMPLES}"
        )));
    }
    let work = samples.saturating_mul(u64::from(k));
    if work > MAX_MC_WORK {
        return Err(ApiError::bad_request(format!(
            "sampling work samples·k = {work} exceeds the serving envelope {MAX_MC_WORK}"
        )));
    }
    let seed = params.opt_u64("seed")?.unwrap_or(DEFAULT_MC_SEED);
    let model = params
        .opt_str("faults")?
        .unwrap_or_else(|| "uniform".to_owned());
    let p = params.opt_f64("p")?.unwrap_or(DEFAULT_MC_P);
    let faults = FaultSampler::from_name(&model, f, p).ok_or_else(|| {
        ApiError::bad_request(format!(
            "unknown fault model {model:?} (available: {})",
            FaultSampler::NAMES.join(", ")
        ))
    })?;
    // models without a probability normalize `p` out of the cache
    // key, so spelling variants share one entry
    let p_effective = faults.probability().unwrap_or(0.0);
    // validate *before* touching the cache, so malformed requests
    // never count as misses and can never be cached
    let scenario = Scenario::new(
        m,
        k,
        f,
        horizon,
        faults,
        TargetSampler::LogUniform {
            lo: 1.0,
            hi: horizon,
        },
    )
    .map_err(|e| ApiError::bad_request(format!("montecarlo: {e}")))?;
    Ok(Prepared {
        key: MemoKey::MonteCarlo {
            m,
            k,
            f,
            horizon: canon(horizon, "horizon")?,
            samples,
            seed,
            faults: model,
            p: canon(p_effective, "p")?,
        },
        cost: u64::MAX,
        compute: Box::new(move |tier| {
            // one worker thread serves one request: the engine stays
            // sequential here (its result is thread-count invariant, so
            // this choice is invisible in the payload)
            let cfg = McConfig {
                seed,
                samples,
                threads: Some(1),
                ..McConfig::default()
            };
            let report = raysearch_mc::estimate_cached(&scenario, &cfg, tier)
                .map_err(|e| ApiError::bad_request(format!("montecarlo: {e}")))?;
            let mut doc = Map::new();
            doc.insert(
                "report".to_owned(),
                serde_json::to_value(&report).expect("McReport serializes"),
            );
            doc.insert(
                "comparison".to_owned(),
                serde_json::to_value(report.comparison()).expect("comparison serializes"),
            );
            Ok(Value::Object(doc).to_json_string())
        }),
    })
}

/// The synthetic request a compute worker replays a job through: the
/// stored submit body POSTed at the endpoint's own path. Submission
/// validates through the identical reconstruction, so the worker can
/// never see a request shape that submission did not.
fn job_request(endpoint: &str, body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        version: "HTTP/1.1".to_owned(),
        path: format!("/{endpoint}"),
        query: Vec::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// Extracts the job id from a `/jobs/{id}` path (404 on malformed ids
/// — they can never name a record).
fn parse_job_path(path: &str) -> Result<u64, ApiError> {
    path.strip_prefix("/jobs/")
        .and_then(parse_job_id)
        .ok_or_else(|| ApiError {
            status: 404,
            message: format!("no such job {path:?}"),
        })
}

/// Renders one job record as the `GET /jobs/{id}` body. Keys are
/// emitted in sorted order like every other endpoint; `cached` /
/// `result` appear once the job is done (with `result` bytes identical
/// to the synchronous endpoint's payload), `error` once it has failed,
/// and the tick fields as the lifecycle reaches them.
fn job_json(rec: &JobRecord) -> String {
    let mut fields: Vec<String> = Vec::new();
    if let Some(Ok((_, cached))) = &rec.result {
        fields.push(format!("\"cached\":{cached}"));
    }
    fields.push(format!("\"class\":\"{}\"", rec.class.label()));
    fields.push(format!("\"endpoint\":\"{}\"", rec.endpoint));
    if let Some(Err((status, message))) = &rec.result {
        fields.push(format!(
            "\"error\":{{\"message\":{},\"status\":{status}}}",
            Value::String(message.clone()).to_json_string()
        ));
    }
    if rec.finished_micros > 0 {
        fields.push(format!("\"finished_micros\":{}", rec.finished_micros));
    }
    fields.push(format!("\"id\":\"{}\"", format_job_id(rec.id)));
    if rec.started_micros > 0 {
        fields.push(format!("\"queue_wait_micros\":{}", rec.queue_wait_micros()));
    }
    if let Some(Ok((payload, _))) = &rec.result {
        fields.push(format!("\"result\":{payload}"));
    }
    if rec.started_micros > 0 {
        fields.push(format!("\"started_micros\":{}", rec.started_micros));
    }
    fields.push(format!("\"state\":\"{}\"", rec.state.label()));
    fields.push(format!("\"submitted_micros\":{}", rec.submitted_micros));
    format!("{{{}}}", fields.join(","))
}

/// Rejects instances an inline evaluation must not attempt: fleet
/// construction cost grows superlinearly in `k` and `m`, so these
/// ceilings (and the `k·m·(f+2)` work envelope) keep one well-formed
/// request from exhausting server memory or monopolizing a worker.
/// Returns the admitted work estimate — the number the `/jobs` cost
/// threshold gates `evaluate` submissions on.
fn check_eval_limits(m: u32, k: u32, f: u32, horizon: f64) -> Result<u64, ApiError> {
    if m > MAX_INSTANCE_M {
        return Err(ApiError::bad_request(format!(
            "m {m} exceeds the serving ceiling {MAX_INSTANCE_M}"
        )));
    }
    if k > MAX_INSTANCE_K {
        return Err(ApiError::bad_request(format!(
            "k {k} exceeds the serving ceiling {MAX_INSTANCE_K}"
        )));
    }
    let work = u64::from(k) * u64::from(m) * (u64::from(f) + 2);
    if work > MAX_EVAL_WORK {
        return Err(ApiError::bad_request(format!(
            "instance work k·m·(f+2) = {work} exceeds the serving envelope {MAX_EVAL_WORK}"
        )));
    }
    // NaN falls through here; canonicalization rejects it right after
    if horizon > MAX_HORIZON {
        return Err(ApiError::bad_request(format!(
            "horizon {horizon} exceeds the serving ceiling {MAX_HORIZON:e}"
        )));
    }
    Ok(work)
}

fn canon(value: f64, name: &str) -> Result<CanonF64, ApiError> {
    CanonF64::new(value).map_err(|e| ApiError::bad_request(format!("{name}: {e}")))
}

/// Uniform access to request parameters: a JSON object body (POST) or
/// query-string parameters (GET), with the body taking precedence.
struct RequestParams<'a> {
    body: Option<Value>,
    req: &'a Request,
}

impl<'a> RequestParams<'a> {
    fn from(req: &'a Request) -> Result<Self, ApiError> {
        let body = match req.body_utf8() {
            Some(text) if !text.trim().is_empty() => {
                let value = serde_json::from_str(text)
                    .map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))?;
                if !matches!(value, Value::Object(_)) {
                    return Err(ApiError::bad_request("request body must be a JSON object"));
                }
                Some(value)
            }
            Some(_) => None,
            None if req.body.is_empty() => None,
            None => return Err(ApiError::bad_request("request body is not UTF-8")),
        };
        Ok(RequestParams { body, req })
    }

    /// The `(m, k, f)` instance triple; `m` defaults to 2 (the line).
    fn instance(&self) -> Result<(u32, u32, u32), ApiError> {
        let m = self.opt_u32("m")?.unwrap_or(2);
        let k = self
            .opt_u32("k")?
            .ok_or_else(|| ApiError::bad_request("missing parameter \"k\""))?;
        let f = self
            .opt_u32("f")?
            .ok_or_else(|| ApiError::bad_request("missing parameter \"f\""))?;
        Ok((m, k, f))
    }

    fn raw(&self, name: &str) -> Option<Value> {
        if let Some(body) = &self.body {
            if let Some(v) = body.get(name) {
                return Some(v.clone());
            }
        }
        self.req
            .query_param(name)
            .map(|s| Value::String(s.to_owned()))
    }

    fn opt_u32(&self, name: &str) -> Result<Option<u32>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::Int(i)) => u32::try_from(i)
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} out of range: {i}"))),
            Some(Value::UInt(u)) => u32::try_from(u)
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} out of range: {u}"))),
            Some(Value::String(s)) => s
                .parse::<u32>()
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} is not an integer: {s:?}"))),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be an integer, got {other:?}"
            ))),
        }
    }

    fn opt_u64(&self, name: &str) -> Result<Option<u64>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::Int(i)) => u64::try_from(i)
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} out of range: {i}"))),
            Some(Value::UInt(u)) => Ok(Some(u)),
            Some(Value::String(s)) => s
                .parse::<u64>()
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} is not an integer: {s:?}"))),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be an integer, got {other:?}"
            ))),
        }
    }

    fn opt_f64(&self, name: &str) -> Result<Option<f64>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::Float(x)) => Ok(Some(x)),
            Some(Value::Int(i)) => Ok(Some(i as f64)),
            Some(Value::UInt(u)) => Ok(Some(u as f64)),
            Some(Value::String(s)) => s
                .parse::<f64>()
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} is not a number: {s:?}"))),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be a number, got {other:?}"
            ))),
        }
    }

    fn opt_str(&self, name: &str) -> Result<Option<String>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::String(s)) => Ok(Some(s)),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be a string, got {other:?}"
            ))),
        }
    }
}
