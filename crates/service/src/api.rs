//! Endpoint implementations and the shared service state.
//!
//! Every evaluation endpoint is a pure function of its canonicalized
//! parameters, so each one is memoized in the sharded LRU cache behind a
//! [`MemoKey`]. Responses wrap the cached payload as
//! `{"cached": <bool>, "result": <payload>}` — the payload string is
//! byte-for-byte identical between the computing request and every
//! cache hit after it (deterministic JSON bodies), while the `cached`
//! flag reflects this particular request.
//!
//! | endpoint | method | parameters | payload |
//! |---|---|---|---|
//! | `/healthz` | GET | — | service identity (never cached) |
//! | `/stats` | GET | — | request + cache counters (never cached) |
//! | `/closed_form` | GET/POST | `m?`, `k`, `f` *or* `eta` | regime + `A(m,k,f)` / `Λ(η)` |
//! | `/evaluate` | POST | `m?`, `k`, `f`, `horizon?` | exact [`EvalReport`](raysearch_core::EvalReport) |
//! | `/verdict` | POST | `m?`, `k`, `f`, `horizon?`, `eps?` | [`TightnessReport`](raysearch_core::TightnessReport) |
//! | `/campaign` | POST | `id`, `max_k?`, `threads?` | schema-v1 report rows |
//! | `/montecarlo` | POST | `m?`, `k`, `f`, `horizon?`, `samples?`, `seed?`, `faults?`, `p?` | [`McReport`](raysearch_mc::McReport) + closed-form comparison |

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use raysearch_bounds::{lambda_big, RayInstance, Regime};
use raysearch_core::{
    evaluate_optimal_cached, verdict::verify_tightness_cached, CanonF64, CompileCache,
    CompiledFleet, CoreError, FleetKey,
};
use raysearch_mc::{FaultSampler, McConfig, Scenario, TargetSampler};
use serde_json::{Map, Value};

use crate::cache::{CacheStats, ShardedLru};
use crate::http::{Request, Response};
use crate::server::Handler;
use crate::telemetry::{
    metrics_response, push_counter, push_gauge, trace_index_json, trace_json, Span, SpanSet,
    Telemetry, TRACE_HEADER,
};

/// Default evaluation horizon when a request omits `horizon`.
pub const DEFAULT_HORIZON: f64 = 1e4;
/// Default falsification margin when a `/verdict` request omits `eps`.
pub const DEFAULT_EPS: f64 = 1e-2;
/// Default `k`-axis ceiling for `/campaign` requests.
pub const DEFAULT_CAMPAIGN_MAX_K: u32 = 4;
/// Hard ceiling for `/campaign`'s `max_k` — a grid request is served
/// inline by a worker thread, so its size must stay bounded.
pub const MAX_CAMPAIGN_MAX_K: u32 = 12;
/// Serving ceiling for `k` on `/evaluate` and `/verdict`. The
/// log-domain evaluation pipeline is finite at any fleet size (the old
/// linear pipeline overflowed to an error from `k ≈ 139` at deep
/// horizons), so this is purely a bounded-work ceiling: compute grows
/// superlinearly in `k`, and one `k = 4096` deep-horizon request is
/// already seconds of worker time.
pub const MAX_INSTANCE_K: u32 = 4096;
/// Serving ceiling for `m` on `/evaluate` and `/verdict` — like
/// [`MAX_INSTANCE_K`] a bounded-work limit, not a numeric one, raised
/// from the overflow-era 128. It stays below the `k` ceiling because
/// per-request memory carries an `m × k` piece table.
pub const MAX_INSTANCE_M: u32 = 512;
/// Bounded-work envelope for one inline `/evaluate` / `/verdict`
/// request: the evaluator walks `k` tours of `O(m·(f+2))` excursions
/// each, so `k·m·(f+2)` is proportional to worker time. The cap admits
/// the heaviest supported large-fleet instance (`m = 2`, `k = 4096`,
/// `f = k−1` ≈ 34M units, seconds of compute) while rejecting shapes
/// that would tie up a fixed-pool worker for minutes.
pub const MAX_EVAL_WORK: u64 = 1 << 26;
/// Serving ceiling for `horizon` on `/evaluate` and `/verdict`.
pub const MAX_HORIZON: f64 = 1e15;
/// Default Monte-Carlo sample budget when a `/montecarlo` request omits
/// `samples`.
pub const DEFAULT_MC_SAMPLES: u64 = 20_000;
/// Serving ceiling for `/montecarlo`'s `samples` — one request is served
/// inline by a worker thread, so its budget must stay bounded.
pub const MAX_MC_SAMPLES: u64 = 200_000;
/// Bounded-work envelope for one `/montecarlo` request: each sample
/// costs one first-visit lookup per robot, so `samples·k` is
/// proportional to worker time. The cap preserves the historical
/// heaviest request (200k samples at the old `k = 128` ceiling is
/// 25.6M) while keeping the raised fleet ceiling honest — `k = 4096`
/// is served with proportionally smaller sample budgets.
pub const MAX_MC_WORK: u64 = 1 << 25;
/// Default master seed when a `/montecarlo` request omits `seed`.
pub const DEFAULT_MC_SEED: u64 = 1707;
/// Monte-Carlo samples per cell when `/campaign` runs E11: 12 cells run
/// inline on one worker thread, so the whole request stays within the
/// same bounded-work envelope as a single `/montecarlo` request.
pub const CAMPAIGN_MC_SAMPLES: u64 = 5_000;
/// Default per-robot fault probability for the `iid` and `byzantine`
/// fault models.
pub const DEFAULT_MC_P: f64 = 0.1;
/// Capacity of the compiled-fleet memo tier (entries, LRU). Artifacts
/// are keyed by fleet *geometry* — deliberately `f`-free — so one entry
/// serves every `/evaluate`, `/verdict` and `/montecarlo` request over
/// the same `(strategy, m, k, α-or-η, horizon)`.
pub const COMPILE_CACHE_CAPACITY: usize = 64;
/// Shards of the compiled-fleet memo tier.
pub const COMPILE_CACHE_SHARDS: usize = 8;

/// The endpoint names, the single source of truth for dispatch, the
/// 405-vs-404 distinction, and the `/healthz` advertisement.
pub const ENDPOINTS: &[&str] = &[
    "closed_form",
    "evaluate",
    "verdict",
    "campaign",
    "montecarlo",
    "healthz",
    "stats",
    "metrics",
    "debug/slow",
    "debug/trace",
];

/// The canonicalized identity of one memoizable computation.
///
/// Float parameters go through [`CanonF64`], so requests spelling the
/// same instance differently (`-0.0` vs `0.0`, `1e4` vs `10000`) share
/// one cache entry and one shard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemoKey {
    /// `/closed_form` over an `(m, k, f)` instance.
    ClosedForm {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
    },
    /// `/closed_form` over a raw ratio argument `η`.
    Lambda {
        /// The canonicalized `η`.
        eta: CanonF64,
    },
    /// `/evaluate` of the optimal strategy for an instance.
    Evaluate {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
        /// The canonicalized evaluation horizon.
        horizon: CanonF64,
    },
    /// `/verdict` tightness verification for an instance.
    Verdict {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
        /// The canonicalized evaluation horizon.
        horizon: CanonF64,
        /// The canonicalized falsification margin.
        eps: CanonF64,
    },
    /// `/campaign` run of one registered experiment.
    Campaign {
        /// The experiment id (`"e1"` … `"e11"`).
        id: String,
        /// The `k`-axis ceiling.
        max_k: u32,
    },
    /// `/montecarlo` estimation of an instance under a fault model.
    ///
    /// The seed and sample count are part of the key — the engine is
    /// bit-deterministic in them (and thread-count invariant), so the
    /// cached payload is byte-identical to a cold computation.
    MonteCarlo {
        /// Number of rays.
        m: u32,
        /// Number of robots.
        k: u32,
        /// Number of faulty robots.
        f: u32,
        /// The canonicalized evaluation horizon.
        horizon: CanonF64,
        /// Monte-Carlo samples.
        samples: u64,
        /// The master seed.
        seed: u64,
        /// The fault-model name (`"worst"`, `"uniform"`, `"iid"`,
        /// `"byzantine"`).
        faults: String,
        /// The canonicalized fault probability (normalized to `0` for
        /// models that ignore it, so spelling variants share an entry).
        p: CanonF64,
    },
}

impl MemoKey {
    /// Renders the key as a stable, human-readable canonical string —
    /// the representation the consistent-hash router scores backends
    /// against (see [`routing_key`]). Distinct keys always render
    /// distinctly: integer fields print exactly, and the float fields
    /// go through [`CanonF64`]'s shortest-round-trip `Display`, which is
    /// injective on the canonicalized (NaN-free, `-0.0`-free) domain.
    pub fn canonical_string(&self) -> String {
        match self {
            MemoKey::ClosedForm { m, k, f } => format!("closed_form:m={m},k={k},f={f}"),
            MemoKey::Lambda { eta } => format!("lambda:eta={eta}"),
            MemoKey::Evaluate { m, k, f, horizon } => {
                format!("evaluate:m={m},k={k},f={f},h={horizon}")
            }
            MemoKey::Verdict {
                m,
                k,
                f,
                horizon,
                eps,
            } => format!("verdict:m={m},k={k},f={f},h={horizon},eps={eps}"),
            MemoKey::Campaign { id, max_k } => format!("campaign:id={id},max_k={max_k}"),
            MemoKey::MonteCarlo {
                m,
                k,
                f,
                horizon,
                samples,
                seed,
                faults,
                p,
            } => format!(
                "montecarlo:m={m},k={k},f={f},h={horizon},samples={samples},seed={seed},faults={faults},p={p}"
            ),
        }
    }
}

/// Derives the canonical routing key for one request — the string a
/// consistent-hash router rendezvous-scores backends against.
///
/// For memoizable endpoints this is the [`MemoKey`]'s canonical string
/// with the same parameter canonicalization the backend's cache applies
/// (defaults filled in, floats through [`CanonF64`], fault-model `p`
/// normalized), so every spelling of the same logical request —
/// query-string vs JSON body, `1e4` vs `10000` — routes to the same
/// backend and meets the same memo entry there. Requests that do not
/// parse into a memo key (unknown paths, malformed parameters) fall
/// back to a raw `method:path?query:body` key: they still route
/// *deterministically* (a replayed tape reproduces shard placement
/// exactly), they just cannot share a shard with a well-formed spelling.
pub fn routing_key(req: &Request) -> String {
    match routing_memo_key(req) {
        Some(key) => key.canonical_string(),
        None => {
            let mut raw = format!("raw:{}:{}", req.method, req.path);
            for (i, (k, v)) in req.query.iter().enumerate() {
                raw.push(if i == 0 { '?' } else { '&' });
                raw.push_str(k);
                raw.push('=');
                raw.push_str(v);
            }
            raw.push(':');
            raw.push_str(&String::from_utf8_lossy(&req.body));
            raw
        }
    }
}

/// Parses `req` into the [`MemoKey`] its target endpoint would memoize
/// under, applying the same defaults and canonicalization. `None` when
/// the path is not a memoizable endpoint or the parameters do not parse
/// — the router then routes on the raw fallback key.
fn routing_memo_key(req: &Request) -> Option<MemoKey> {
    let params = RequestParams::from(req).ok()?;
    match req.path.as_str() {
        "/closed_form" => {
            if let Some(eta) = params.opt_f64("eta").ok()? {
                return Some(MemoKey::Lambda {
                    eta: CanonF64::new(eta).ok()?,
                });
            }
            let (m, k, f) = params.instance().ok()?;
            Some(MemoKey::ClosedForm { m, k, f })
        }
        "/evaluate" => {
            let (m, k, f) = params.instance().ok()?;
            let horizon = params.opt_f64("horizon").ok()?.unwrap_or(DEFAULT_HORIZON);
            Some(MemoKey::Evaluate {
                m,
                k,
                f,
                horizon: CanonF64::new(horizon).ok()?,
            })
        }
        "/verdict" => {
            let (m, k, f) = params.instance().ok()?;
            let horizon = params.opt_f64("horizon").ok()?.unwrap_or(DEFAULT_HORIZON);
            let eps = params.opt_f64("eps").ok()?.unwrap_or(DEFAULT_EPS);
            Some(MemoKey::Verdict {
                m,
                k,
                f,
                horizon: CanonF64::new(horizon).ok()?,
                eps: CanonF64::new(eps).ok()?,
            })
        }
        "/campaign" => {
            let id = params.opt_str("id").ok()??;
            let max_k = params
                .opt_u32("max_k")
                .ok()?
                .unwrap_or(DEFAULT_CAMPAIGN_MAX_K)
                .max(1);
            Some(MemoKey::Campaign { id, max_k })
        }
        "/montecarlo" => {
            let (m, k, f) = params.instance().ok()?;
            let horizon = params.opt_f64("horizon").ok()?.unwrap_or(DEFAULT_HORIZON);
            let samples = params
                .opt_u64("samples")
                .ok()?
                .unwrap_or(DEFAULT_MC_SAMPLES);
            let seed = params.opt_u64("seed").ok()?.unwrap_or(DEFAULT_MC_SEED);
            let model = params
                .opt_str("faults")
                .ok()?
                .unwrap_or_else(|| "uniform".to_owned());
            let p = params.opt_f64("p").ok()?.unwrap_or(DEFAULT_MC_P);
            let faults = FaultSampler::from_name(&model, f, p)?;
            let p_effective = faults.probability().unwrap_or(0.0);
            Some(MemoKey::MonteCarlo {
                m,
                k,
                f,
                horizon: CanonF64::new(horizon).ok()?,
                samples,
                seed,
                faults: model,
                p: CanonF64::new(p_effective).ok()?,
            })
        }
        _ => None,
    }
}

/// An endpoint failure: an HTTP status plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status to respond with.
    pub status: u16,
    /// The message for the `{"error": ...}` body.
    pub message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Shared state of one server instance: the result memo cache, the
/// compiled-fleet memo tier beneath it, and counters.
///
/// The two tiers cache different things: the result LRU holds finished
/// payload *strings* keyed by the full request identity ([`MemoKey`],
/// including `f`, `eps`, seeds…), while the compile tier holds shared
/// [`CompiledFleet`] artifacts keyed by geometry alone ([`FleetKey`]).
/// A result-cache miss that shares geometry with an earlier request —
/// same `(m, k, horizon)`, different `f` in the trivial regime, or a
/// `/verdict` after an `/evaluate` — still skips recompilation.
#[derive(Debug)]
pub struct ServiceState {
    cache: ShardedLru<MemoKey, String>,
    compile: ShardedLru<FleetKey, Arc<CompiledFleet>>,
    started: Instant,
    requests: AtomicU64,
    shed: AtomicU64,
    telemetry: Telemetry,
}

/// The compile tier viewed through the core's [`CompileCache`] seam, so
/// `_cached` entry points can consume it directly. Doubles as the
/// compile-span capture point: actual fleet builds (never memo hits)
/// accumulate their wall time into `compile_micros` when attached.
struct CompileTier<'a> {
    cache: &'a ShardedLru<FleetKey, Arc<CompiledFleet>>,
    compile_micros: Option<&'a Cell<u64>>,
}

impl CompileCache for CompileTier<'_> {
    fn get_or_compile(
        &self,
        key: FleetKey,
        build: &mut dyn FnMut() -> Result<CompiledFleet, CoreError>,
    ) -> Result<Arc<CompiledFleet>, CoreError> {
        self.cache
            .try_get_or_insert_with(key, || {
                let before = Instant::now();
                let built = build().map(Arc::new);
                if let Some(cell) = self.compile_micros {
                    cell.set(cell.get() + before.elapsed().as_micros() as u64);
                }
                built
            })
            .map(|(fleet, _hit)| fleet)
    }
}

impl ServiceState {
    /// Creates service state with a memo cache of `capacity` entries
    /// over `shards` shards (the compile tier is sized independently by
    /// [`COMPILE_CACHE_CAPACITY`] / [`COMPILE_CACHE_SHARDS`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        ServiceState {
            cache: ShardedLru::new(capacity, shards),
            compile: ShardedLru::new(COMPILE_CACHE_CAPACITY, COMPILE_CACHE_SHARDS),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            telemetry: Telemetry::new(),
        }
    }

    /// The service's telemetry registry (trace minting, span
    /// histograms, slow log) — exposed so binaries can apply
    /// `--slow-log-micros` and tests can assert on recorded counts.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot of the result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the compiled-fleet memo tier's counters.
    pub fn compile_stats(&self) -> CacheStats {
        self.compile.stats()
    }

    /// Total requests dispatched so far.
    pub fn requests_total(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections shed with a `503` by the acceptor so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Computes (or recalls) the deterministic payload for `key`.
    /// Returns the payload JSON string and whether it was a cache hit.
    /// Concurrent identical requests coalesce into one computation (the
    /// shard stays locked while it runs), and failed computations are
    /// never cached, so a transiently bad request cannot poison the
    /// entry for a later valid one.
    pub fn memoized(
        &self,
        key: MemoKey,
        compute: impl FnOnce() -> Result<String, ApiError>,
    ) -> Result<(String, bool), ApiError> {
        self.cache.try_get_or_insert_with(key, compute)
    }

    /// [`ServiceState::memoized`] with span attribution: the lookup
    /// overhead (total minus compute) lands in `cache_lookup`, actual
    /// fleet builds land in `compile` (captured inside the
    /// [`CompileTier`] handed to `compute`), and the rest of the compute
    /// closure lands in `evaluate`. Cache hits record only
    /// `cache_lookup`.
    fn memoized_spanned(
        &self,
        spans: &mut SpanSet,
        key: MemoKey,
        compute: impl FnOnce(&CompileTier) -> Result<String, ApiError>,
    ) -> Result<(String, bool), ApiError> {
        let compute_micros = Cell::new(0u64);
        let compile_micros = Cell::new(0u64);
        let entered = spans.elapsed_micros();
        let result = self.cache.try_get_or_insert_with(key, || {
            let started = Instant::now();
            let tier = CompileTier {
                cache: &self.compile,
                compile_micros: Some(&compile_micros),
            };
            let out = compute(&tier);
            compute_micros.set(started.elapsed().as_micros() as u64);
            out
        });
        let total = spans.elapsed_micros().saturating_sub(entered);
        let compute_t = compute_micros.get();
        let compile_t = compile_micros.get();
        let hit = if matches!(&result, Ok((_, true))) {
            "true"
        } else {
            "false"
        };
        // attribute the block as three consecutive intervals — lookup
        // overhead, then compile, then the rest of the compute — so the
        // trace tree shows disjoint, ordered children whose durations
        // sum to the measured block
        let lookup_end = entered + total.saturating_sub(compute_t);
        spans.add_interval(Span::CacheLookup, entered, lookup_end, &[("hit", hit)]);
        if compute_t > 0 {
            let compile_end = lookup_end + compile_t;
            spans.add_interval(Span::Compile, lookup_end, compile_end, &[]);
            spans.add_interval(
                Span::Evaluate,
                compile_end,
                compile_end + compute_t.saturating_sub(compile_t),
                &[],
            );
        }
        result
    }

    /// Dispatches one parsed request to its endpoint. Infallible at the
    /// HTTP layer: endpoint errors become JSON error responses. Every
    /// response echoes the request's `x-raysearch-trace` id (minted
    /// here when the client sent none), and the request's span set is
    /// recorded into the telemetry registry.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let trace = self.telemetry.trace_for(req);
        let mut spans = SpanSet::start();
        let result = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/stats") => Ok(self.stats_response()),
            ("GET", "/metrics") => Ok(self.metrics()),
            ("GET", "/debug/slow") => Ok(Response::ok(self.telemetry.slow_log_json())),
            ("GET", "/debug/trace") => {
                Ok(Response::ok(trace_index_json(self.telemetry.recorder())))
            }
            ("GET", path) if path.starts_with("/debug/trace/") => Ok(self.debug_trace(path)),
            ("GET" | "POST", "/closed_form") => self.closed_form(req, &mut spans),
            ("POST", "/evaluate") => self.evaluate(req, &mut spans),
            ("POST", "/verdict") => self.verdict(req, &mut spans),
            ("POST", "/campaign") => self.campaign(req, &mut spans),
            ("POST", "/montecarlo") => self.montecarlo(req, &mut spans),
            (_, path)
                if path
                    .strip_prefix('/')
                    .is_some_and(|p| ENDPOINTS.contains(&p)) =>
            {
                Err(ApiError {
                    status: 405,
                    message: format!("method {} not allowed for {}", req.method, req.path),
                })
            }
            (_, path) => Err(ApiError {
                status: 404,
                message: format!("no such endpoint {path:?}"),
            }),
        };
        let response = match result {
            Ok(response) => response,
            Err(e) => Response::error(e.status, &e.message),
        };
        let status = response.status;
        self.telemetry.observe(req, &trace, status, spans);
        response.with_header(TRACE_HEADER, trace)
    }

    /// `GET /debug/trace/{id}`: the stored span tree for one trace id,
    /// or a 404 when the id was never sampled (or has been evicted from
    /// the bounded ring).
    fn debug_trace(&self, path: &str) -> Response {
        let id = path.strip_prefix("/debug/trace/").unwrap_or_default();
        let key = raysearch_core::TraceRecorder::key_for(id);
        match self.telemetry.recorder().get(key) {
            Some(trace) => Response::ok(trace_json(&trace, "raysearchd")),
            None => Response::error(404, &format!("no stored trace {id:?}")),
        }
    }

    fn healthz(&self) -> Response {
        let mut doc = Map::new();
        doc.insert("status".to_owned(), Value::String("ok".to_owned()));
        doc.insert("service".to_owned(), Value::String("raysearchd".to_owned()));
        doc.insert("paper".to_owned(), Value::String("1707.05077".to_owned()));
        doc.insert(
            "endpoints".to_owned(),
            Value::Array(
                ENDPOINTS
                    .iter()
                    .map(|e| Value::String((*e).to_owned()))
                    .collect(),
            ),
        );
        Response::ok(Value::Object(doc).to_json_string())
    }

    fn stats_response(&self) -> Response {
        let cache = self.cache.stats();
        let compile = self.compile.stats();
        let mut doc = Map::new();
        doc.insert(
            "requests_total".to_owned(),
            serde_json::to_value(self.requests_total()).expect("u64 serializes"),
        );
        doc.insert(
            "shed_total".to_owned(),
            serde_json::to_value(self.shed_total()).expect("u64 serializes"),
        );
        doc.insert(
            "uptime_micros".to_owned(),
            serde_json::to_value(self.started.elapsed().as_micros() as u64)
                .expect("u64 serializes"),
        );
        doc.insert(
            "cache".to_owned(),
            serde_json::to_value(cache).expect("stats serialize"),
        );
        doc.insert(
            "compile_hits".to_owned(),
            serde_json::to_value(compile.hits).expect("u64 serializes"),
        );
        doc.insert(
            "compile_misses".to_owned(),
            serde_json::to_value(compile.misses).expect("u64 serializes"),
        );
        doc.insert(
            "compile_entries".to_owned(),
            serde_json::to_value(compile.entries as u64).expect("u64 serializes"),
        );
        Response::ok(Value::Object(doc).to_json_string())
    }

    /// The service's `GET /metrics`: Prometheus text exposition of the
    /// request/shed counters, both cache tiers, and the per-endpoint
    /// span latency histograms.
    fn metrics(&self) -> Response {
        let cache = self.cache.stats();
        let compile = self.compile.stats();
        let mut out = String::new();
        push_counter(
            &mut out,
            "raysearchd_requests_total",
            "Requests dispatched by this backend.",
            self.requests_total(),
        );
        push_counter(
            &mut out,
            "raysearchd_shed_total",
            "Connections shed with a 503 by the acceptor.",
            self.shed_total(),
        );
        push_counter(
            &mut out,
            "raysearchd_cache_hits_total",
            "Result-cache lookups answered from the cache.",
            cache.hits,
        );
        push_counter(
            &mut out,
            "raysearchd_cache_misses_total",
            "Result-cache lookups that had to compute.",
            cache.misses,
        );
        push_counter(
            &mut out,
            "raysearchd_cache_evictions_total",
            "Result-cache entries displaced to make room.",
            cache.evictions,
        );
        push_gauge(
            &mut out,
            "raysearchd_cache_entries",
            "Result-cache entries currently resident.",
            cache.entries as u64,
        );
        push_counter(
            &mut out,
            "raysearchd_compile_hits_total",
            "Compile-tier lookups answered from the memo.",
            compile.hits,
        );
        push_counter(
            &mut out,
            "raysearchd_compile_misses_total",
            "Compile-tier lookups that had to build a fleet.",
            compile.misses,
        );
        push_gauge(
            &mut out,
            "raysearchd_compile_entries",
            "Compiled-fleet artifacts currently resident.",
            compile.entries as u64,
        );
        push_gauge(
            &mut out,
            "raysearchd_uptime_micros",
            "Microseconds since this backend started.",
            self.started.elapsed().as_micros() as u64,
        );
        push_gauge(
            &mut out,
            "raysearchd_uptime_seconds",
            "Seconds since this backend started.",
            self.started.elapsed().as_secs(),
        );
        let recorder = self.telemetry.recorder();
        push_gauge(
            &mut out,
            "raysearchd_traces_stored",
            "Completed span traces resident in the trace ring.",
            recorder.stored(),
        );
        push_counter(
            &mut out,
            "raysearchd_traces_dropped_total",
            "Span traces evicted from the bounded trace ring.",
            recorder.dropped_total(),
        );
        self.telemetry
            .render_prometheus_histograms(&mut out, "raysearchd");
        metrics_response(out)
    }

    fn closed_form(&self, req: &Request, spans: &mut SpanSet) -> Result<Response, ApiError> {
        let params = spans.time(Span::Parse, || RequestParams::from(req))?;
        if let Some(eta) = params.opt_f64("eta")? {
            let key = MemoKey::Lambda {
                eta: canon(eta, "eta")?,
            };
            let (payload, cached) = self.memoized_spanned(spans, key, |_tier| {
                let lambda =
                    lambda_big(eta).map_err(|e| ApiError::bad_request(format!("lambda: {e}")))?;
                let mut doc = Map::new();
                doc.insert("eta".to_owned(), Value::Float(eta));
                doc.insert("lambda".to_owned(), Value::Float(lambda));
                Ok(Value::Object(doc).to_json_string())
            })?;
            return Ok(spans.time(Span::Serialize, || wrap(payload, cached)));
        }

        let (m, k, f) = params.instance()?;
        let key = MemoKey::ClosedForm { m, k, f };
        let (payload, cached) = self.memoized_spanned(spans, key, |_tier| {
            let instance = RayInstance::new(m, k, f)
                .map_err(|e| ApiError::bad_request(format!("instance: {e}")))?;
            let (regime, a) = match instance.regime() {
                Regime::Searchable { ratio } => ("searchable", Some(ratio)),
                Regime::Trivial => ("trivial", None),
                Regime::Impossible => ("impossible", None),
            };
            let mut doc = Map::new();
            doc.insert("m".to_owned(), Value::Int(i64::from(m)));
            doc.insert("k".to_owned(), Value::Int(i64::from(k)));
            doc.insert("f".to_owned(), Value::Int(i64::from(f)));
            doc.insert("q".to_owned(), Value::Int(i64::from(instance.q())));
            doc.insert("eta".to_owned(), Value::Float(instance.eta()));
            doc.insert("regime".to_owned(), Value::String(regime.to_owned()));
            doc.insert("a".to_owned(), a.map_or(Value::Null, Value::Float));
            Ok(Value::Object(doc).to_json_string())
        })?;
        Ok(spans.time(Span::Serialize, || wrap(payload, cached)))
    }

    fn evaluate(&self, req: &Request, spans: &mut SpanSet) -> Result<Response, ApiError> {
        let params = spans.time(Span::Parse, || RequestParams::from(req))?;
        let (m, k, f) = params.instance()?;
        let horizon = params.opt_f64("horizon")?.unwrap_or(DEFAULT_HORIZON);
        check_eval_limits(m, k, f, horizon)?;
        let key = MemoKey::Evaluate {
            m,
            k,
            f,
            horizon: canon(horizon, "horizon")?,
        };
        let (payload, cached) = self.memoized_spanned(spans, key, |tier| {
            let report = evaluate_optimal_cached(tier, m, k, f, horizon)
                .map_err(|e| ApiError::bad_request(format!("evaluate: {e}")))?;
            let mut doc = Map::new();
            doc.insert("m".to_owned(), Value::Int(i64::from(m)));
            doc.insert("k".to_owned(), Value::Int(i64::from(k)));
            doc.insert("f".to_owned(), Value::Int(i64::from(f)));
            doc.insert("horizon".to_owned(), Value::Float(horizon));
            doc.insert(
                "report".to_owned(),
                serde_json::to_value(report).expect("EvalReport serializes"),
            );
            Ok(Value::Object(doc).to_json_string())
        })?;
        Ok(spans.time(Span::Serialize, || wrap(payload, cached)))
    }

    fn verdict(&self, req: &Request, spans: &mut SpanSet) -> Result<Response, ApiError> {
        let params = spans.time(Span::Parse, || RequestParams::from(req))?;
        let (m, k, f) = params.instance()?;
        let horizon = params.opt_f64("horizon")?.unwrap_or(DEFAULT_HORIZON);
        let eps = params.opt_f64("eps")?.unwrap_or(DEFAULT_EPS);
        check_eval_limits(m, k, f, horizon)?;
        let key = MemoKey::Verdict {
            m,
            k,
            f,
            horizon: canon(horizon, "horizon")?,
            eps: canon(eps, "eps")?,
        };
        let (payload, cached) = self.memoized_spanned(spans, key, |tier| {
            let report = verify_tightness_cached(tier, m, k, f, horizon, eps)
                .map_err(|e| ApiError::bad_request(format!("verdict: {e}")))?;
            Ok(serde_json::to_value(report)
                .expect("TightnessReport serializes")
                .to_json_string())
        })?;
        Ok(spans.time(Span::Serialize, || wrap(payload, cached)))
    }

    fn campaign(&self, req: &Request, spans: &mut SpanSet) -> Result<Response, ApiError> {
        let params = spans.time(Span::Parse, || RequestParams::from(req))?;
        let id = params
            .opt_str("id")?
            .ok_or_else(|| ApiError::bad_request("missing parameter \"id\""))?;
        if !raysearch_bench::experiments::ALL.contains(&id.as_str()) {
            return Err(ApiError::bad_request(format!(
                "unknown experiment {id:?} (available: {})",
                raysearch_bench::experiments::ALL.join(", ")
            )));
        }
        let max_k = params
            .opt_u32("max_k")?
            .unwrap_or(DEFAULT_CAMPAIGN_MAX_K)
            .max(1);
        if max_k > MAX_CAMPAIGN_MAX_K {
            return Err(ApiError::bad_request(format!(
                "max_k {max_k} exceeds the serving ceiling {MAX_CAMPAIGN_MAX_K}"
            )));
        }
        // threads shapes only the schedule, never the rows (the campaign
        // engine is deterministic), so it is not part of the cache key
        let threads = params.opt_u32("threads")?.map(|t| t.max(1) as usize);
        let key = MemoKey::Campaign {
            id: id.clone(),
            max_k,
        };
        let (payload, cached) = self.memoized_spanned(spans, key, |_tier| {
            let cfg = raysearch_bench::experiments::Config {
                max_k,
                threads,
                // bounded like /montecarlo: E11 runs 12 Monte-Carlo
                // cells inline on one worker, so its per-cell budget is
                // pinned far below the suite default (and is a fixed
                // constant, keeping the payload a pure function of
                // (id, max_k))
                mc_samples: CAMPAIGN_MC_SAMPLES,
                ..raysearch_bench::experiments::Config::default()
            };
            let reports = raysearch_bench::experiments::run_experiment(&id, &cfg)
                .expect("id membership checked above");
            let campaigns: Vec<Value> = reports
                .iter()
                .map(|r| {
                    // schema-v1 rows, minus the timing/thread metadata so
                    // the body is a pure function of (id, max_k)
                    let mut doc = Map::new();
                    doc.insert("id".to_owned(), Value::String(r.id().to_owned()));
                    doc.insert("title".to_owned(), Value::String(r.title().to_owned()));
                    doc.insert("cells".to_owned(), Value::Int(r.rows().len() as i64));
                    doc.insert("rows".to_owned(), Value::Array(r.rows().to_vec()));
                    Value::Object(doc)
                })
                .collect();
            let mut doc = Map::new();
            doc.insert("schema_version".to_owned(), Value::Int(1));
            doc.insert("id".to_owned(), Value::String(id.clone()));
            doc.insert("max_k".to_owned(), Value::Int(i64::from(max_k)));
            doc.insert("campaigns".to_owned(), Value::Array(campaigns));
            Ok(Value::Object(doc).to_json_string())
        })?;
        Ok(spans.time(Span::Serialize, || wrap(payload, cached)))
    }

    fn montecarlo(&self, req: &Request, spans: &mut SpanSet) -> Result<Response, ApiError> {
        let params = spans.time(Span::Parse, || RequestParams::from(req))?;
        let (m, k, f) = params.instance()?;
        let horizon = params.opt_f64("horizon")?.unwrap_or(DEFAULT_HORIZON);
        check_eval_limits(m, k, f, horizon)?;
        if k > raysearch_mc::MAX_FLEET {
            return Err(ApiError::bad_request(format!(
                "k {k} exceeds the Monte-Carlo fleet ceiling {}",
                raysearch_mc::MAX_FLEET
            )));
        }
        let samples = params.opt_u64("samples")?.unwrap_or(DEFAULT_MC_SAMPLES);
        if samples == 0 || samples > MAX_MC_SAMPLES {
            return Err(ApiError::bad_request(format!(
                "samples {samples} outside the serving range 1..={MAX_MC_SAMPLES}"
            )));
        }
        let work = samples.saturating_mul(u64::from(k));
        if work > MAX_MC_WORK {
            return Err(ApiError::bad_request(format!(
                "sampling work samples·k = {work} exceeds the serving envelope {MAX_MC_WORK}"
            )));
        }
        let seed = params.opt_u64("seed")?.unwrap_or(DEFAULT_MC_SEED);
        let model = params
            .opt_str("faults")?
            .unwrap_or_else(|| "uniform".to_owned());
        let p = params.opt_f64("p")?.unwrap_or(DEFAULT_MC_P);
        let faults = FaultSampler::from_name(&model, f, p).ok_or_else(|| {
            ApiError::bad_request(format!(
                "unknown fault model {model:?} (available: {})",
                FaultSampler::NAMES.join(", ")
            ))
        })?;
        // models without a probability normalize `p` out of the cache
        // key, so spelling variants share one entry
        let p_effective = faults.probability().unwrap_or(0.0);
        // validate *before* touching the cache, so malformed requests
        // never count as misses and can never be cached
        let scenario = Scenario::new(
            m,
            k,
            f,
            horizon,
            faults,
            TargetSampler::LogUniform {
                lo: 1.0,
                hi: horizon,
            },
        )
        .map_err(|e| ApiError::bad_request(format!("montecarlo: {e}")))?;
        let key = MemoKey::MonteCarlo {
            m,
            k,
            f,
            horizon: canon(horizon, "horizon")?,
            samples,
            seed,
            faults: model,
            p: canon(p_effective, "p")?,
        };
        let (payload, cached) = self.memoized_spanned(spans, key, |tier| {
            // one worker thread serves one request: the engine stays
            // sequential here (its result is thread-count invariant, so
            // this choice is invisible in the payload)
            let cfg = McConfig {
                seed,
                samples,
                threads: Some(1),
                ..McConfig::default()
            };
            let report = raysearch_mc::estimate_cached(&scenario, &cfg, tier)
                .map_err(|e| ApiError::bad_request(format!("montecarlo: {e}")))?;
            let mut doc = Map::new();
            doc.insert(
                "report".to_owned(),
                serde_json::to_value(&report).expect("McReport serializes"),
            );
            doc.insert(
                "comparison".to_owned(),
                serde_json::to_value(report.comparison()).expect("comparison serializes"),
            );
            Ok(Value::Object(doc).to_json_string())
        })?;
        Ok(spans.time(Span::Serialize, || wrap(payload, cached)))
    }
}

impl Handler for ServiceState {
    fn handle(&self, req: &Request) -> Response {
        ServiceState::handle(self, req)
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Wraps a deterministic payload with the per-request `cached` flag.
fn wrap(payload: String, cached: bool) -> Response {
    Response::ok(format!("{{\"cached\":{cached},\"result\":{payload}}}"))
}

/// Rejects instances an inline evaluation must not attempt: fleet
/// construction cost grows superlinearly in `k` and `m`, so these
/// ceilings (and the `k·m·(f+2)` work envelope) keep one well-formed
/// request from exhausting server memory or monopolizing a worker.
fn check_eval_limits(m: u32, k: u32, f: u32, horizon: f64) -> Result<(), ApiError> {
    if m > MAX_INSTANCE_M {
        return Err(ApiError::bad_request(format!(
            "m {m} exceeds the serving ceiling {MAX_INSTANCE_M}"
        )));
    }
    if k > MAX_INSTANCE_K {
        return Err(ApiError::bad_request(format!(
            "k {k} exceeds the serving ceiling {MAX_INSTANCE_K}"
        )));
    }
    let work = u64::from(k) * u64::from(m) * (u64::from(f) + 2);
    if work > MAX_EVAL_WORK {
        return Err(ApiError::bad_request(format!(
            "instance work k·m·(f+2) = {work} exceeds the serving envelope {MAX_EVAL_WORK}"
        )));
    }
    // NaN falls through here; canonicalization rejects it right after
    if horizon > MAX_HORIZON {
        return Err(ApiError::bad_request(format!(
            "horizon {horizon} exceeds the serving ceiling {MAX_HORIZON:e}"
        )));
    }
    Ok(())
}

fn canon(value: f64, name: &str) -> Result<CanonF64, ApiError> {
    CanonF64::new(value).map_err(|e| ApiError::bad_request(format!("{name}: {e}")))
}

/// Uniform access to request parameters: a JSON object body (POST) or
/// query-string parameters (GET), with the body taking precedence.
struct RequestParams<'a> {
    body: Option<Value>,
    req: &'a Request,
}

impl<'a> RequestParams<'a> {
    fn from(req: &'a Request) -> Result<Self, ApiError> {
        let body = match req.body_utf8() {
            Some(text) if !text.trim().is_empty() => {
                let value = serde_json::from_str(text)
                    .map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))?;
                if !matches!(value, Value::Object(_)) {
                    return Err(ApiError::bad_request("request body must be a JSON object"));
                }
                Some(value)
            }
            Some(_) => None,
            None if req.body.is_empty() => None,
            None => return Err(ApiError::bad_request("request body is not UTF-8")),
        };
        Ok(RequestParams { body, req })
    }

    /// The `(m, k, f)` instance triple; `m` defaults to 2 (the line).
    fn instance(&self) -> Result<(u32, u32, u32), ApiError> {
        let m = self.opt_u32("m")?.unwrap_or(2);
        let k = self
            .opt_u32("k")?
            .ok_or_else(|| ApiError::bad_request("missing parameter \"k\""))?;
        let f = self
            .opt_u32("f")?
            .ok_or_else(|| ApiError::bad_request("missing parameter \"f\""))?;
        Ok((m, k, f))
    }

    fn raw(&self, name: &str) -> Option<Value> {
        if let Some(body) = &self.body {
            if let Some(v) = body.get(name) {
                return Some(v.clone());
            }
        }
        self.req
            .query_param(name)
            .map(|s| Value::String(s.to_owned()))
    }

    fn opt_u32(&self, name: &str) -> Result<Option<u32>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::Int(i)) => u32::try_from(i)
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} out of range: {i}"))),
            Some(Value::UInt(u)) => u32::try_from(u)
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} out of range: {u}"))),
            Some(Value::String(s)) => s
                .parse::<u32>()
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} is not an integer: {s:?}"))),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be an integer, got {other:?}"
            ))),
        }
    }

    fn opt_u64(&self, name: &str) -> Result<Option<u64>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::Int(i)) => u64::try_from(i)
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} out of range: {i}"))),
            Some(Value::UInt(u)) => Ok(Some(u)),
            Some(Value::String(s)) => s
                .parse::<u64>()
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} is not an integer: {s:?}"))),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be an integer, got {other:?}"
            ))),
        }
    }

    fn opt_f64(&self, name: &str) -> Result<Option<f64>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::Float(x)) => Ok(Some(x)),
            Some(Value::Int(i)) => Ok(Some(i as f64)),
            Some(Value::UInt(u)) => Ok(Some(u as f64)),
            Some(Value::String(s)) => s
                .parse::<f64>()
                .map(Some)
                .map_err(|_| ApiError::bad_request(format!("{name} is not a number: {s:?}"))),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be a number, got {other:?}"
            ))),
        }
    }

    fn opt_str(&self, name: &str) -> Result<Option<String>, ApiError> {
        match self.raw(name) {
            None => Ok(None),
            Some(Value::String(s)) => Ok(Some(s)),
            Some(other) => Err(ApiError::bad_request(format!(
                "{name} must be a string, got {other:?}"
            ))),
        }
    }
}
