//! The consistent-hash router: rendezvous (highest-random-weight)
//! sharding of requests across `raysearchd` backends, with health
//! checks, bounded retry-with-failover, and aggregated `/stats`.
//!
//! # Why rendezvous hashing
//!
//! Every evaluation endpoint is memoized, so throughput scales with the
//! *hit rate*, and the hit rate survives scale-out only if every
//! spelling of the same logical request lands on the same backend. The
//! router therefore scores each backend by the pinned FNV-1a hash of
//! `backend-id ++ 0x00 ++ routing-key` (see [`routing_key`]) and
//! forwards to the
//! highest score. Rendezvous hashing has the minimal-disruption
//! property a cache fleet wants: removing one of `N` backends remaps
//! only the keys that backend owned (~`1/N` of the population), and
//! every surviving key keeps its backend — no ring to rebalance, no
//! token table to persist. Because the hash is process-stable, the
//! assignment is reproducible across restarts and predictable offline
//! by a replay harness.
//!
//! # Failure model
//!
//! Requests are idempotent pure computations, so failover is safe:
//! transport errors (backend died, connection refused) retry down the
//! rendezvous ranking — each hop counted in `failover_total` — until a
//! backend answers or every backend has been tried (then `502`). A
//! backend's *HTTP* answer is never second-guessed: a `503` from an
//! overloaded backend passes through to the client (counted as
//! `shed_passthrough`), because retrying overload elsewhere just
//! spreads it. A background health thread probes `/healthz` and
//! re-reads port files, so a backend respawned on a new ephemeral port
//! is rediscovered without reconfiguration; unhealthy backends are
//! deprioritized but still tried as a last resort (they may have just
//! come back).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use raysearch_core::{stable_hash64_parts, SpanData, TraceRecorder};
use serde_json::{Map, Value};

use crate::api::routing_key;
use crate::client::HttpClient;
use crate::http::{Request, Response};
use crate::jobs::{job_node, parse_job_id};
use crate::server::Handler;
use crate::tape::{is_recordable, TapeEntry, TapeRecorder};
use crate::telemetry::{
    metrics_response, push_counter, push_gauge, push_metric, trace_index_json, trace_json, Span,
    SpanSet, Telemetry, TRACE_HEADER,
};

/// How long a health probe waits before declaring a backend unhealthy.
pub const HEALTH_TIMEOUT: Duration = Duration::from_millis(500);

/// How long a forwarded request may take end to end. Generous: exact
/// large-fleet evaluations legitimately run for seconds.
pub const FORWARD_TIMEOUT: Duration = Duration::from_secs(60);

/// Where a backend's address comes from.
#[derive(Debug, Clone)]
pub enum AddrSource {
    /// A fixed `HOST:PORT` address.
    Fixed(String),
    /// A file the backend writes its bound address into (`--port-file`).
    /// Re-read by every health pass, so a backend respawned on a new
    /// ephemeral port is rediscovered automatically.
    PortFile(PathBuf),
}

/// One backend as configured: a stable logical identity plus an address
/// source. The *identity* is what rendezvous hashing scores — it stays
/// fixed across respawns even when the port changes, so a restart does
/// not reshuffle the keyspace.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// The stable logical id (`"backend-0"`, …).
    pub id: String,
    /// Where to find it.
    pub source: AddrSource,
}

impl BackendSpec {
    /// A backend at a fixed address.
    #[must_use]
    pub fn fixed(id: &str, addr: &str) -> BackendSpec {
        BackendSpec {
            id: id.to_owned(),
            source: AddrSource::Fixed(addr.to_owned()),
        }
    }

    /// A backend discovered through a port file.
    #[must_use]
    pub fn port_file(id: &str, path: PathBuf) -> BackendSpec {
        BackendSpec {
            id: id.to_owned(),
            source: AddrSource::PortFile(path),
        }
    }
}

/// Ranks backend ids for `key` by rendezvous (HRW) score, best first.
///
/// Pure and process-stable: the ranking depends only on the id strings
/// and the key bytes, so any process — the router, a test, an offline
/// replay harness — computes the same assignment. Ties (a ~2⁻⁶⁴ event)
/// break toward the lexicographically smaller id to keep the order a
/// total function of the inputs.
#[must_use]
pub fn rendezvous_rank(ids: &[String], key: &str) -> Vec<usize> {
    let mut scored: Vec<(u64, &str, usize)> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            (
                stable_hash64_parts(&[id.as_bytes(), key.as_bytes()]),
                id.as_str(),
                i,
            )
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().map(|(_, _, i)| i).collect()
}

/// A backend's `/stats` counters as last seen by the health thread —
/// what the router's `/stats` and `/metrics` aggregate instead of
/// polling backends synchronously per request.
#[derive(Debug, Clone)]
struct BackendCounters {
    hits: u64,
    misses: u64,
    shed: u64,
    requests: u64,
    jobs_queued: u64,
    jobs_running: u64,
    jobs_submitted: u64,
    jobs_completed: u64,
    /// When the health pass fetched this snapshot (drives the
    /// `stats_age_micros` staleness field).
    fetched: Instant,
}

impl BackendCounters {
    fn from_stats(doc: &Value, fetched: Instant) -> BackendCounters {
        let uint = |v: Option<&Value>| v.and_then(Value::as_u64).unwrap_or(0);
        let jobs = |name: &str| uint(doc.get("jobs").and_then(|j| j.get(name)));
        BackendCounters {
            hits: uint(doc.get("cache").and_then(|c| c.get("hits"))),
            misses: uint(doc.get("cache").and_then(|c| c.get("misses"))),
            shed: uint(doc.get("shed_total")),
            requests: uint(doc.get("requests_total")),
            jobs_queued: jobs("queued"),
            jobs_running: jobs("running"),
            jobs_submitted: jobs("submitted"),
            jobs_completed: jobs("completed"),
            fetched,
        }
    }
}

/// One backend at runtime: the spec plus live state and counters.
#[derive(Debug)]
struct Backend {
    id: String,
    source: AddrSource,
    /// The last known address (`None` until the port file appears).
    addr: Mutex<Option<String>>,
    healthy: AtomicBool,
    /// Requests this backend answered (any HTTP status).
    routed: AtomicU64,
    /// Transport failures observed talking to this backend.
    failed: AtomicU64,
    /// The backend's own counters as of the last successful health
    /// pass. Kept (stale) when the backend stops answering, so
    /// `/stats` can still show the last known numbers with their age.
    stats_cache: Mutex<Option<BackendCounters>>,
}

impl Backend {
    fn current_addr(&self) -> Option<String> {
        self.addr.lock().clone()
    }

    fn cached_counters(&self) -> Option<BackendCounters> {
        self.stats_cache.lock().clone()
    }
}

/// The router's shared state — the [`Handler`] behind `raysearch-router`.
#[derive(Debug)]
pub struct RouterState {
    backends: Vec<Backend>,
    started: Instant,
    /// Requests the router accepted (including `/healthz`, `/stats`).
    requests: AtomicU64,
    /// Requests answered by some backend.
    routed_total: AtomicU64,
    /// Failover hops: transport failures that moved a request down the
    /// rendezvous ranking.
    failover_total: AtomicU64,
    /// Backend `503`s passed through to clients.
    shed_passthrough: AtomicU64,
    /// Connections the router's own acceptor shed with a `503`.
    shed: AtomicU64,
    /// Requests that exhausted every backend (answered `502`).
    no_backend_total: AtomicU64,
    recorder: Option<TapeRecorder>,
    telemetry: Telemetry,
}

impl RouterState {
    /// Builds router state over `specs`, optionally recording forwarded
    /// traffic to a tape. All backends start unknown/unhealthy; call
    /// [`RouterState::check_backends_now`] (or run the health thread)
    /// before serving.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or contains duplicate ids — both are
    /// configuration errors worth failing fast on.
    #[must_use]
    pub fn new(specs: Vec<BackendSpec>, recorder: Option<TapeRecorder>) -> RouterState {
        assert!(!specs.is_empty(), "router needs at least one backend");
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), specs.len(), "backend ids must be unique");
        RouterState {
            backends: specs
                .into_iter()
                .map(|spec| Backend {
                    id: spec.id,
                    addr: Mutex::new(match &spec.source {
                        AddrSource::Fixed(addr) => Some(addr.clone()),
                        AddrSource::PortFile(_) => None,
                    }),
                    source: spec.source,
                    healthy: AtomicBool::new(false),
                    routed: AtomicU64::new(0),
                    failed: AtomicU64::new(0),
                    stats_cache: Mutex::new(None),
                })
                .collect(),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            routed_total: AtomicU64::new(0),
            failover_total: AtomicU64::new(0),
            shed_passthrough: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            no_backend_total: AtomicU64::new(0),
            recorder,
            telemetry: Telemetry::new(),
        }
    }

    /// The router's telemetry registry (trace minting, span histograms,
    /// slow log) — exposed so binaries can apply `--slow-log-micros`
    /// and tests can assert on recorded counts.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configured backend ids, in configuration order — the
    /// population [`rendezvous_rank`] scores.
    #[must_use]
    pub fn backend_ids(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.id.clone()).collect()
    }

    /// Failover hops so far.
    #[must_use]
    pub fn failover_total(&self) -> u64 {
        self.failover_total.load(Ordering::Relaxed)
    }

    /// Backends currently marked healthy.
    #[must_use]
    pub fn healthy_backends(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.healthy.load(Ordering::Relaxed))
            .count()
    }

    /// Runs one synchronous health pass: refresh each backend's address
    /// from its source (re-reading port files, so respawned backends on
    /// new ports are picked up), probe its `/healthz` with
    /// [`HEALTH_TIMEOUT`], and — on the same keep-alive connection —
    /// fetch its `/stats` into the cached counter snapshot that the
    /// router's own `/stats` and `/metrics` serve from (so client-facing
    /// endpoints never poll backends synchronously). Returns the number
    /// of healthy backends.
    pub fn check_backends_now(&self) -> usize {
        for backend in &self.backends {
            if let AddrSource::PortFile(path) = &backend.source {
                let read = std::fs::read_to_string(path)
                    .ok()
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty());
                *backend.addr.lock() = read;
            }
            let probed = backend.current_addr().and_then(|addr| {
                let mut client = HttpClient::connect_with_timeout(&addr, HEALTH_TIMEOUT).ok()?;
                let (status, _) = client.request("GET", "/healthz", None).ok()?;
                if status != 200 {
                    return Some((false, None));
                }
                let counters = client
                    .request("GET", "/stats", None)
                    .ok()
                    .filter(|(status, _)| *status == 200)
                    .and_then(|(_, text)| serde_json::from_str(&text).ok())
                    .map(|doc: Value| BackendCounters::from_stats(&doc, Instant::now()));
                Some((true, counters))
            });
            let (healthy, counters) = probed.unwrap_or((false, None));
            backend.healthy.store(healthy, Ordering::Relaxed);
            if counters.is_some() {
                // a failed fetch keeps the previous (stale) snapshot:
                // last known numbers plus their age beat no numbers
                *backend.stats_cache.lock() = counters;
            }
        }
        self.healthy_backends()
    }

    /// The router's own `/healthz`: `"ok"` when every backend is
    /// healthy, `"degraded"` when some are not, `"down"` when none are.
    fn healthz(&self) -> Response {
        let healthy = self.healthy_backends();
        let status = if healthy == self.backends.len() {
            "ok"
        } else if healthy > 0 {
            "degraded"
        } else {
            "down"
        };
        let mut doc = Map::new();
        doc.insert("status".to_owned(), Value::String(status.to_owned()));
        doc.insert(
            "service".to_owned(),
            Value::String("raysearch-router".to_owned()),
        );
        doc.insert(
            "backend_count".to_owned(),
            serde_json::to_value(self.backends.len() as u64).expect("u64 serializes"),
        );
        doc.insert(
            "healthy_backends".to_owned(),
            serde_json::to_value(healthy as u64).expect("u64 serializes"),
        );
        doc.insert(
            "backends".to_owned(),
            Value::Array(
                self.backends
                    .iter()
                    .map(|b| {
                        let mut bd = Map::new();
                        bd.insert("id".to_owned(), Value::String(b.id.clone()));
                        bd.insert(
                            "addr".to_owned(),
                            match b.current_addr() {
                                Some(addr) => Value::String(addr),
                                None => Value::Null,
                            },
                        );
                        bd.insert(
                            "healthy".to_owned(),
                            Value::Bool(b.healthy.load(Ordering::Relaxed)),
                        );
                        Value::Object(bd)
                    })
                    .collect(),
            ),
        );
        Response::ok(Value::Object(doc).to_json_string())
    }

    /// The router's `/stats`: router-level counters plus an aggregation
    /// over every backend's counters **as cached by the health thread**
    /// (hit/miss/shed/request counters), per backend and summed. No
    /// synchronous backend polling happens here — `reachable` means "a
    /// health pass has fetched this backend's stats at least once", and
    /// each snapshot carries a `stats_age_micros` staleness field
    /// (bounded by the health interval in steady state).
    fn stats(&self) -> Response {
        let mut per_backend = Vec::new();
        let mut hits_sum = 0u64;
        let mut misses_sum = 0u64;
        let mut shed_sum = 0u64;
        let mut requests_sum = 0u64;
        let mut jobs_queued_sum = 0u64;
        let mut jobs_running_sum = 0u64;
        let mut jobs_submitted_sum = 0u64;
        let mut jobs_completed_sum = 0u64;
        let mut max_age = 0u64;
        for backend in &self.backends {
            let mut bd = Map::new();
            bd.insert("id".to_owned(), Value::String(backend.id.clone()));
            bd.insert(
                "healthy".to_owned(),
                Value::Bool(backend.healthy.load(Ordering::Relaxed)),
            );
            bd.insert(
                "routed".to_owned(),
                serde_json::to_value(backend.routed.load(Ordering::Relaxed))
                    .expect("u64 serializes"),
            );
            bd.insert(
                "failed".to_owned(),
                serde_json::to_value(backend.failed.load(Ordering::Relaxed))
                    .expect("u64 serializes"),
            );
            let cached = backend.cached_counters();
            let reachable = cached.is_some();
            if let Some(counters) = &cached {
                let age = counters.fetched.elapsed().as_micros() as u64;
                max_age = max_age.max(age);
                hits_sum += counters.hits;
                misses_sum += counters.misses;
                shed_sum += counters.shed;
                requests_sum += counters.requests;
                jobs_queued_sum += counters.jobs_queued;
                jobs_running_sum += counters.jobs_running;
                jobs_submitted_sum += counters.jobs_submitted;
                jobs_completed_sum += counters.jobs_completed;
                let mut field = |name: &str, value: u64| {
                    bd.insert(
                        name.to_owned(),
                        serde_json::to_value(value).expect("u64 serializes"),
                    );
                };
                field("hits", counters.hits);
                field("misses", counters.misses);
                field("shed", counters.shed);
                field("requests", counters.requests);
                field("jobs_queued", counters.jobs_queued);
                field("jobs_running", counters.jobs_running);
                field("jobs_submitted", counters.jobs_submitted);
                field("jobs_completed", counters.jobs_completed);
                field("stats_age_micros", age);
            }
            bd.insert("reachable".to_owned(), Value::Bool(reachable));
            per_backend.push(Value::Object(bd));
        }

        let mut doc = Map::new();
        let mut counter = |name: &str, value: u64| {
            doc.insert(
                name.to_owned(),
                serde_json::to_value(value).expect("u64 serializes"),
            );
        };
        counter("requests_total", self.requests.load(Ordering::Relaxed));
        counter("routed_total", self.routed_total.load(Ordering::Relaxed));
        counter(
            "failover_total",
            self.failover_total.load(Ordering::Relaxed),
        );
        counter(
            "shed_passthrough",
            self.shed_passthrough.load(Ordering::Relaxed),
        );
        counter("shed_total", self.shed.load(Ordering::Relaxed));
        counter(
            "no_backend_total",
            self.no_backend_total.load(Ordering::Relaxed),
        );
        counter("cache_hits", hits_sum);
        counter("cache_misses", misses_sum);
        counter("backend_shed", shed_sum);
        counter("backend_requests", requests_sum);
        counter("jobs_queued", jobs_queued_sum);
        counter("jobs_running", jobs_running_sum);
        counter("jobs_submitted", jobs_submitted_sum);
        counter("jobs_completed", jobs_completed_sum);
        counter("uptime_micros", self.started.elapsed().as_micros() as u64);
        counter("stats_age_micros", max_age);
        doc.insert("backends".to_owned(), Value::Array(per_backend));
        Response::ok(Value::Object(doc).to_json_string())
    }

    /// The router's `GET /metrics`: Prometheus text exposition of the
    /// router counters, the per-backend counters from the health-thread
    /// cache (zero synchronous polling, like [`RouterState::stats`]),
    /// and the per-endpoint span latency histograms.
    fn metrics(&self) -> Response {
        let mut out = String::new();
        push_counter(
            &mut out,
            "raysearch_router_requests_total",
            "Requests accepted by the router (including local endpoints).",
            self.requests.load(Ordering::Relaxed),
        );
        push_counter(
            &mut out,
            "raysearch_router_routed_total",
            "Requests answered by some backend.",
            self.routed_total.load(Ordering::Relaxed),
        );
        push_counter(
            &mut out,
            "raysearch_router_failover_total",
            "Failover hops after backend transport failures.",
            self.failover_total.load(Ordering::Relaxed),
        );
        push_counter(
            &mut out,
            "raysearch_router_shed_passthrough_total",
            "Backend 503 responses passed through to clients.",
            self.shed_passthrough.load(Ordering::Relaxed),
        );
        push_counter(
            &mut out,
            "raysearch_router_shed_total",
            "Connections shed by the router's own acceptor.",
            self.shed.load(Ordering::Relaxed),
        );
        push_counter(
            &mut out,
            "raysearch_router_no_backend_total",
            "Requests that exhausted every backend (502).",
            self.no_backend_total.load(Ordering::Relaxed),
        );
        push_gauge(
            &mut out,
            "raysearch_router_healthy_backends",
            "Backends currently marked healthy.",
            self.healthy_backends() as u64,
        );
        push_gauge(
            &mut out,
            "raysearch_router_uptime_seconds",
            "Seconds since the router process started.",
            self.started.elapsed().as_secs(),
        );
        push_gauge(
            &mut out,
            "raysearch_router_traces_stored",
            "Completed span traces currently held in the trace ring.",
            self.telemetry.recorder().stored(),
        );
        push_counter(
            &mut out,
            "raysearch_router_traces_dropped_total",
            "Completed traces evicted from the trace ring (oldest-first).",
            self.telemetry.recorder().dropped_total(),
        );

        let label = |b: &Backend| format!("backend=\"{}\"", b.id);
        let family = |picker: &dyn Fn(&Backend) -> Option<u64>| -> Vec<(String, u64)> {
            self.backends
                .iter()
                .filter_map(|b| picker(b).map(|v| (label(b), v)))
                .collect()
        };
        push_metric(
            &mut out,
            "raysearch_router_backend_healthy",
            "gauge",
            "Backend health as seen by the health thread (1 healthy).",
            &family(&|b| Some(u64::from(b.healthy.load(Ordering::Relaxed)))),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_routed_total",
            "counter",
            "Requests each backend answered (any HTTP status).",
            &family(&|b| Some(b.routed.load(Ordering::Relaxed))),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_failed_total",
            "counter",
            "Transport failures observed per backend.",
            &family(&|b| Some(b.failed.load(Ordering::Relaxed))),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_cache_hits_total",
            "counter",
            "Result-cache hits per backend (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.hits)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_cache_misses_total",
            "counter",
            "Result-cache misses per backend (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.misses)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_shed_total",
            "counter",
            "Requests each backend shed (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.shed)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_requests_total",
            "counter",
            "Requests each backend served (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.requests)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_jobs_queued",
            "gauge",
            "Jobs queued per backend (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.jobs_queued)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_jobs_running",
            "gauge",
            "Jobs running per backend (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.jobs_running)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_jobs_submitted_total",
            "counter",
            "Jobs admitted per backend (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.jobs_submitted)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_jobs_completed_total",
            "counter",
            "Jobs completed per backend (health-thread snapshot).",
            &family(&|b| b.cached_counters().map(|c| c.jobs_completed)),
        );
        push_metric(
            &mut out,
            "raysearch_router_backend_stats_age_micros",
            "gauge",
            "Age of each backend's cached counter snapshot.",
            &family(&|b| {
                b.cached_counters()
                    .map(|c| c.fetched.elapsed().as_micros() as u64)
            }),
        );
        self.telemetry
            .render_prometheus_histograms(&mut out, "raysearch_router");
        metrics_response(out)
    }

    /// Issues `req` against the backend at `addr` over a fresh
    /// connection, forwarding the trace id so the backend's telemetry
    /// joins the same trace. A fresh connection per forward keeps the
    /// failure semantics crisp: any transport error means *this
    /// backend, now* — never a stale pooled socket from before a crash.
    fn forward_once(
        addr: &str,
        req: &Request,
        target: &str,
        trace: &str,
    ) -> std::io::Result<(u16, String)> {
        let body = String::from_utf8_lossy(&req.body);
        let mut client = HttpClient::connect_with_timeout(addr, FORWARD_TIMEOUT)?;
        client
            .request_with_headers(&req.method, target, Some(&body), &[(TRACE_HEADER, trace)])
            .map(|(status, _headers, body)| (status, body))
    }

    /// Routes one request: rendezvous-rank the backends for its
    /// canonical key, try them healthy-first in rank order, fail over
    /// on transport errors, give up with a `502` after every backend
    /// has failed once. Ranking time lands in the `route` span; time
    /// spent waiting on backends (across failover attempts) accumulates
    /// into `backend_wait`.
    fn route(&self, req: &Request, trace: &str, spans: &mut SpanSet) -> Response {
        let (target, healthy_first) = spans.time(Span::Route, || {
            let key = router_routing_key(req);
            let ids = self.backend_ids();
            let ranked = rendezvous_rank(&ids, &key);

            // healthy backends in rank order first; unhealthy ones
            // after, as a last resort (the health view may be stale in
            // both directions)
            let healthy_first: Vec<usize> = ranked
                .iter()
                .copied()
                .filter(|&i| self.backends[i].healthy.load(Ordering::Relaxed))
                .chain(
                    ranked
                        .iter()
                        .copied()
                        .filter(|&i| !self.backends[i].healthy.load(Ordering::Relaxed)),
                )
                .collect();
            (request_target(req), healthy_first)
        });

        let mut attempted = 0usize;
        for idx in healthy_first {
            let backend = &self.backends[idx];
            let Some(addr) = backend.current_addr() else {
                continue;
            };
            attempted += 1;
            // Each attempt is its own trace span: a successful forward
            // is `backend_wait`, a transport failure `failover` — but
            // both accumulate into the `backend_wait` histogram bucket,
            // so the histogram view keeps PR-8 semantics (total time
            // spent waiting on backends, across failover hops).
            let wait_start = spans.elapsed_micros();
            let forwarded = RouterState::forward_once(&addr, req, &target, trace);
            let wait_end = spans.elapsed_micros();
            let span_name = if forwarded.is_ok() {
                "backend_wait"
            } else {
                "failover"
            };
            spans.add_interval_as(
                Span::BackendWait,
                span_name,
                wait_start,
                wait_end,
                &[("backend", &backend.id)],
            );
            match forwarded {
                Ok((status, body)) => {
                    backend.routed.fetch_add(1, Ordering::Relaxed);
                    self.routed_total.fetch_add(1, Ordering::Relaxed);
                    if status == 503 {
                        // the backend's overload answer stands; retrying
                        // elsewhere would just spread the overload
                        self.shed_passthrough.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut response = Response {
                        status,
                        body,
                        headers: Vec::new(),
                    };
                    self.record(req, &target, &response);
                    if status == 503 {
                        // forward_once keeps only the body; restore the
                        // back-off hint the backend's shed carried
                        // (attached after record: tape digests are
                        // body-only)
                        response = response.with_header("Retry-After", "1");
                    }
                    return response;
                }
                Err(_) => {
                    // transport failure: this backend is gone right now
                    backend.failed.fetch_add(1, Ordering::Relaxed);
                    backend.healthy.store(false, Ordering::Relaxed);
                    self.failover_total.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.no_backend_total.fetch_add(1, Ordering::Relaxed);
        let response =
            Response::error(502, &format!("no backend answered ({attempted} attempted)"));
        self.record(req, &target, &response);
        response
    }

    /// Routes `GET`/`DELETE /jobs/{id}` by the backend affinity embedded
    /// in the id itself: the minting backend's logical index sits in the
    /// high bits ([`job_node`]), so polls and cancels reach the one
    /// process whose [`crate::jobs::JobStore`] holds the record. No
    /// rendezvous, no failover — the record exists nowhere else, so
    /// retrying a transport error on another backend could only ever
    /// manufacture a misleading `404`.
    fn route_job_by_id(&self, req: &Request, trace: &str, spans: &mut SpanSet) -> Response {
        let target = request_target(req);
        let parsed = spans.time(Span::Route, || {
            req.path.strip_prefix("/jobs/").and_then(parse_job_id)
        });
        let Some(id) = parsed else {
            return Response::error(404, &format!("no such job {:?}", req.path));
        };
        let node = job_node(id) as usize;
        let Some(backend) = self.backends.get(node) else {
            return Response::error(
                404,
                &format!(
                    "job id names backend {node}, but only {} backends are configured",
                    self.backends.len()
                ),
            );
        };
        let Some(addr) = backend.current_addr() else {
            self.no_backend_total.fetch_add(1, Ordering::Relaxed);
            return Response::error(502, &format!("backend {} has no address yet", backend.id));
        };
        let wait_start = spans.elapsed_micros();
        let forwarded = RouterState::forward_once(&addr, req, &target, trace);
        let wait_end = spans.elapsed_micros();
        spans.add_interval_as(
            Span::BackendWait,
            if forwarded.is_ok() {
                "backend_wait"
            } else {
                "failover"
            },
            wait_start,
            wait_end,
            &[("backend", &backend.id)],
        );
        match forwarded {
            Ok((status, body)) => {
                backend.routed.fetch_add(1, Ordering::Relaxed);
                self.routed_total.fetch_add(1, Ordering::Relaxed);
                if status == 503 {
                    self.shed_passthrough.fetch_add(1, Ordering::Relaxed);
                }
                if req.method == "GET" && status == 200 {
                    // surface the backend-measured queue wait in the
                    // router's own `queue_wait` histogram column
                    if let Some(wait) = serde_json::from_str(&body)
                        .ok()
                        .as_ref()
                        .and_then(|doc| doc.get("queue_wait_micros"))
                        .and_then(Value::as_u64)
                    {
                        spans.add(Span::QueueWait, wait);
                    }
                }
                let response = Response {
                    status,
                    body,
                    headers: Vec::new(),
                };
                if status == 503 {
                    response.with_header("Retry-After", "1")
                } else {
                    response
                }
            }
            Err(_) => {
                backend.failed.fetch_add(1, Ordering::Relaxed);
                backend.healthy.store(false, Ordering::Relaxed);
                self.failover_total.fetch_add(1, Ordering::Relaxed);
                self.no_backend_total.fetch_add(1, Ordering::Relaxed);
                Response::error(502, &format!("backend {} did not answer", backend.id))
            }
        }
    }

    /// `GET /debug/trace/{id}`: the router's stored span tree for the
    /// trace, with each `backend_wait` span's backend-side tree fetched
    /// on demand from that backend's own `/debug/trace/{id}` and
    /// stitched underneath it. Assembly is best-effort: an unreachable
    /// backend or an unsampled backend-side trace leaves the router-side
    /// tree intact rather than failing the whole request.
    fn debug_trace(&self, path: &str) -> Response {
        let id = path.trim_start_matches("/debug/trace/");
        let key = TraceRecorder::key_for(id);
        let Some(mut trace) = self.telemetry.recorder().get(key) else {
            return Response::error(404, &format!("no stored trace {id:?}"));
        };
        let id = trace.trace.clone();
        self.stitch_backend_traces(&mut trace.root, &id);
        Response::ok(trace_json(&trace, "raysearch-router"))
    }

    /// Attaches, under every `backend_wait` child of `root`, the span
    /// tree the named backend stored for the same trace id. The backend
    /// tree is tagged with a `service` attr (so exports can place it in
    /// its own process track) and rebased onto the router's request
    /// clock at the moment the forward started — network time shows up
    /// as the gap between `backend_wait` and the backend's root span.
    fn stitch_backend_traces(&self, root: &mut SpanData, trace: &str) {
        for child in &mut root.children {
            if child.name != "backend_wait" {
                continue;
            }
            let Some(backend_id) = child
                .attrs
                .iter()
                .find(|(k, _)| k == "backend")
                .map(|(_, v)| v.clone())
            else {
                continue;
            };
            let addr = self
                .backends
                .iter()
                .find(|b| b.id == backend_id)
                .and_then(Backend::current_addr);
            let Some(addr) = addr else { continue };
            if let Some((service, mut sub)) = RouterState::fetch_backend_trace(&addr, trace) {
                sub.attrs.push(("service".to_owned(), service));
                sub.rebase(child.start_micros);
                child.children.push(sub);
            }
        }
    }

    /// Fetches and parses one backend's stored trace. `None` on any
    /// failure — connect, non-200 (the backend did not sample this
    /// trace), or malformed JSON.
    fn fetch_backend_trace(addr: &str, trace: &str) -> Option<(String, SpanData)> {
        let mut client = HttpClient::connect_with_timeout(addr, HEALTH_TIMEOUT).ok()?;
        let (status, body) = client
            .request("GET", &format!("/debug/trace/{trace}"), None)
            .ok()?;
        if status != 200 {
            return None;
        }
        let doc: Value = serde_json::from_str(&body).ok()?;
        let service = doc
            .get("service")
            .and_then(Value::as_str)
            .unwrap_or("raysearchd")
            .to_owned();
        let root = SpanData::from_json(doc.get("root")?).ok()?;
        Some((service, root))
    }

    fn record(&self, req: &Request, target: &str, response: &Response) {
        let Some(recorder) = &self.recorder else {
            return;
        };
        if !is_recordable(&req.path) {
            return;
        }
        let body = String::from_utf8_lossy(&req.body);
        let entry = TapeEntry::observe(recorder.next_tick(), &req.method, target, &body, response);
        recorder.record(&entry);
    }
}

impl Handler for RouterState {
    fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let trace = self.telemetry.trace_for(req);
        let mut spans = SpanSet::start();
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/metrics") => self.metrics(),
            ("GET", "/debug/slow") => Response::ok(self.telemetry.slow_log_json()),
            ("GET", "/debug/trace") => Response::ok(trace_index_json(self.telemetry.recorder())),
            ("GET", path) if path.starts_with("/debug/trace/") => self.debug_trace(path),
            // poll/cancel follow the id's embedded backend affinity;
            // POST /jobs falls through to route(), which keys on the
            // *inner* payload (see `router_routing_key`)
            ("GET" | "DELETE", path) if path.starts_with("/jobs/") => {
                self.route_job_by_id(req, &trace, &mut spans)
            }
            _ => self.route(req, &trace, &mut spans),
        };
        let status = response.status;
        self.telemetry.observe(req, &trace, status, spans);
        // the echo is attached after recording: tape digests are
        // body-only, and the tape entry was captured inside route()
        response.with_header(TRACE_HEADER, trace)
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The routing key the *router* hashes — [`routing_key`] for everything
/// except `POST /jobs`, which is keyed by the canonical key of the
/// payload it wraps. A job submission and its synchronous twin must
/// land on the same backend so they share that backend's memo and
/// compile caches; keying the envelope itself would scatter them.
#[must_use]
pub fn router_routing_key(req: &Request) -> String {
    if req.method == "POST" && req.path == "/jobs" {
        if let Some(inner) = job_inner_request(req) {
            return routing_key(&inner);
        }
    }
    routing_key(req)
}

/// Unwraps a `POST /jobs` envelope into the synchronous request it
/// describes: a `POST /{endpoint}` carrying the same body. `None` when
/// the body is not a JSON object with a string `endpoint` tag — the
/// backend will reject it with a `400` anyway, so the raw-key fallback
/// just has to be deterministic, not meaningful.
fn job_inner_request(req: &Request) -> Option<Request> {
    let doc: Value = serde_json::from_str(&String::from_utf8_lossy(&req.body)).ok()?;
    let endpoint = doc.get("endpoint")?.as_str()?;
    Some(Request {
        method: "POST".to_owned(),
        version: req.version.clone(),
        path: format!("/{endpoint}"),
        query: Vec::new(),
        headers: Vec::new(),
        body: req.body.clone(),
    })
}

/// Reconstructs the request target (`path?query`) for forwarding.
#[must_use]
pub fn request_target(req: &Request) -> String {
    let mut target = req.path.clone();
    for (i, (k, v)) in req.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        if !v.is_empty() {
            target.push('=');
            target.push_str(v);
        }
    }
    target
}

/// Spawns the background health thread: one
/// [`check_backends_now`](RouterState::check_backends_now) pass every
/// `interval` until `stop` is set.
pub fn spawn_health_thread(
    state: Arc<RouterState>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            state.check_backends_now();
            std::thread::sleep(interval);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn rank_is_a_permutation_and_deterministic() {
        let ids = ids(&["backend-0", "backend-1", "backend-2"]);
        for key in ["evaluate:m=2,k=3,f=1,h=10000", "lambda:eta=1.5", ""] {
            let rank = rendezvous_rank(&ids, key);
            let mut sorted = rank.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "key {key:?}");
            assert_eq!(rank, rendezvous_rank(&ids, key), "key {key:?}");
        }
    }

    #[test]
    fn rank_depends_only_on_id_strings_not_order() {
        let a = ids(&["backend-0", "backend-1", "backend-2"]);
        let b = ids(&["backend-2", "backend-0", "backend-1"]);
        for key in ["evaluate:m=2,k=3,f=1,h=10000", "closed_form:m=2,k=5,f=2"] {
            let top_a = rendezvous_rank(&a, key)[0];
            let top_b = rendezvous_rank(&b, key)[0];
            assert_eq!(a[top_a], b[top_b], "key {key:?}");
        }
    }

    #[test]
    fn request_target_reconstructs_the_query() {
        let req = Request {
            method: "GET".to_owned(),
            version: "HTTP/1.1".to_owned(),
            path: "/closed_form".to_owned(),
            query: vec![
                ("k".to_owned(), "3".to_owned()),
                ("f".to_owned(), "1".to_owned()),
                ("flag".to_owned(), String::new()),
            ],
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(request_target(&req), "/closed_form?k=3&f=1&flag");
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_backend_ids_are_rejected() {
        let _ = RouterState::new(
            vec![
                BackendSpec::fixed("b0", "127.0.0.1:1"),
                BackendSpec::fixed("b0", "127.0.0.1:2"),
            ],
            None,
        );
    }
}
