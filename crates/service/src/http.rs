//! A hand-rolled, dependency-free HTTP/1.1 layer.
//!
//! The build environment has no crates.io access, so there is no hyper,
//! no tiny_http — just `std::net` and this module. It implements the
//! slice of HTTP/1.1 the evaluation server needs and nothing more:
//!
//! * request parsing: request line, headers, `Content-Length` bodies,
//!   query strings (no percent-decoding — every parameter this API
//!   takes is `[A-Za-z0-9_.+-]`);
//! * response writing: status line, `Content-Type: application/json`,
//!   `Content-Length`, explicit `Connection` header;
//! * persistent connections: HTTP/1.1 keep-alive semantics, honoring a
//!   client's `Connection: close`;
//! * hard limits (request-line / header / body size) so a misbehaving
//!   client cannot balloon server memory.
//!
//! Chunked transfer encoding, multipart bodies, TLS and HTTP/2 are out
//! of scope by design.

use std::fmt;
use std::io::{BufRead, Read, Write};

/// Longest accepted request line, in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests — not an
    /// error, just the end of a keep-alive session.
    Closed,
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The request exceeds one of the hard limits (413-worthy).
    TooLarge(String),
    /// A body-bearing method arrived without `Content-Length`
    /// (411-worthy): the server cannot know where the entity ends, and
    /// guessing "no body" would desynchronize the keep-alive stream —
    /// the entity's bytes would be misparsed as the next request line.
    LengthRequired(String),
    /// Transport-level I/O failure (includes read timeouts).
    Io(std::io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge(why) => write!(f, "request too large: {why}"),
            HttpError::LengthRequired(why) => write!(f, "length required: {why}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The protocol version (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// The path component of the request target, without the query.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs in receipt order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The raw request body (empty unless `Content-Length` said more).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter named `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should close after this request:
    /// `Connection: close`, or an HTTP/1.0 request without an explicit
    /// `Connection: keep-alive` (1.0 defaults to close, 1.1 to
    /// keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.version == "HTTP/1.0",
        }
    }

    /// The request body as UTF-8, if it is valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Reads one line terminated by `\n`, enforcing `limit` bytes, and
/// strips the line terminator (`\r\n` or bare `\n`).
fn read_line_limited(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut take = reader.take((limit + 1) as u64);
    let n = take.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None); // clean EOF
    }
    if raw.last() != Some(&b'\n') {
        // either the limit cut the read short, or EOF hit mid-line
        return if raw.len() > limit {
            Err(HttpError::TooLarge(format!("line exceeds {limit} bytes")))
        } else {
            Err(HttpError::Malformed(
                "EOF in the middle of a line".to_owned(),
            ))
        };
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in header section".to_owned()))
}

/// Splits a query string into `key=value` pairs (no percent-decoding).
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (part.to_owned(), String::new()),
        })
        .collect()
}

/// Reads and parses one request off `reader`.
///
/// # Errors
///
/// [`HttpError::Closed`] on clean EOF before the first byte,
/// [`HttpError::Malformed`]/[`HttpError::TooLarge`] on protocol
/// violations, [`HttpError::Io`] on transport failures (including read
/// timeouts mid-request).
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = match read_line_limited(reader, MAX_REQUEST_LINE)? {
        None => return Err(HttpError::Closed),
        Some(line) if line.is_empty() => {
            // tolerate a stray CRLF between pipelined requests
            match read_line_limited(reader, MAX_REQUEST_LINE)? {
                None => return Err(HttpError::Closed),
                Some(line) => line,
            }
        }
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target.to_owned(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader, MAX_REQUEST_LINE)?
            .ok_or_else(|| HttpError::Malformed("EOF inside header section".to_owned()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    // chunked bodies are unsupported; silently reading 0 bytes would
    // desynchronize the keep-alive stream (chunk octets would be parsed
    // as the next request line), so reject them outright
    if let Some((_, te)) = headers.iter().find(|(n, _)| n == "transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::Malformed(format!(
                "unsupported Transfer-Encoding {te:?} (use Content-Length)"
            )));
        }
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?;
    // body-bearing methods must declare their length: defaulting to "no
    // body" would leave any actual entity bytes in the stream to be
    // misparsed as the next keep-alive request (or stall the reader)
    let content_length = match content_length {
        Some(n) => n,
        None if matches!(method, "POST" | "PUT" | "PATCH") => {
            return Err(HttpError::LengthRequired(format!(
                "{method} requests must carry a Content-Length header"
            )))
        }
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_owned(),
        version: version.to_owned(),
        path,
        query,
        headers,
        body,
    })
}

/// One HTTP response: a status code, a body, and optional extra
/// headers (trace echo, content-type overrides for `/metrics`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The response body (`application/json` unless a `Content-Type`
    /// header override is present).
    pub body: String,
    /// Extra response headers `(name, value)`, emitted after the
    /// defaults. A `Content-Type` entry here replaces the default
    /// `application/json`; names are matched case-insensitively.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `200 OK` response with the given JSON body.
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// An error response whose body is `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        let payload = serde_json::Value::String(message.to_owned());
        Response {
            status,
            body: format!("{{\"error\":{}}}", payload.to_json_string()),
            headers: Vec::new(),
        }
    }

    /// The shared load-shed response: `503` with a `Retry-After: 1`
    /// hint so well-behaved clients back off instead of hammering a
    /// saturated acceptor or a full job queue. Both tiers' accept
    /// loops and job admission emit their 503s through this.
    pub fn shed(message: &str) -> Self {
        Response::error(503, message).with_header("Retry-After", "1")
    }

    /// Returns `self` with an extra response header appended.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The standard reason phrase for this status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            411 => "Length Required",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response to `writer`, advertising keep-alive or
    /// close as requested. The whole response goes out in a single
    /// write: small header-only packets would otherwise interact with
    /// Nagle's algorithm and delayed ACKs into ~40 ms round trips.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let content_type = self
            .headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-type"))
            .map_or("application/json", |(_, v)| v.as_str());
        let mut wire = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            content_type,
            self.body.len(),
            connection,
        );
        for (name, value) in &self.headers {
            if !name.eq_ignore_ascii_case("content-type") {
                wire.push_str(name);
                wire.push_str(": ");
                wire.push_str(value);
                wire.push_str("\r\n");
            }
        }
        wire.push_str("\r\n");
        wire.push_str(&self.body);
        writer.write_all(wire.as_bytes())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(b"GET /closed_form?m=2&k=3&f=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/closed_form");
        assert_eq!(req.query_param("m"), Some("2"));
        assert_eq!(req.query_param("k"), Some("3"));
        assert_eq!(req.query_param("f"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /evaluate HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"k\":3}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_utf8(), Some("{\"k\":3}"));
        assert_eq!(req.header("content-type"), Some("application/json"));
    }

    #[test]
    fn keep_alive_parses_back_to_back_requests() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let first = read_request(&mut reader).unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(!first.wants_close());
        let second = read_request(&mut reader).unwrap();
        assert_eq!(second.path, "/stats");
        assert!(second.wants_close());
        assert!(matches!(read_request(&mut reader), Err(HttpError::Closed)));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.version, "HTTP/1.0");
        assert!(req.wants_close(), "1.0 without keep-alive must close");
        let req = parse(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close(), "explicit 1.0 keep-alive is honored");
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert!(!req.wants_close(), "1.1 defaults to keep-alive");
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        // a stray blank line then EOF is also a clean close
        assert!(matches!(parse(b"\r\n"), Err(HttpError::Closed)));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTruncated",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_) | HttpError::Io(_))),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn enforces_limits() {
        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE + 10)
        );
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));

        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge_body.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));

        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let req = parse(
            b"POST /evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n7\r\n{\"k\":3}\r\n0\r\n\r\n",
        );
        assert!(matches!(req, Err(HttpError::Malformed(_))));
        // identity is a no-op and stays accepted
        let req = parse(b"GET /healthz HTTP/1.1\r\nTransfer-Encoding: identity\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn post_without_content_length_is_length_required() {
        for method in ["POST", "PUT", "PATCH"] {
            let wire = format!("{method} /evaluate HTTP/1.1\r\nHost: x\r\n\r\n");
            assert!(
                matches!(parse(wire.as_bytes()), Err(HttpError::LengthRequired(_))),
                "{method} without Content-Length must be 411-worthy"
            );
        }
        // explicit zero-length bodies remain fine…
        let req = parse(b"POST /evaluate HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
        // …and GET stays exempt (no entity expected)
        assert!(parse(b"GET /healthz HTTP/1.1\r\n\r\n").is_ok());
    }

    #[test]
    fn truncated_body_is_io_error() {
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        assert!(matches!(req, Err(HttpError::Io(_))));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::ok("{\"a\":1}").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));

        let mut out = Vec::new();
        Response::error(404, "no such endpoint \"x\"")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        // the error message is JSON-escaped
        assert!(text.contains(r#"{"error":"no such endpoint \"x\""}"#));
    }

    #[test]
    fn extra_headers_and_content_type_override() {
        let mut out = Vec::new();
        Response::ok("{}")
            .with_header("x-raysearch-trace", "00000000deadbeef")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("x-raysearch-trace: 00000000deadbeef\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::ok("# HELP\n")
            .with_header("Content-Type", "text/plain; version=0.0.4")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(
            !text.contains("application/json"),
            "the override must replace the default, not duplicate it"
        );
    }
}
